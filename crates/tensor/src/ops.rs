//! Preprocessing operators: resize, crop, tensor conversion, normalize.
//!
//! These mirror the torchvision-style transform stack executed by the
//! paper's preprocessing stage: decode → resize → (crop) → to-tensor →
//! normalize. All resizes treat pixel centers at half-integer coordinates
//! (align-corners = false), matching common DNN preprocessing.
//!
//! Each heavy operator has a `_with` variant taking a
//! [`Backend`](vserve_compute::Backend) that parallelizes over disjoint
//! output rows (resize, tensor conversion) or channel planes (normalize).
//! Every output element is a pure function of the input, so results are
//! bit-identical to the serial variants for any thread count.

use vserve_compute::Backend;

use crate::{Image, PixelFormat, Tensor};

/// Nearest-neighbour resize.
///
/// # Panics
///
/// Panics if either output dimension is zero.
///
/// # Examples
///
/// ```
/// use vserve_tensor::{Image, ops};
///
/// let img = Image::gradient(10, 10);
/// let out = ops::resize_nearest(&img, 5, 5);
/// assert_eq!((out.width(), out.height()), (5, 5));
/// ```
pub fn resize_nearest(src: &Image, out_w: usize, out_h: usize) -> Image {
    resize_nearest_with(&Backend::serial(), src, out_w, out_h)
}

/// [`resize_nearest`] parallelized over output rows.
///
/// # Panics
///
/// Panics if either output dimension is zero.
pub fn resize_nearest_with(bk: &Backend, src: &Image, out_w: usize, out_h: usize) -> Image {
    assert!(out_w > 0 && out_h > 0, "output dimensions must be non-zero");
    let mut dst = Image::zeros(out_w, out_h, src.format());
    let ch = src.channels();
    let sx = src.width() as f32 / out_w as f32;
    let sy = src.height() as f32 / out_h as f32;
    bk.par_chunks_mut(dst.as_bytes_mut(), out_w * ch, |y, row| {
        let src_y = (((y as f32 + 0.5) * sy - 0.5).round().max(0.0) as usize).min(src.height() - 1);
        for x in 0..out_w {
            let src_x =
                (((x as f32 + 0.5) * sx - 0.5).round().max(0.0) as usize).min(src.width() - 1);
            let p = src.pixel(src_x, src_y);
            row[x * ch..(x + 1) * ch].copy_from_slice(&p[..ch]);
        }
    });
    dst
}

/// Bilinear resize, the default interpolation in the paper's pipelines.
///
/// # Panics
///
/// Panics if either output dimension is zero.
pub fn resize_bilinear(src: &Image, out_w: usize, out_h: usize) -> Image {
    resize_bilinear_with(&Backend::serial(), src, out_w, out_h)
}

/// [`resize_bilinear`] parallelized over output rows.
///
/// # Panics
///
/// Panics if either output dimension is zero.
pub fn resize_bilinear_with(bk: &Backend, src: &Image, out_w: usize, out_h: usize) -> Image {
    assert!(out_w > 0 && out_h > 0, "output dimensions must be non-zero");
    let mut dst = Image::zeros(out_w, out_h, src.format());
    let ch = src.channels();
    let sx = src.width() as f32 / out_w as f32;
    let sy = src.height() as f32 / out_h as f32;
    let max_x = src.width() - 1;
    let max_y = src.height() - 1;
    bk.par_chunks_mut(dst.as_bytes_mut(), out_w * ch, |y, row| {
        let fy = ((y as f32 + 0.5) * sy - 0.5).clamp(0.0, max_y as f32);
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(max_y);
        let wy = fy - y0 as f32;
        for x in 0..out_w {
            let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, max_x as f32);
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(max_x);
            let wx = fx - x0 as f32;
            let p00 = src.pixel(x0, y0);
            let p10 = src.pixel(x1, y0);
            let p01 = src.pixel(x0, y1);
            let p11 = src.pixel(x1, y1);
            for c in 0..ch {
                let top = f32::from(p00[c]) * (1.0 - wx) + f32::from(p10[c]) * wx;
                let bot = f32::from(p01[c]) * (1.0 - wx) + f32::from(p11[c]) * wx;
                row[x * ch + c] = (top * (1.0 - wy) + bot * wy).round().clamp(0.0, 255.0) as u8;
            }
        }
    });
    dst
}

/// Area (box-filter) resize — the correct filter for large downscales,
/// which is exactly what the paper's "large image → 224×224" path does.
///
/// Falls back to bilinear when upscaling.
///
/// # Panics
///
/// Panics if either output dimension is zero.
pub fn resize_area(src: &Image, out_w: usize, out_h: usize) -> Image {
    resize_area_with(&Backend::serial(), src, out_w, out_h)
}

/// [`resize_area`] parallelized over output rows.
///
/// # Panics
///
/// Panics if either output dimension is zero.
pub fn resize_area_with(bk: &Backend, src: &Image, out_w: usize, out_h: usize) -> Image {
    assert!(out_w > 0 && out_h > 0, "output dimensions must be non-zero");
    if out_w >= src.width() || out_h >= src.height() {
        return resize_bilinear_with(bk, src, out_w, out_h);
    }
    let mut dst = Image::zeros(out_w, out_h, src.format());
    let ch = src.channels();
    let sx = src.width() as f64 / out_w as f64;
    let sy = src.height() as f64 / out_h as f64;
    bk.par_chunks_mut(dst.as_bytes_mut(), out_w * ch, |y, row| {
        let y_start = (y as f64 * sy).floor() as usize;
        let y_end = (((y + 1) as f64 * sy).ceil() as usize).min(src.height());
        for x in 0..out_w {
            let x_start = (x as f64 * sx).floor() as usize;
            let x_end = (((x + 1) as f64 * sx).ceil() as usize).min(src.width());
            let mut acc = [0f64; 3];
            let mut n = 0f64;
            for yy in y_start..y_end {
                for xx in x_start..x_end {
                    let p = src.pixel(xx, yy);
                    for c in 0..3 {
                        acc[c] += f64::from(p[c]);
                    }
                    n += 1.0;
                }
            }
            for c in 0..ch {
                row[x * ch + c] = (acc[c] / n).round().clamp(0.0, 255.0) as u8;
            }
        }
    });
    dst
}

/// Crops a centered `out_w × out_h` window.
///
/// # Panics
///
/// Panics if the crop is larger than the source in either dimension, or if
/// either output dimension is zero.
pub fn center_crop(src: &Image, out_w: usize, out_h: usize) -> Image {
    assert!(out_w > 0 && out_h > 0, "output dimensions must be non-zero");
    assert!(
        out_w <= src.width() && out_h <= src.height(),
        "crop {out_w}x{out_h} exceeds source {}x{}",
        src.width(),
        src.height()
    );
    let x0 = (src.width() - out_w) / 2;
    let y0 = (src.height() - out_h) / 2;
    let mut dst = Image::zeros(out_w, out_h, src.format());
    for y in 0..out_h {
        for x in 0..out_w {
            dst.put_pixel(x, y, src.pixel(x0 + x, y0 + y));
        }
    }
    dst
}

/// Crops the `w × h` window whose top-left corner is `(x0, y0)`.
///
/// The pipeline executor uses this to cut detection regions out of a
/// decoded frame before re-encoding them as stage-2 sub-requests.
///
/// # Panics
///
/// Panics if the window is empty or extends past the source image.
pub fn crop_rect(src: &Image, x0: usize, y0: usize, w: usize, h: usize) -> Image {
    assert!(w > 0 && h > 0, "crop window must be non-empty");
    assert!(
        x0 + w <= src.width() && y0 + h <= src.height(),
        "crop {w}x{h}+{x0}+{y0} exceeds source {}x{}",
        src.width(),
        src.height()
    );
    let mut dst = Image::zeros(w, h, src.format());
    for y in 0..h {
        for x in 0..w {
            dst.put_pixel(x, y, src.pixel(x0 + x, y0 + y));
        }
    }
    dst
}

/// Converts an image to an NCHW `f32` tensor scaled to `[0, 1]`, batch 1.
///
/// Gray images produce a single channel; RGB produce three.
pub fn to_tensor(src: &Image) -> Tensor {
    to_tensor_with(&Backend::serial(), src)
}

/// [`to_tensor`] parallelized over channel rows of the output tensor
/// (chunk `i` is row `i % h` of channel `i / h`).
pub fn to_tensor_with(bk: &Backend, src: &Image) -> Tensor {
    let (w, h, c) = (src.width(), src.height(), src.channels());
    let mut t = Tensor::zeros(&[1, c, h, w]);
    let bytes = src.as_bytes();
    bk.par_chunks_mut(t.as_mut_slice(), w, |i, row| {
        let ch = i / h;
        let y = i % h;
        for (x, v) in row.iter_mut().enumerate() {
            *v = f32::from(bytes[(y * w + x) * c + ch]) / 255.0;
        }
    });
    t
}

/// ImageNet channel means used by [`normalize_imagenet`].
pub const IMAGENET_MEAN: [f32; 3] = [0.485, 0.456, 0.406];
/// ImageNet channel standard deviations used by [`normalize_imagenet`].
pub const IMAGENET_STD: [f32; 3] = [0.229, 0.224, 0.225];

/// Per-channel normalization `(x − mean) / std` on an NCHW tensor.
///
/// # Panics
///
/// Panics if the tensor is not rank-4 or its channel count exceeds the
/// provided statistics.
pub fn normalize(t: &mut Tensor, mean: &[f32], std: &[f32]) {
    normalize_with(&Backend::serial(), t, mean, std);
}

/// [`normalize`] parallelized over `(batch, channel)` planes.
///
/// # Panics
///
/// Same conditions as [`normalize`].
pub fn normalize_with(bk: &Backend, t: &mut Tensor, mean: &[f32], std: &[f32]) {
    assert_eq!(t.rank(), 4, "normalize expects NCHW");
    let shape = t.shape().to_vec();
    let c = shape[1];
    let plane = shape[2] * shape[3];
    assert!(
        c <= mean.len() && c <= std.len(),
        "statistics cover {} channels, tensor has {c}",
        mean.len().min(std.len())
    );
    bk.par_chunks_mut(t.as_mut_slice(), plane, |i, chunk| {
        let ch = i % c;
        let m = mean[ch];
        let s = std[ch];
        for v in chunk.iter_mut() {
            *v = (*v - m) / s;
        }
    });
}

/// ImageNet-standard normalization, the exact transform in the paper's
/// preprocessing stage.
pub fn normalize_imagenet(t: &mut Tensor) {
    normalize(t, &IMAGENET_MEAN, &IMAGENET_STD);
}

/// Runs the complete standard preprocessing chain: bilinear resize to
/// `side × side`, tensor conversion, ImageNet normalization.
///
/// # Examples
///
/// ```
/// use vserve_tensor::{Image, ops};
///
/// let t = ops::standard_preprocess(&Image::gradient(500, 375), 224);
/// assert_eq!(t.shape(), &[1, 3, 224, 224]);
/// ```
pub fn standard_preprocess(src: &Image, side: usize) -> Tensor {
    standard_preprocess_with(&Backend::serial(), src, side)
}

/// [`standard_preprocess`] on a compute backend: resize, tensor
/// conversion, and normalization all parallelize over rows/planes, with
/// output bits identical to the serial chain.
pub fn standard_preprocess_with(bk: &Backend, src: &Image, side: usize) -> Tensor {
    let resized = if src.width() > 2 * side && src.height() > 2 * side {
        resize_area_with(bk, src, side, side)
    } else {
        resize_bilinear_with(bk, src, side, side)
    };
    let mut t = to_tensor_with(bk, &resized);
    if resized.format() == PixelFormat::Rgb8 {
        normalize_with(bk, &mut t, &IMAGENET_MEAN, &IMAGENET_STD);
    }
    t
}

/// Fused resize → to-tensor → normalize in a single pass.
///
/// Bilinear taps read the source image once and write the normalized f32
/// value straight into the `[1, c, side, side]` NCHW tensor — no resized
/// RGB intermediate and no separate scale/normalize passes over the
/// output. RGB sources get ImageNet statistics; gray sources are scaled
/// to `[0, 1]` only, matching [`standard_preprocess`].
///
/// Numerics differ slightly from the unfused chain (the chain rounds the
/// resized value back to u8 before converting; the fused kernel keeps it
/// in f32), so use this where throughput matters and the unfused chain
/// where bit-exact parity with the baseline stack is required.
pub fn fused_preprocess(src: &Image, side: usize) -> Tensor {
    fused_preprocess_with(&Backend::serial(), src, side)
}

/// [`fused_preprocess`] parallelized over output tensor rows (chunk `i`
/// is row `i % side` of channel `i / side`). Every output element is a
/// pure function of the source, so results are bit-identical across
/// thread counts.
///
/// # Panics
///
/// Panics if `side` is zero.
pub fn fused_preprocess_with(bk: &Backend, src: &Image, side: usize) -> Tensor {
    assert!(side > 0, "output side must be non-zero");
    let (w, h, c) = (src.width(), src.height(), src.channels());
    let rgb = src.format() == PixelFormat::Rgb8;
    let bytes = src.as_bytes();
    let sx = w as f32 / side as f32;
    let sy = h as f32 / side as f32;
    let max_x = w - 1;
    let max_y = h - 1;
    let simd = !vserve_simd::active_level().is_scalar();
    let mut t = Tensor::zeros(&[1, c, side, side]);
    bk.par_chunks_mut(t.as_mut_slice(), side, |i, row| {
        let ch = i / side;
        let y = i % side;
        let (m, s) = if rgb {
            (IMAGENET_MEAN[ch], IMAGENET_STD[ch])
        } else {
            (0.0, 1.0)
        };
        let fy = ((y as f32 + 0.5) * sy - 0.5).clamp(0.0, max_y as f32);
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(max_y);
        let wy = fy - y0 as f32;
        let (r0, r1) = (y0 * w * c, y1 * w * c);
        if simd {
            // Strip-at-a-time: gather the strided bilinear taps into
            // stack buffers, then lerp + normalize the whole strip in the
            // SIMD kernel. Tap addressing and per-element arithmetic are
            // identical to the scalar loop below, so output bits match.
            const STRIP: usize = 64;
            let (mut p00, mut p10) = ([0f32; STRIP], [0f32; STRIP]);
            let (mut p01, mut p11) = ([0f32; STRIP], [0f32; STRIP]);
            let mut wxs = [0f32; STRIP];
            let mut x0s = 0;
            while x0s < side {
                let len = STRIP.min(side - x0s);
                for j in 0..len {
                    let x = x0s + j;
                    let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, max_x as f32);
                    let x0 = fx.floor() as usize;
                    let x1 = (x0 + 1).min(max_x);
                    wxs[j] = fx - x0 as f32;
                    p00[j] = f32::from(bytes[r0 + x0 * c + ch]);
                    p10[j] = f32::from(bytes[r0 + x1 * c + ch]);
                    p01[j] = f32::from(bytes[r1 + x0 * c + ch]);
                    p11[j] = f32::from(bytes[r1 + x1 * c + ch]);
                }
                vserve_simd::kernels::resize_norm_row(
                    &p00[..len],
                    &p10[..len],
                    &p01[..len],
                    &p11[..len],
                    &wxs[..len],
                    wy,
                    m,
                    s,
                    &mut row[x0s..x0s + len],
                );
                x0s += len;
            }
            return;
        }
        for (x, out) in row.iter_mut().enumerate() {
            let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, max_x as f32);
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(max_x);
            let wx = fx - x0 as f32;
            let p00 = f32::from(bytes[r0 + x0 * c + ch]);
            let p10 = f32::from(bytes[r0 + x1 * c + ch]);
            let p01 = f32::from(bytes[r1 + x0 * c + ch]);
            let p11 = f32::from(bytes[r1 + x1 * c + ch]);
            let top = p00 * (1.0 - wx) + p10 * wx;
            let bot = p01 * (1.0 - wx) + p11 * wx;
            let v = (top * (1.0 - wy) + bot * wy) / 255.0;
            *out = (v - m) / s;
        }
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn constant_image(w: usize, h: usize, v: u8) -> Image {
        let mut img = Image::zeros(w, h, PixelFormat::Rgb8);
        for y in 0..h {
            for x in 0..w {
                img.put_pixel(x, y, [v, v, v]);
            }
        }
        img
    }

    #[test]
    fn resizes_preserve_constant_images() {
        let img = constant_image(17, 13, 99);
        for out in [
            resize_nearest(&img, 7, 5),
            resize_bilinear(&img, 7, 5),
            resize_area(&img, 7, 5),
            resize_bilinear(&img, 40, 30),
        ] {
            assert!(
                out.as_bytes().iter().all(|&b| b == 99),
                "constant image must stay constant"
            );
        }
    }

    #[test]
    fn identity_resize_is_identity() {
        let img = Image::gradient(16, 12);
        assert_eq!(resize_nearest(&img, 16, 12), img);
        assert_eq!(resize_bilinear(&img, 16, 12), img);
    }

    #[test]
    fn bilinear_midpoint_interpolates() {
        // 2x1 image: pixels 0 and 200; a 3x1 resize samples the midpoint.
        let mut img = Image::zeros(2, 1, PixelFormat::Gray8);
        img.put_pixel(0, 0, [0, 0, 0]);
        img.put_pixel(1, 0, [200, 0, 0]);
        let out = resize_bilinear(&img, 3, 1);
        // centers at fx = (x+0.5)*2/3-0.5 → 0, ~0.5, 1.0 → values 0, 100, 200
        assert_eq!(out.pixel(0, 0)[0], 0);
        assert_eq!(out.pixel(1, 0)[0], 100);
        assert_eq!(out.pixel(2, 0)[0], 200);
    }

    #[test]
    fn area_downscale_averages() {
        // 2x2 blocks of (0, 0, 100, 100) average to 50.
        let mut img = Image::zeros(2, 2, PixelFormat::Gray8);
        img.put_pixel(0, 0, [0, 0, 0]);
        img.put_pixel(1, 0, [0, 0, 0]);
        img.put_pixel(0, 1, [100, 0, 0]);
        img.put_pixel(1, 1, [100, 0, 0]);
        let out = resize_area(&img, 1, 1);
        assert_eq!(out.pixel(0, 0)[0], 50);
    }

    #[test]
    fn center_crop_takes_middle() {
        let img = Image::gradient(10, 10);
        let c = center_crop(&img, 4, 4);
        assert_eq!(c.pixel(0, 0), img.pixel(3, 3));
        assert_eq!(c.pixel(3, 3), img.pixel(6, 6));
    }

    #[test]
    #[should_panic(expected = "exceeds source")]
    fn center_crop_validates() {
        let img = Image::gradient(4, 4);
        let _ = center_crop(&img, 5, 4);
    }

    #[test]
    fn crop_rect_takes_window() {
        let img = Image::gradient(10, 8);
        let c = crop_rect(&img, 2, 3, 4, 5);
        assert_eq!((c.width(), c.height()), (4, 5));
        assert_eq!(c.pixel(0, 0), img.pixel(2, 3));
        assert_eq!(c.pixel(3, 4), img.pixel(5, 7));
    }

    #[test]
    #[should_panic(expected = "exceeds source")]
    fn crop_rect_validates() {
        let img = Image::gradient(4, 4);
        let _ = crop_rect(&img, 2, 0, 3, 4);
    }

    #[test]
    fn to_tensor_layout_and_scale() {
        let mut img = Image::zeros(2, 1, PixelFormat::Rgb8);
        img.put_pixel(0, 0, [255, 0, 0]);
        img.put_pixel(1, 0, [0, 255, 0]);
        let t = to_tensor(&img);
        assert_eq!(t.shape(), &[1, 3, 1, 2]);
        assert_eq!(t[&[0, 0, 0, 0][..]], 1.0); // R of pixel 0
        assert_eq!(t[&[0, 1, 0, 1][..]], 1.0); // G of pixel 1
        assert_eq!(t[&[0, 2, 0, 0][..]], 0.0);
    }

    #[test]
    fn normalize_matches_formula() {
        let mut t = Tensor::zeros(&[1, 3, 1, 1]);
        t.fill(0.5);
        normalize_imagenet(&mut t);
        for c in 0..3 {
            let expect = (0.5 - IMAGENET_MEAN[c]) / IMAGENET_STD[c];
            assert!((t[&[0, c, 0, 0][..]] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn standard_preprocess_shape() {
        let t = standard_preprocess(&Image::gradient(640, 480), 224);
        assert_eq!(t.shape(), &[1, 3, 224, 224]);
    }

    #[test]
    fn fused_preprocess_matches_unfused_chain_closely() {
        // The fused kernel skips the intermediate u8 rounding, so values
        // differ by at most one quantization step (1/255, scaled by the
        // per-channel std after normalization).
        let src = Image::noise(150, 90, 21);
        let want = standard_preprocess(&src, 96); // bilinear path (≤ 2× downscale)
        let got = fused_preprocess(&src, 96);
        assert_eq!(want.shape(), got.shape());
        let tol = (1.0 / 255.0) / IMAGENET_STD.iter().fold(f32::MAX, |a, &b| a.min(b)) + 1e-4;
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
        // Gray: [0, 1] scaling only, single channel.
        let gray = Image::gradient(64, 48).to_gray();
        let t = fused_preprocess(&gray, 32);
        assert_eq!(t.shape(), &[1, 1, 32, 32]);
        for &v in t.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn fused_preprocess_bit_identical_across_threads() {
        for src in [Image::noise(300, 200, 5), Image::noise(97, 61, 6)] {
            let want = fused_preprocess(&src, 224);
            for threads in [2, 4] {
                let got = fused_preprocess_with(&Backend::new(threads), &src, 224);
                assert_eq!(want.as_slice(), got.as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn fused_preprocess_bit_identical_across_simd_levels() {
        // Odd output side (not a lane multiple) exercises the strip tail;
        // RGB and gray cover both normalization branches.
        for (src, side) in [
            (Image::noise(150, 90, 7), 97),
            (Image::noise(64, 48, 8).to_gray(), 33),
        ] {
            vserve_simd::set_level(vserve_simd::Level::Scalar);
            let want = fused_preprocess(&src, side);
            for level in vserve_simd::available_levels() {
                vserve_simd::set_level(level);
                let got = fused_preprocess(&src, side);
                assert_eq!(want.as_slice(), got.as_slice(), "level={level}");
            }
            vserve_simd::reset_level();
        }
    }

    #[test]
    fn parallel_ops_bit_identical_to_serial() {
        // Both resize filters (area for the large source, bilinear for the
        // small), plus tensor conversion and normalization.
        for src in [Image::noise(613, 411, 3), Image::noise(150, 90, 4)] {
            let want = standard_preprocess(&src, 224);
            for threads in [2, 4] {
                let bk = Backend::new(threads);
                let got = standard_preprocess_with(&bk, &src, 224);
                assert_eq!(want.as_slice(), got.as_slice(), "threads={threads}");
            }
        }
        // Gray path: single-channel rows.
        let gray = Image::gradient(300, 200).to_gray();
        let want = resize_bilinear(&gray, 97, 53);
        let got = resize_bilinear_with(&Backend::new(3), &gray, 97, 53);
        assert_eq!(want, got);
        let want = resize_nearest(&gray, 97, 53);
        let got = resize_nearest_with(&Backend::new(3), &gray, 97, 53);
        assert_eq!(want, got);
    }

    proptest! {
        #[test]
        fn resize_output_within_input_range(
            w in 2usize..24, h in 2usize..24,
            ow in 1usize..32, oh in 1usize..32,
            seed in any::<u64>()
        ) {
            let img = Image::noise(w, h, seed);
            let (lo, hi) = img.as_bytes().iter().fold((255u8, 0u8), |(lo, hi), &b| {
                (lo.min(b), hi.max(b))
            });
            for out in [resize_bilinear(&img, ow, oh), resize_area(&img, ow, oh),
                        resize_nearest(&img, ow, oh)] {
                for &b in out.as_bytes() {
                    prop_assert!(b >= lo && b <= hi);
                }
            }
        }

        #[test]
        fn to_tensor_in_unit_interval(w in 1usize..16, h in 1usize..16, seed in any::<u64>()) {
            let t = to_tensor(&Image::noise(w, h, seed));
            for &v in t.as_slice() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
