//! Binary PNM (PPM/PGM) image I/O.
//!
//! The simplest portable raster format — used by the examples to dump
//! decoded/resized artifacts for visual inspection without adding an
//! external image dependency.

use crate::{Image, PixelFormat, TensorError};

/// Errors from PNM parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PnmError {
    /// The data does not start with a supported magic (`P5`/`P6`).
    BadMagic,
    /// Header fields are missing or malformed.
    BadHeader(&'static str),
    /// The pixel payload is shorter than the header promises.
    Truncated,
    /// The parsed dimensions were invalid.
    BadImage(TensorError),
}

impl std::fmt::Display for PnmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PnmError::BadMagic => write!(f, "not a binary PPM/PGM (expected P5 or P6)"),
            PnmError::BadHeader(what) => write!(f, "malformed PNM header: {what}"),
            PnmError::Truncated => write!(f, "PNM pixel data truncated"),
            PnmError::BadImage(e) => write!(f, "invalid PNM dimensions: {e}"),
        }
    }
}

impl std::error::Error for PnmError {}

/// Serializes an image as binary PPM (`P6`, RGB) or PGM (`P5`, gray).
///
/// # Examples
///
/// ```
/// use vserve_tensor::{pnm, Image};
///
/// let img = Image::gradient(8, 4);
/// let bytes = pnm::to_pnm(&img);
/// let back = pnm::from_pnm(&bytes)?;
/// assert_eq!(back, img);
/// # Ok::<(), vserve_tensor::pnm::PnmError>(())
/// ```
pub fn to_pnm(img: &Image) -> Vec<u8> {
    let magic = match img.format() {
        PixelFormat::Gray8 => "P5",
        PixelFormat::Rgb8 => "P6",
    };
    let header = format!("{magic}\n{} {}\n255\n", img.width(), img.height());
    let mut out = header.into_bytes();
    out.extend_from_slice(img.as_bytes());
    out
}

/// Parses a binary PPM (`P6`) or PGM (`P5`) image.
///
/// Comment lines (`#`) in the header are supported.
///
/// # Errors
///
/// Returns a [`PnmError`] on unsupported magic, malformed header fields,
/// or truncated pixel data.
pub fn from_pnm(data: &[u8]) -> Result<Image, PnmError> {
    let format = match data.get(..2) {
        Some(b"P5") => PixelFormat::Gray8,
        Some(b"P6") => PixelFormat::Rgb8,
        _ => return Err(PnmError::BadMagic),
    };
    let mut pos = 2usize;
    let mut fields = [0usize; 3];
    for field in &mut fields {
        // Skip whitespace and comments.
        loop {
            match data.get(pos) {
                Some(b) if b.is_ascii_whitespace() => pos += 1,
                Some(b'#') => {
                    while data.get(pos).is_some_and(|&b| b != b'\n') {
                        pos += 1;
                    }
                }
                Some(_) => break,
                None => return Err(PnmError::BadHeader("unexpected end of header")),
            }
        }
        let start = pos;
        while data.get(pos).is_some_and(|b| b.is_ascii_digit()) {
            pos += 1;
        }
        if pos == start {
            return Err(PnmError::BadHeader("expected a number"));
        }
        let text = std::str::from_utf8(&data[start..pos])
            .map_err(|_| PnmError::BadHeader("non-ascii number"))?;
        *field = text
            .parse()
            .map_err(|_| PnmError::BadHeader("number out of range"))?;
    }
    let [width, height, maxval] = fields;
    if maxval != 255 {
        return Err(PnmError::BadHeader("only maxval 255 supported"));
    }
    // Exactly one whitespace byte separates the header from pixel data.
    if !data.get(pos).is_some_and(|b| b.is_ascii_whitespace()) {
        return Err(PnmError::BadHeader("missing pixel-data separator"));
    }
    pos += 1;
    let need = width * height * format.channels();
    let pixels = data.get(pos..pos + need).ok_or(PnmError::Truncated)?;
    Image::from_raw(width, height, format, pixels.to_vec()).map_err(PnmError::BadImage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rgb_round_trip() {
        let img = Image::noise(13, 7, 5);
        assert_eq!(from_pnm(&to_pnm(&img)).unwrap(), img);
    }

    #[test]
    fn gray_round_trip() {
        let img = Image::gradient(9, 11).to_gray();
        let bytes = to_pnm(&img);
        assert!(bytes.starts_with(b"P5"));
        assert_eq!(from_pnm(&bytes).unwrap(), img);
    }

    #[test]
    fn header_comments_skipped() {
        let data = b"P5\n# a comment\n2 1\n255\n\x01\x02";
        let img = from_pnm(data).unwrap();
        assert_eq!(img.pixel(0, 0)[0], 1);
        assert_eq!(img.pixel(1, 0)[0], 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(from_pnm(b"P3\n1 1\n255\n").unwrap_err(), PnmError::BadMagic);
        assert_eq!(
            from_pnm(b"P6\n2 2\n255\n\x00").unwrap_err(),
            PnmError::Truncated
        );
        assert!(matches!(
            from_pnm(b"P6\n2 2\n65535\n"),
            Err(PnmError::BadHeader(_))
        ));
        assert!(matches!(from_pnm(b"P6\nx"), Err(PnmError::BadHeader(_))));
    }

    proptest! {
        #[test]
        fn arbitrary_images_round_trip(w in 1usize..24, h in 1usize..24, seed in any::<u64>()) {
            let img = Image::noise(w, h, seed);
            prop_assert_eq!(from_pnm(&to_pnm(&img)).unwrap(), img);
        }

        #[test]
        fn parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = from_pnm(&data);
        }
    }
}
