//! Dense `f32` N-dimensional arrays.

use crate::TensorError;

/// A dense, contiguous, row-major `f32` tensor.
///
/// DNN activations in this suite use NCHW layout: `[batch, channels,
/// height, width]`. The type is deliberately minimal — the compute kernels
/// live in `vserve-dnn`.
///
/// # Examples
///
/// ```
/// use vserve_tensor::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 3]);
/// t[(&[1, 2])] = 5.0;
/// assert_eq!(t[(&[1, 2])], 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or contains a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        assert!(
            shape.iter().all(|&d| d > 0),
            "shape dimensions must be non-zero"
        );
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Wraps a buffer with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] when lengths disagree, or
    /// [`TensorError::EmptyDimension`] for degenerate shapes.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(TensorError::EmptyDimension);
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::SizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the flat element buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat element buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&x, &d)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(x < d, "index {x} out of range for dimension {i} (size {d})");
            off = off * d + x;
        }
        off
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self, TensorError> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(TensorError::EmptyDimension);
        }
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::SizeMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Stacks batch-1 tensors along the leading dimension.
    ///
    /// Every item must share the same shape with a leading dimension of 1
    /// (e.g. `[1, C, H, W]`); the result replaces that leading 1 with the
    /// item count. This is the op a dynamic batcher uses to turn N
    /// preprocessed inputs into one NCHW batch tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for an empty item list, or
    /// [`TensorError::ShapeMismatch`] when an item's shape differs from the
    /// first item's or its leading dimension is not 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use vserve_tensor::Tensor;
    ///
    /// let a = Tensor::zeros(&[1, 3, 2, 2]);
    /// let b = Tensor::zeros(&[1, 3, 2, 2]);
    /// let batch = Tensor::stack(&[&a, &b]).unwrap();
    /// assert_eq!(batch.shape(), &[2, 3, 2, 2]);
    /// ```
    pub fn stack(items: &[&Tensor]) -> Result<Tensor, TensorError> {
        let first = items.first().ok_or(TensorError::EmptyDimension)?;
        if first.shape[0] != 1 {
            return Err(TensorError::ShapeMismatch {
                expected: std::iter::once(1)
                    .chain(first.shape[1..].iter().copied())
                    .collect(),
                actual: first.shape.clone(),
            });
        }
        let mut data = Vec::with_capacity(first.len() * items.len());
        for t in items {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    expected: first.shape.clone(),
                    actual: t.shape.clone(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut shape = first.shape.clone();
        shape[0] = items.len();
        Ok(Tensor { shape, data })
    }

    /// Splits a batched tensor back into batch-1 tensors along the leading
    /// dimension — the inverse of [`stack`](Self::stack).
    ///
    /// # Examples
    ///
    /// ```
    /// use vserve_tensor::Tensor;
    ///
    /// let batch = Tensor::zeros(&[3, 10]);
    /// let items = batch.unstack();
    /// assert_eq!(items.len(), 3);
    /// assert_eq!(items[0].shape(), &[1, 10]);
    /// ```
    pub fn unstack(&self) -> Vec<Tensor> {
        let n = self.shape[0];
        let per = self.data.len() / n;
        let mut shape = self.shape.clone();
        shape[0] = 1;
        self.data
            .chunks(per)
            .map(|chunk| Tensor {
                shape: shape.clone(),
                data: chunk.to_vec(),
            })
            .collect()
    }

    /// Index of the maximum element in the flat buffer (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty (cannot happen for valid tensors).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b).then(std::cmp::Ordering::Greater))
            .map(|(i, _)| i)
            .expect("tensor is never empty")
    }
}

impl std::ops::Index<&[usize]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize]) -> &f32 {
        &self.data[self.flat_index(idx)]
    }
}

impl std::ops::IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.rank(), 3);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape dimensions must be non-zero")]
    fn zeros_rejects_zero_dim() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
        assert_eq!(
            Tensor::from_vec(&[2, 2], vec![0.0; 5]).unwrap_err(),
            TensorError::SizeMismatch {
                expected: 4,
                actual: 5
            }
        );
        assert_eq!(
            Tensor::from_vec(&[], vec![]).unwrap_err(),
            TensorError::EmptyDimension
        );
    }

    #[test]
    fn row_major_indexing() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        assert_eq!(t[&[0, 0][..]], 0.0);
        assert_eq!(t[&[0, 2][..]], 2.0);
        assert_eq!(t[&[1, 0][..]], 3.0);
        assert_eq!(t[&[1, 2][..]], 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_index_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t[&[0, 2][..]];
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r[&[2, 1][..]], 5.0);
        assert!(r.clone().reshape(&[7]).is_err());
    }

    #[test]
    fn argmax_first_max() {
        let t = Tensor::from_vec(&[4], vec![1.0, 9.0, 9.0, 2.0]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn stack_concatenates_in_order() {
        let a = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(&[1, 2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let s = Tensor::stack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn stack_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[1, 4]);
        let b = Tensor::zeros(&[1, 5]);
        assert!(matches!(
            Tensor::stack(&[&a, &b]),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let c = Tensor::zeros(&[2, 4]);
        assert!(matches!(
            Tensor::stack(&[&c]),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert_eq!(Tensor::stack(&[]), Err(TensorError::EmptyDimension));
    }

    #[test]
    fn unstack_inverts_stack() {
        let a = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(&[1, 3], vec![4.0, 5.0, 6.0]).unwrap();
        let items = Tensor::stack(&[&a, &b]).unwrap().unstack();
        assert_eq!(items, vec![a, b]);
    }

    #[test]
    fn map_inplace_applies() {
        let mut t = Tensor::from_vec(&[2], vec![1.0, -2.0]).unwrap();
        t.map_inplace(|x| x * 2.0);
        assert_eq!(t.as_slice(), &[2.0, -4.0]);
    }
}
