//! Dense `f32` N-dimensional arrays.

use crate::TensorError;

/// A dense, contiguous, row-major `f32` tensor.
///
/// DNN activations in this suite use NCHW layout: `[batch, channels,
/// height, width]`. The type is deliberately minimal — the compute kernels
/// live in `vserve-dnn`.
///
/// # Examples
///
/// ```
/// use vserve_tensor::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 3]);
/// t[(&[1, 2])] = 5.0;
/// assert_eq!(t[(&[1, 2])], 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or contains a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        assert!(
            shape.iter().all(|&d| d > 0),
            "shape dimensions must be non-zero"
        );
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Wraps a buffer with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] when lengths disagree, or
    /// [`TensorError::EmptyDimension`] for degenerate shapes.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(TensorError::EmptyDimension);
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::SizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the flat element buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat element buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&x, &d)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(x < d, "index {x} out of range for dimension {i} (size {d})");
            off = off * d + x;
        }
        off
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self, TensorError> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(TensorError::EmptyDimension);
        }
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::SizeMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Index of the maximum element in the flat buffer (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty (cannot happen for valid tensors).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b).then(std::cmp::Ordering::Greater))
            .map(|(i, _)| i)
            .expect("tensor is never empty")
    }
}

impl std::ops::Index<&[usize]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize]) -> &f32 {
        &self.data[self.flat_index(idx)]
    }
}

impl std::ops::IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.rank(), 3);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape dimensions must be non-zero")]
    fn zeros_rejects_zero_dim() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
        assert_eq!(
            Tensor::from_vec(&[2, 2], vec![0.0; 5]).unwrap_err(),
            TensorError::SizeMismatch {
                expected: 4,
                actual: 5
            }
        );
        assert_eq!(
            Tensor::from_vec(&[], vec![]).unwrap_err(),
            TensorError::EmptyDimension
        );
    }

    #[test]
    fn row_major_indexing() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        assert_eq!(t[&[0, 0][..]], 0.0);
        assert_eq!(t[&[0, 2][..]], 2.0);
        assert_eq!(t[&[1, 0][..]], 3.0);
        assert_eq!(t[&[1, 2][..]], 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_index_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t[&[0, 2][..]];
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r[&[2, 1][..]], 5.0);
        assert!(r.clone().reshape(&[7]).is_err());
    }

    #[test]
    fn argmax_first_max() {
        let t = Tensor::from_vec(&[4], vec![1.0, 9.0, 9.0, 2.0]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn map_inplace_applies() {
        let mut t = Tensor::from_vec(&[2], vec![1.0, -2.0]).unwrap();
        t.map_inplace(|x| x * 2.0);
        assert_eq!(t.as_slice(), &[2.0, -4.0]);
    }
}
