//! Images, tensors, and the preprocessing operators the paper measures.
//!
//! The serving pipelines under study spend much of their time in
//! *preprocessing*: JPEG decoding (see `vserve-codec`), resizing to the
//! DNN's input resolution, and normalization. This crate provides the data
//! types and the resize/normalize operators:
//!
//! * [`Image`] — 8-bit interleaved (HWC) raster, 1 or 3 channels.
//! * [`Tensor`] — dense `f32` N-dimensional array in NCHW layout for DNN
//!   input/output.
//! * [`ops`] — nearest / bilinear / area resize, center crop, and
//!   per-channel normalization, mirroring the torchvision-style transform
//!   stack the paper's server runs.
//!
//! # Examples
//!
//! ```
//! use vserve_tensor::{Image, ops};
//!
//! let img = Image::gradient(64, 48);
//! let resized = ops::resize_bilinear(&img, 224, 224);
//! let tensor = ops::to_tensor(&resized);
//! assert_eq!(tensor.shape(), &[1, 3, 224, 224]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
pub mod ops;
pub mod pnm;
mod tensor;

pub use image::{Image, PixelFormat};
pub use tensor::Tensor;

/// Errors produced by tensor and image construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Supplied buffer length does not match the requested dimensions.
    SizeMismatch {
        /// Elements expected from the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// A dimension was zero.
    EmptyDimension,
    /// Tensors combined into a batch disagreed on shape.
    ShapeMismatch {
        /// Shape of the first (reference) tensor.
        expected: Vec<usize>,
        /// Shape of the offending tensor.
        actual: Vec<usize>,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer of {actual} elements does not match shape requiring {expected}"
                )
            }
            TensorError::EmptyDimension => write!(f, "dimensions must be non-zero"),
            TensorError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape {actual:?} does not match batch shape {expected:?}"
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}
