//! 8-bit interleaved raster images.

use crate::TensorError;

/// Pixel layout of an [`Image`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelFormat {
    /// Single luminance channel.
    Gray8,
    /// Interleaved red/green/blue.
    Rgb8,
}

impl PixelFormat {
    /// Number of channels per pixel.
    pub const fn channels(self) -> usize {
        match self {
            PixelFormat::Gray8 => 1,
            PixelFormat::Rgb8 => 3,
        }
    }
}

/// An 8-bit raster image in interleaved (HWC) layout.
///
/// This is the decoded form JPEG images take between decompression and
/// tensor conversion in the preprocessing pipeline.
///
/// # Examples
///
/// ```
/// use vserve_tensor::{Image, PixelFormat};
///
/// let mut img = Image::zeros(4, 3, PixelFormat::Rgb8);
/// img.put_pixel(1, 2, [10, 20, 30]);
/// assert_eq!(img.pixel(1, 2), [10, 20, 30]);
/// assert_eq!(img.raw_len(), 4 * 3 * 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    format: PixelFormat,
    data: Vec<u8>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(width: usize, height: usize, format: PixelFormat) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Image {
            width,
            height,
            format,
            data: vec![0; width * height * format.channels()],
        }
    }

    /// Wraps an existing interleaved buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] if `data.len()` ≠
    /// `width × height × channels`, or [`TensorError::EmptyDimension`] for
    /// zero dimensions.
    pub fn from_raw(
        width: usize,
        height: usize,
        format: PixelFormat,
        data: Vec<u8>,
    ) -> Result<Self, TensorError> {
        if width == 0 || height == 0 {
            return Err(TensorError::EmptyDimension);
        }
        let expected = width * height * format.channels();
        if data.len() != expected {
            return Err(TensorError::SizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Image {
            width,
            height,
            format,
            data,
        })
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel layout.
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// Channels per pixel.
    pub fn channels(&self) -> usize {
        self.format.channels()
    }

    /// Total pixel count (`width × height`).
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Length of the raw buffer in bytes.
    pub fn raw_len(&self) -> usize {
        self.data.len()
    }

    /// Borrow of the interleaved bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable borrow of the interleaved bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the image, returning the raw buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    #[inline]
    fn offset(&self, x: usize, y: usize) -> usize {
        (y * self.width + x) * self.channels()
    }

    /// Reads pixel `(x, y)` into a 3-element array; gray images replicate
    /// the luminance into all three lanes.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let o = self.offset(x, y);
        match self.format {
            PixelFormat::Gray8 => [self.data[o]; 3],
            PixelFormat::Rgb8 => [self.data[o], self.data[o + 1], self.data[o + 2]],
        }
    }

    /// Writes pixel `(x, y)`; gray images store the first component.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    pub fn put_pixel(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let o = self.offset(x, y);
        match self.format {
            PixelFormat::Gray8 => self.data[o] = rgb[0],
            PixelFormat::Rgb8 => {
                self.data[o] = rgb[0];
                self.data[o + 1] = rgb[1];
                self.data[o + 2] = rgb[2];
            }
        }
    }

    /// A smooth RGB test pattern (red ∝ x, green ∝ y, blue ∝ x+y), handy
    /// for codec and resize tests because it is band-limited.
    pub fn gradient(width: usize, height: usize) -> Self {
        let mut img = Image::zeros(width, height, PixelFormat::Rgb8);
        for y in 0..height {
            for x in 0..width {
                let r = (x * 255 / width.max(1)) as u8;
                let g = (y * 255 / height.max(1)) as u8;
                let b = (((x + y) * 255) / (width + height).max(1)) as u8;
                img.put_pixel(x, y, [r, g, b]);
            }
        }
        img
    }

    /// A checkerboard with `cell`-pixel squares — a worst case for DCT
    /// compression, used to exercise codec quality limits.
    pub fn checkerboard(width: usize, height: usize, cell: usize) -> Self {
        let cell = cell.max(1);
        let mut img = Image::zeros(width, height, PixelFormat::Rgb8);
        for y in 0..height {
            for x in 0..width {
                let v = if ((x / cell) + (y / cell)).is_multiple_of(2) {
                    230
                } else {
                    25
                };
                img.put_pixel(x, y, [v, v, v]);
            }
        }
        img
    }

    /// Deterministic pseudo-random noise image (xorshift on coordinates).
    pub fn noise(width: usize, height: usize, seed: u64) -> Self {
        let mut img = Image::zeros(width, height, PixelFormat::Rgb8);
        for y in 0..height {
            for x in 0..width {
                let mut s = seed ^ ((x as u64) << 32) ^ (y as u64) ^ 0x9e3779b97f4a7c15;
                let mut next = || {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s & 0xff) as u8
                };
                img.put_pixel(x, y, [next(), next(), next()]);
            }
        }
        img
    }

    /// Converts to single-channel luminance using the BT.601 weights the
    /// JPEG color transform uses.
    pub fn to_gray(&self) -> Image {
        if self.format == PixelFormat::Gray8 {
            return self.clone();
        }
        let mut out = Image::zeros(self.width, self.height, PixelFormat::Gray8);
        for y in 0..self.height {
            for x in 0..self.width {
                let [r, g, b] = self.pixel(x, y);
                let yv = 0.299 * f32::from(r) + 0.587 * f32::from(g) + 0.114 * f32::from(b);
                out.put_pixel(x, y, [yv.round().clamp(0.0, 255.0) as u8; 3]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_raw_validates() {
        assert_eq!(
            Image::from_raw(2, 2, PixelFormat::Rgb8, vec![0; 11]).unwrap_err(),
            TensorError::SizeMismatch {
                expected: 12,
                actual: 11
            }
        );
        assert_eq!(
            Image::from_raw(0, 2, PixelFormat::Rgb8, vec![]).unwrap_err(),
            TensorError::EmptyDimension
        );
        assert!(Image::from_raw(2, 2, PixelFormat::Gray8, vec![0; 4]).is_ok());
    }

    #[test]
    fn pixel_round_trip() {
        let mut img = Image::zeros(3, 2, PixelFormat::Rgb8);
        img.put_pixel(2, 1, [1, 2, 3]);
        assert_eq!(img.pixel(2, 1), [1, 2, 3]);
        assert_eq!(img.pixel(0, 0), [0, 0, 0]);
    }

    #[test]
    fn gray_replicates() {
        let mut img = Image::zeros(2, 2, PixelFormat::Gray8);
        img.put_pixel(0, 0, [77, 0, 0]);
        assert_eq!(img.pixel(0, 0), [77, 77, 77]);
    }

    #[test]
    #[should_panic(expected = "pixel out of bounds")]
    fn oob_read_panics() {
        let img = Image::zeros(2, 2, PixelFormat::Rgb8);
        let _ = img.pixel(2, 0);
    }

    #[test]
    fn generators_have_right_dims() {
        for img in [
            Image::gradient(5, 7),
            Image::checkerboard(5, 7, 2),
            Image::noise(5, 7, 42),
        ] {
            assert_eq!(img.width(), 5);
            assert_eq!(img.height(), 7);
            assert_eq!(img.raw_len(), 5 * 7 * 3);
        }
    }

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(Image::noise(8, 8, 1), Image::noise(8, 8, 1));
        assert_ne!(Image::noise(8, 8, 1), Image::noise(8, 8, 2));
    }

    #[test]
    fn to_gray_constant_image() {
        let mut img = Image::zeros(2, 2, PixelFormat::Rgb8);
        for y in 0..2 {
            for x in 0..2 {
                img.put_pixel(x, y, [100, 100, 100]);
            }
        }
        let g = img.to_gray();
        assert_eq!(g.format(), PixelFormat::Gray8);
        assert_eq!(g.pixel(1, 1)[0], 100);
    }
}
