//! GPU cost model: inference roofline, GPU preprocessing, PCIe, memory.

use crate::{EngineKind, ImageSpec};

/// Analytic cost model of one discrete GPU.
///
/// Inference follows a saturating roofline: effective throughput at batch
/// size `b` is `peak × b / (b + half_sat)`, which reproduces the familiar
/// batch-1 latency vs. batched-throughput gap. Defaults are calibrated to
/// the paper's RTX 4090 anchors: ViT-Base/16 with TensorRT at ≈1.2 ms
/// batch-1 latency and just under 2 000 img/s batched throughput (so the
/// optimized end-to-end server lands near Fig 3's >1 600 img/s).
///
/// GPU preprocessing (the DALI/nvJPEG path) has two regimes:
///
/// * **zero-load** — a lone image pays the full kernel-launch/setup cost
///   and decodes at low occupancy ([`preproc_time_zero_load`]), which is
///   why the paper's Fig 6 shows CPU preprocessing *winning* for small
///   images;
/// * **batched** — launches amortize and decode runs at high occupancy
///   ([`preproc_time_batched`]), giving the throughput advantage of Figs
///   4, 5 and 7.
///
/// [`preproc_time_zero_load`]: GpuModel::preproc_time_zero_load
/// [`preproc_time_batched`]: GpuModel::preproc_time_batched
///
/// # Examples
///
/// ```
/// use vserve_device::{EngineKind, GpuModel};
///
/// let gpu = GpuModel::rtx4090();
/// // ViT-Base ≈ 17.5 GFLOPs: batch-1 TensorRT latency ≈ 1.3 ms.
/// let t = gpu.infer_batch_time(17.5e9, 1, EngineKind::TensorRt);
/// assert!(t > 1.0e-3 && t < 1.6e-3, "batch-1 {t}s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Peak effective compute with the best engine, FLOP/s (MAC/s).
    pub peak_flops: f64,
    /// Batch size at which half the peak is reached.
    pub batch_half_sat: f64,
    /// Fixed kernel-launch/scheduling cost per inference batch, seconds.
    pub launch_s: f64,
    /// Zero-load GPU preprocessing: fixed setup per image, seconds.
    pub preproc_zero_fixed_s: f64,
    /// Zero-load GPU preprocessing: per-pixel cost (low occupancy), s.
    pub preproc_zero_s_per_px: f64,
    /// Batched GPU preprocessing: fixed cost per batch, seconds.
    pub preproc_batch_fixed_s: f64,
    /// Batched GPU preprocessing: per-image cost, seconds.
    pub preproc_image_s: f64,
    /// Batched GPU preprocessing: per-pixel cost (high occupancy), s.
    pub preproc_s_per_px: f64,
    /// PCIe link bandwidth per GPU, bytes/second.
    pub pcie_bytes_per_s: f64,
    /// Device memory capacity, bytes.
    pub mem_bytes: u64,
    /// Fraction of device memory usable for in-flight request state before
    /// eviction begins (the rest holds weights/engine workspace).
    pub mem_watermark: f64,
    /// Idle power, watts.
    pub idle_w: f64,
    /// Additional power at full utilization, watts.
    pub busy_w: f64,
    /// Fraction of inference capacity lost per unit of GPU-preprocessing
    /// utilization (SM contention between DALI and the engine).
    pub interference: f64,
}

impl GpuModel {
    /// The paper's accelerator: NVIDIA GeForce RTX 4090 (24 GB).
    pub fn rtx4090() -> Self {
        GpuModel {
            peak_flops: 36.0e12,
            batch_half_sat: 1.35,
            launch_s: 30e-6,
            preproc_zero_fixed_s: 1.05e-3,
            preproc_zero_s_per_px: 0.8e-9,
            preproc_batch_fixed_s: 250e-6,
            preproc_image_s: 12e-6,
            preproc_s_per_px: 0.22e-9,
            pcie_bytes_per_s: 25.0e9,
            mem_bytes: 24 * (1 << 30),
            mem_watermark: 0.8,
            idle_w: 55.0,
            busy_w: 330.0,
            interference: 0.04,
        }
    }

    /// Effective FLOP/s at batch size `batch` under `engine`.
    pub fn effective_flops(&self, batch: usize, engine: EngineKind) -> f64 {
        let b = batch.max(1) as f64;
        self.peak_flops * engine.efficiency() * b / (b + self.batch_half_sat)
    }

    /// Wall time to run one inference batch of `batch` images, each costing
    /// `flops_per_image`, seconds.
    pub fn infer_batch_time(&self, flops_per_image: f64, batch: usize, engine: EngineKind) -> f64 {
        let batch = batch.max(1);
        self.launch_s + flops_per_image * batch as f64 / self.effective_flops(batch, engine)
    }

    /// Per-image inference time in the batched steady state, seconds.
    pub fn infer_image_time(&self, flops_per_image: f64, batch: usize, engine: EngineKind) -> f64 {
        self.infer_batch_time(flops_per_image, batch, engine) / batch.max(1) as f64
    }

    /// GPU preprocessing time for a lone image (zero-load latency path),
    /// seconds. Excludes the PCIe transfer of the compressed payload.
    pub fn preproc_time_zero_load(&self, img: &ImageSpec) -> f64 {
        self.preproc_zero_fixed_s + self.preproc_zero_s_per_px * img.pixels() as f64
    }

    /// Per-image GPU preprocessing time when decoding batches of `batch`
    /// images (throughput path), seconds.
    pub fn preproc_time_batched(&self, img: &ImageSpec, batch: usize) -> f64 {
        let batch = batch.max(1) as f64;
        self.preproc_batch_fixed_s / batch
            + self.preproc_image_s
            + self.preproc_s_per_px * img.pixels() as f64
    }

    /// PCIe transfer time for `bytes`, seconds (used as the capacity of a
    /// processor-sharing link in the server model).
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.pcie_bytes_per_s
    }

    /// Bytes of in-flight device memory the server may use before
    /// eviction penalties begin.
    pub fn eviction_threshold(&self) -> f64 {
        self.mem_bytes as f64 * self.mem_watermark
    }

    /// Power at `util` ∈ [0, 1] utilization, watts.
    pub fn power(&self, util: f64) -> f64 {
        self.idle_w + self.busy_w * util.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuModel {
        GpuModel::rtx4090()
    }

    const VIT_B: f64 = 17.5e9;

    #[test]
    fn vit_base_trt_anchors() {
        let g = gpu();
        let batch1 = g.infer_batch_time(VIT_B, 1, EngineKind::TensorRt);
        assert!((batch1 - 1.3e-3).abs() < 0.2e-3, "batch-1 {batch1}");
        let per_img = g.infer_image_time(VIT_B, 32, EngineKind::TensorRt);
        let throughput = 1.0 / per_img;
        assert!(
            (throughput - 1970.0).abs() < 200.0,
            "throughput {throughput}"
        );
    }

    #[test]
    fn engines_ordered() {
        let g = gpu();
        let trt = g.infer_image_time(VIT_B, 32, EngineKind::TensorRt);
        let onnx = g.infer_image_time(VIT_B, 32, EngineKind::OnnxRuntime);
        let pt = g.infer_image_time(VIT_B, 32, EngineKind::PyTorch);
        assert!(trt < onnx && onnx < pt);
    }

    #[test]
    fn batching_amortizes_launch() {
        let g = gpu();
        assert!(
            g.infer_image_time(VIT_B, 64, EngineKind::TensorRt)
                < g.infer_batch_time(VIT_B, 1, EngineKind::TensorRt) / 2.0
        );
    }

    #[test]
    fn zero_load_preproc_anchors() {
        // Fig 6 shapes: small → CPU faster than GPU; large → GPU ≈ 9.5 ms.
        let g = gpu();
        let small = g.preproc_time_zero_load(&ImageSpec::small());
        assert!(small > 1.0e-3, "small GPU zero-load {small}");
        let large = g.preproc_time_zero_load(&ImageSpec::large());
        assert!(
            (large - 9.3e-3).abs() < 1.5e-3,
            "large GPU zero-load {large}"
        );
    }

    #[test]
    fn batched_preproc_much_faster_than_zero_load() {
        let g = gpu();
        let m = ImageSpec::medium();
        let zero = g.preproc_time_zero_load(&m);
        let batched = g.preproc_time_batched(&m, 32);
        assert!(batched < zero / 5.0, "zero {zero} batched {batched}");
    }

    #[test]
    fn large_image_preproc_ratio_matches_fig7() {
        // Fig 7: ViT-Base with large images — end-to-end is ≈19.5 % of
        // inference-only because GPU preprocessing binds.
        let g = gpu();
        let pre = g.preproc_time_batched(&ImageSpec::large(), 32);
        let inf = g.infer_image_time(VIT_B, 32, EngineKind::TensorRt);
        let ratio = inf / pre;
        assert!((ratio - 0.195).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn power_bounds() {
        let g = gpu();
        assert_eq!(g.power(-1.0), g.idle_w);
        assert_eq!(g.power(2.0), g.idle_w + g.busy_w);
    }
}
