//! Inference-engine backends (Fig 3's software ladder).

/// The execution backend compiled for the DNN, ordered by the paper's
/// Fig 3 ladder. Each backend reaches a different fraction of the GPU's
/// peak: TensorRT applies kernel fusion and layer-level optimization,
/// ONNX Runtime uses generic optimized kernels, eager PyTorch pays Python
/// and dispatch overhead per operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Eager PyTorch (the Fig 3 baseline).
    PyTorch,
    /// ONNX Runtime (the TrIS default in Fig 3).
    OnnxRuntime,
    /// TensorRT-compiled engine (the paper's throughput-optimized choice).
    #[default]
    TensorRt,
}

impl EngineKind {
    /// Fraction of the GPU's peak FLOP/s this backend reaches.
    ///
    /// Calibrated against Fig 3: eager PyTorch sustains ≈57 % of the
    /// TensorRT rate for ViT-Base and ONNX Runtime ≈62 %.
    pub fn efficiency(self) -> f64 {
        match self {
            EngineKind::PyTorch => 0.57,
            EngineKind::OnnxRuntime => 0.62,
            EngineKind::TensorRt => 1.0,
        }
    }

    /// Short name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::PyTorch => "pytorch",
            EngineKind::OnnxRuntime => "onnxrt",
            EngineKind::TensorRt => "tensorrt",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiencies_ordered_and_bounded() {
        let (p, o, t) = (
            EngineKind::PyTorch.efficiency(),
            EngineKind::OnnxRuntime.efficiency(),
            EngineKind::TensorRt.efficiency(),
        );
        assert!(p < o && o < t);
        assert_eq!(t, 1.0);
        assert!(p > 0.3);
    }

    #[test]
    fn default_is_tensorrt() {
        assert_eq!(EngineKind::default(), EngineKind::TensorRt);
        assert_eq!(EngineKind::default().to_string(), "tensorrt");
    }
}
