//! Descriptions of request payloads (compressed images).

/// Size description of one compressed image entering the server.
///
/// The cost models only need dimensions and compressed byte count, so
/// simulated requests carry an `ImageSpec` instead of real pixel data.
/// The three named constructors reproduce the paper's representative
/// ImageNet sizes exactly (§4.2, footnote 3).
///
/// # Examples
///
/// ```
/// use vserve_device::ImageSpec;
///
/// let m = ImageSpec::medium();
/// assert_eq!((m.width, m.height), (500, 375));
/// assert_eq!(m.compressed_bytes, 121 * 1024);
/// assert_eq!(m.pixels(), 187_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageSpec {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Compressed (JPEG) size in bytes.
    pub compressed_bytes: usize,
}

impl ImageSpec {
    /// Creates a spec from explicit dimensions and compressed size.
    pub fn new(width: usize, height: usize, compressed_bytes: usize) -> Self {
        ImageSpec {
            width,
            height,
            compressed_bytes,
        }
    }

    /// The paper's *small* image: 4 kB, 60×70.
    pub fn small() -> Self {
        ImageSpec::new(60, 70, 4 * 1024)
    }

    /// The paper's *medium* image: 121 kB, 500×375.
    pub fn medium() -> Self {
        ImageSpec::new(500, 375, 121 * 1024)
    }

    /// The paper's *large* image: 9528 kB, 3564×2880.
    pub fn large() -> Self {
        ImageSpec::new(3564, 2880, 9528 * 1024)
    }

    /// Pixel count.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Bytes of the decoded RGB raster (`w × h × 3`) — what the paper's
    /// §4.4 outlier transfers in the inference-only configuration.
    pub fn decoded_bytes(&self) -> usize {
        self.pixels() * 3
    }

    /// Bytes of the preprocessed `f32` NCHW tensor at `side × side`.
    pub fn tensor_bytes(side: usize) -> usize {
        side * side * 3 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert_eq!(ImageSpec::small().pixels(), 4200);
        assert_eq!(ImageSpec::large().pixels(), 10_264_320);
        assert_eq!(ImageSpec::large().compressed_bytes, 9_756_672);
    }

    #[test]
    fn decoded_is_much_larger_than_compressed_for_small() {
        // §4.4: the decoded raw image is ~5× larger than the compressed one
        // for typical quality levels — check the medium image is in range.
        let m = ImageSpec::medium();
        let ratio = m.decoded_bytes() as f64 / m.compressed_bytes as f64;
        assert!(ratio > 3.0 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn tensor_bytes_at_224() {
        assert_eq!(ImageSpec::tensor_bytes(224), 224 * 224 * 3 * 4);
    }
}
