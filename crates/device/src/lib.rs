//! Calibrated hardware cost and energy models.
//!
//! The paper measures a real i9-13900K + RTX 4090 node; this suite runs
//! everywhere, so the hardware is replaced by analytic models driven by
//! the discrete-event simulator (see DESIGN.md §1 for the substitution
//! argument). The models are *structural* — shared GPU between
//! preprocessing and inference, saturating batch roofline, finite
//! PCIe/staging bandwidth, finite device memory — and their constants are
//! calibrated to the paper's anchor numbers, each documented on the
//! corresponding preset.
//!
//! * [`CpuModel`] — host preprocessing, dispatch, staging bandwidth,
//!   package power ([`CpuModel::i9_13900k`]).
//! * [`GpuModel`] — inference roofline per [`EngineKind`], zero-load vs.
//!   batched GPU preprocessing, PCIe, memory watermark, power
//!   ([`GpuModel::rtx4090`]).
//! * [`ImageSpec`] — request payload descriptions, including the paper's
//!   exact small/medium/large ImageNet sizes.
//! * [`energy_report`] — busy-time integrals → joules (Fig 8).
//!
//! # Examples
//!
//! ```
//! use vserve_device::{CpuModel, EngineKind, GpuModel, ImageSpec};
//!
//! let cpu = CpuModel::i9_13900k();
//! let gpu = GpuModel::rtx4090();
//! let medium = ImageSpec::medium();
//!
//! // The paper's §4.2 observation: preprocessing a medium image on the
//! // CPU takes about as long as ViT-Base inference itself.
//! let pre = cpu.preprocess_time(&medium, 224);
//! let inf = gpu.infer_batch_time(17.5e9, 1, EngineKind::TensorRt);
//! let share = pre / (pre + inf);
//! assert!(share > 0.45 && share < 0.65);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod energy;
mod engine;
mod gpu;
mod image_spec;

pub use cpu::CpuModel;
pub use energy::{energy_report, EnergyReport};
pub use engine::EngineKind;
pub use gpu::GpuModel;
pub use image_spec::ImageSpec;

/// A complete server node: one host CPU and `gpu_count` identical GPUs.
///
/// # Examples
///
/// ```
/// use vserve_device::NodeConfig;
///
/// let node = NodeConfig::paper_testbed();
/// assert_eq!(node.gpu_count, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Host CPU model.
    pub cpu: CpuModel,
    /// Per-GPU model (all GPUs identical).
    pub gpu: GpuModel,
    /// Number of GPUs attached to the host.
    pub gpu_count: usize,
}

impl NodeConfig {
    /// The paper's single-GPU testbed (i9-13900K + RTX 4090).
    pub fn paper_testbed() -> Self {
        NodeConfig {
            cpu: CpuModel::i9_13900k(),
            gpu: GpuModel::rtx4090(),
            gpu_count: 1,
        }
    }

    /// The paper's multi-GPU scaling configuration (§4.6) with `n` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_gpus(n: usize) -> Self {
        assert!(n > 0, "node needs at least one GPU");
        NodeConfig {
            gpu_count: n,
            ..Self::paper_testbed()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_shares_match_paper_fig6() {
        // Paper §4.2: preprocessing share of zero-load latency reaches
        // 56 % (CPU) / 49 % (GPU) for the medium image and 97 % / 88 % for
        // the large image.
        let node = NodeConfig::paper_testbed();
        let inf = node.gpu.infer_batch_time(17.5e9, 1, EngineKind::TensorRt);

        let share_cpu = |img: &ImageSpec| {
            let p = node.cpu.preprocess_time(img, 224);
            p / (p + inf)
        };
        let share_gpu = |img: &ImageSpec| {
            let p =
                node.gpu.preproc_time_zero_load(img) + node.gpu.transfer_time(img.compressed_bytes);
            p / (p + inf)
        };

        let m = ImageSpec::medium();
        let l = ImageSpec::large();
        assert!(
            (share_cpu(&m) - 0.56).abs() < 0.06,
            "cpu medium {}",
            share_cpu(&m)
        );
        assert!(
            (share_gpu(&m) - 0.49).abs() < 0.06,
            "gpu medium {}",
            share_gpu(&m)
        );
        assert!(
            (share_cpu(&l) - 0.97).abs() < 0.02,
            "cpu large {}",
            share_cpu(&l)
        );
        assert!(
            (share_gpu(&l) - 0.88).abs() < 0.03,
            "gpu large {}",
            share_gpu(&l)
        );
    }

    #[test]
    fn small_image_cpu_beats_gpu_at_zero_load() {
        let node = NodeConfig::paper_testbed();
        let s = ImageSpec::small();
        let cpu = node.cpu.preprocess_time(&s, 224);
        let gpu = node.gpu.preproc_time_zero_load(&s);
        assert!(cpu < gpu, "cpu {cpu} vs gpu {gpu}");
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn with_gpus_validates() {
        let _ = NodeConfig::with_gpus(0);
    }
}
