//! Energy accounting from busy-time integrals.

use crate::{CpuModel, GpuModel};

/// Joules attributed to each device over a measurement window, plus the
/// per-image split the paper's Fig 8 reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// CPU package energy over the window, joules.
    pub cpu_joules: f64,
    /// Total GPU energy over the window, joules.
    pub gpu_joules: f64,
    /// Images completed in the window.
    pub images: u64,
}

impl EnergyReport {
    /// CPU joules per image (0 when no images completed).
    pub fn cpu_j_per_image(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.cpu_joules / self.images as f64
        }
    }

    /// GPU joules per image (0 when no images completed).
    pub fn gpu_j_per_image(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.gpu_joules / self.images as f64
        }
    }

    /// Total joules per image.
    pub fn total_j_per_image(&self) -> f64 {
        self.cpu_j_per_image() + self.gpu_j_per_image()
    }
}

/// Converts busy-time integrals into an [`EnergyReport`].
///
/// The server simulation accumulates, over a window of `span` seconds:
/// `cpu_core_seconds` (∫ busy cores dt), per-GPU `gpu_busy_seconds`
/// (∫ utilization dt), and `transfer_bytes` moved over PCIe. Power is
/// piecewise constant between events, so these integrals are exact.
///
/// # Examples
///
/// ```
/// use vserve_device::{energy_report, CpuModel, GpuModel};
///
/// let cpu = CpuModel::i9_13900k();
/// let gpu = GpuModel::rtx4090();
/// // 10 s window, 4 core-busy seconds, one GPU busy 80 % of the time.
/// let r = energy_report(&cpu, &gpu, 10.0, 4.0, &[8.0], 0.0, 1000);
/// assert!(r.cpu_joules > 10.0 * cpu.idle_w);
/// assert!(r.gpu_joules > 10.0 * gpu.idle_w);
/// assert_eq!(r.images, 1000);
/// ```
pub fn energy_report(
    cpu: &CpuModel,
    gpu: &GpuModel,
    span: f64,
    cpu_core_seconds: f64,
    gpu_busy_seconds: &[f64],
    transfer_bytes: f64,
    images: u64,
) -> EnergyReport {
    // PCIe + memory-subsystem energy per byte moved (host side).
    const TRANSFER_J_PER_BYTE: f64 = 30e-12;
    let cpu_joules =
        cpu.idle_w * span + cpu.core_w * cpu_core_seconds + TRANSFER_J_PER_BYTE * transfer_bytes;
    let gpu_joules: f64 = gpu_busy_seconds
        .iter()
        .map(|&busy| gpu.idle_w * span + gpu.busy_w * busy.min(span))
        .sum();
    EnergyReport {
        cpu_joules,
        gpu_joules,
        images,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_system_still_burns_idle_power() {
        let cpu = CpuModel::i9_13900k();
        let gpu = GpuModel::rtx4090();
        let r = energy_report(&cpu, &gpu, 5.0, 0.0, &[0.0], 0.0, 0);
        assert_eq!(r.cpu_joules, 5.0 * cpu.idle_w);
        assert_eq!(r.gpu_joules, 5.0 * gpu.idle_w);
        assert_eq!(r.total_j_per_image(), 0.0);
    }

    #[test]
    fn busier_gpu_costs_more() {
        let cpu = CpuModel::i9_13900k();
        let gpu = GpuModel::rtx4090();
        let low = energy_report(&cpu, &gpu, 10.0, 0.0, &[2.0], 0.0, 100);
        let high = energy_report(&cpu, &gpu, 10.0, 0.0, &[9.0], 0.0, 100);
        assert!(high.gpu_joules > low.gpu_joules);
    }

    #[test]
    fn multi_gpu_adds_idle_floors() {
        let cpu = CpuModel::i9_13900k();
        let gpu = GpuModel::rtx4090();
        let one = energy_report(&cpu, &gpu, 10.0, 0.0, &[0.0], 0.0, 1);
        let four = energy_report(&cpu, &gpu, 10.0, 0.0, &[0.0; 4], 0.0, 1);
        assert!((four.gpu_joules - 4.0 * one.gpu_joules).abs() < 1e-9);
    }

    #[test]
    fn busy_seconds_clamped_to_span() {
        let cpu = CpuModel::i9_13900k();
        let gpu = GpuModel::rtx4090();
        let r = energy_report(&cpu, &gpu, 1.0, 0.0, &[100.0], 0.0, 1);
        assert_eq!(r.gpu_joules, gpu.idle_w + gpu.busy_w);
    }
}
