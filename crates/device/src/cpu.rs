//! Host CPU cost model: preprocessing, request dispatch, staging.

use crate::ImageSpec;

/// Per-pixel SIMD uplift measured by `cargo run --bin kernels` on the
/// reference AVX-512 host: geometric mean of the `jpeg_decode` and
/// `fused_preprocess` simd-vs-scalar speedups in `BENCH_kernels.json`.
/// Hosts without vector units run the same code at factor 1.0.
///
/// Latest full run (AVX-512): jpeg_decode serial 1.905x, fused_preprocess
/// 6.204x → geomean 3.44. Rounded down to stay conservative about the
/// decode share, which carries non-vector Huffman work inside the
/// measured end-to-end number.
pub const SIMD_PX_UPLIFT_MEASURED: f64 = 3.4;

/// Analytic cost model of the host CPU.
///
/// Preprocessing time is the sum of JPEG decode (per-pixel DCT/upsample
/// work plus per-byte Huffman work), resize (read source, write
/// destination), and normalization — the exact pipeline of `vserve-codec`
/// and `vserve-tensor`, whose measured per-element costs anchor the
/// coefficients. Defaults are calibrated so the paper's zero-load shares
/// reproduce: a medium image preprocesses in ≈1.6 ms (56 % of zero-load
/// latency against ViT-Base) and a large image in ≈74 ms (≈97 %).
///
/// # Examples
///
/// ```
/// use vserve_device::{CpuModel, ImageSpec};
///
/// let cpu = CpuModel::i9_13900k();
/// let t = cpu.preprocess_time(&ImageSpec::medium(), 224);
/// assert!(t > 1.2e-3 && t < 2.0e-3, "medium preprocess {t}s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Hardware threads available to the serving process.
    pub cores: usize,
    /// JPEG decode: per-pixel cost (IDCT, color convert), seconds.
    pub decode_s_per_px: f64,
    /// JPEG decode: per-compressed-byte cost (Huffman), seconds.
    pub decode_s_per_byte: f64,
    /// JPEG decode: fixed per-image cost (header parse, setup), seconds.
    pub decode_fixed_s: f64,
    /// Resize: per-source-pixel read cost, seconds.
    pub resize_s_per_src_px: f64,
    /// Resize: per-destination-pixel interpolation cost, seconds.
    pub resize_s_per_dst_px: f64,
    /// Normalize + tensor conversion: per-destination-pixel cost, seconds.
    pub normalize_s_per_px: f64,
    /// Request dispatch (HTTP parse, scheduling, bookkeeping): fixed
    /// seconds per request.
    pub dispatch_fixed_s: f64,
    /// Request dispatch: per-payload-byte copy cost, seconds.
    pub dispatch_s_per_byte: f64,
    /// Host staging bandwidth feeding accelerators (single pageable-copy
    /// path), bytes/second. Shared across all GPUs — the multi-GPU
    /// bottleneck of Fig 9.
    pub staging_bytes_per_s: f64,
    /// RPC fixed cost per request on the network path (frame parse,
    /// socket syscalls, response framing), seconds. Calibrated against
    /// the `vserve-net` loopback measurements (`BENCH_net.json`); zero
    /// when serving in-process.
    pub rpc_fixed_s: f64,
    /// Request serialization/transfer bandwidth of the network path,
    /// payload bytes per second — governs how the RPC leg grows with
    /// image size, the paper's data-transfer row.
    pub serialize_bytes_per_s: f64,
    /// Package idle power, watts.
    pub idle_w: f64,
    /// Marginal power per busy core under vectorized decode load, watts.
    pub core_w: f64,
    /// Vector-unit efficiency factor for the per-pixel arithmetic kernels
    /// (IDCT + color-convert, bilinear interpolation, normalization):
    /// those per-pixel costs are divided by this factor. `1.0` models the
    /// scalar kernels the coefficients were originally calibrated against;
    /// [`CpuModel::i9_13900k_simd`] plants the uplift measured by the
    /// `kernels` bench under runtime SIMD dispatch. Per-byte Huffman work
    /// and fixed per-request costs are sequential and stay uncut.
    pub simd_px_uplift: f64,
}

impl CpuModel {
    /// The paper's host: 13th-gen Intel Core i9-13900K (8P+16E, 32
    /// threads; 24 usable for serving after OS/driver overheads).
    pub fn i9_13900k() -> Self {
        CpuModel {
            cores: 24,
            decode_s_per_px: 5.0e-9,
            decode_s_per_byte: 1.5e-9,
            decode_fixed_s: 30e-6,
            resize_s_per_src_px: 0.8e-9,
            resize_s_per_dst_px: 4.0e-9,
            normalize_s_per_px: 0.5e-9,
            dispatch_fixed_s: 40e-6,
            dispatch_s_per_byte: 0.05e-9,
            staging_bytes_per_s: 8.0e9,
            rpc_fixed_s: 60e-6,
            serialize_bytes_per_s: 2.0e9,
            idle_w: 35.0,
            core_w: 8.0,
            simd_px_uplift: 1.0,
        }
    }

    /// [`i9_13900k`](Self::i9_13900k) with the per-pixel SIMD uplift
    /// measured by the `kernels` bench on an AVX-512 host (geometric mean
    /// of the IDCT + color-convert and fused resize/normalize kernel
    /// speedups under runtime dispatch vs forced-scalar; see
    /// `BENCH_kernels.json`). Huffman and fixed costs are unchanged, so
    /// large-image decode stays per-byte-bound exactly as the paper
    /// measures.
    pub fn i9_13900k_simd() -> Self {
        CpuModel {
            simd_px_uplift: SIMD_PX_UPLIFT_MEASURED,
            ..Self::i9_13900k()
        }
    }

    /// Returns the model with the per-pixel SIMD uplift factor replaced.
    /// Values are clamped to ≥ 1.0 — a vector unit never makes the scalar
    /// baseline slower in this model.
    pub fn with_simd_uplift(mut self, uplift: f64) -> Self {
        self.simd_px_uplift = uplift.max(1.0);
        self
    }

    /// Per-pixel cost divisor for the vectorizable kernels.
    fn px_uplift(&self) -> f64 {
        self.simd_px_uplift.max(1.0)
    }

    /// Single-thread JPEG decode time for `img`, seconds. The per-pixel
    /// IDCT/upsample/color-convert work is divided by the SIMD uplift;
    /// sequential Huffman and fixed setup are not.
    pub fn decode_time(&self, img: &ImageSpec) -> f64 {
        self.decode_fixed_s
            + self.decode_s_per_px * img.pixels() as f64 / self.px_uplift()
            + self.decode_s_per_byte * img.compressed_bytes as f64
    }

    /// Single-thread resize time from `img` to `dst_side²`, seconds. The
    /// per-destination-pixel interpolation arithmetic vectorizes; the
    /// strided source reads are memory-bound and do not.
    pub fn resize_time(&self, img: &ImageSpec, dst_side: usize) -> f64 {
        self.resize_s_per_src_px * img.pixels() as f64
            + self.resize_s_per_dst_px * (dst_side * dst_side) as f64 / self.px_uplift()
    }

    /// Single-thread normalization time at `dst_side²`, seconds.
    pub fn normalize_time(&self, dst_side: usize) -> f64 {
        self.normalize_s_per_px * (dst_side * dst_side * 3) as f64 / self.px_uplift()
    }

    /// Full single-thread preprocessing time (decode + resize + normalize)
    /// for one image resized to `dst_side²`, seconds.
    pub fn preprocess_time(&self, img: &ImageSpec, dst_side: usize) -> f64 {
        self.decode_time(img) + self.resize_time(img, dst_side) + self.normalize_time(dst_side)
    }

    /// Largest DCT-domain downscale denominator in {1, 2, 4, 8} whose
    /// scaled decode output still covers `dst_side²` — mirrors
    /// `vserve_codec::DecodeScale::for_target`.
    pub fn scale_denominator(img: &ImageSpec, dst_side: usize) -> usize {
        if dst_side == 0 {
            return 1;
        }
        for d in [8usize, 4, 2] {
            if img.width.div_ceil(d) >= dst_side && img.height.div_ceil(d) >= dst_side {
                return d;
            }
        }
        1
    }

    /// Single-thread scaled JPEG decode time at downscale denominator
    /// `denom`, seconds. Huffman (per-byte) work is inherently full-cost;
    /// the per-pixel IDCT/upsample/color work shrinks by `denom²`.
    pub fn decode_time_scaled(&self, img: &ImageSpec, denom: usize) -> f64 {
        let d2 = (denom * denom).max(1) as f64;
        self.decode_fixed_s
            + self.decode_s_per_px * img.pixels() as f64 / d2 / self.px_uplift()
            + self.decode_s_per_byte * img.compressed_bytes as f64
    }

    /// Single-thread preprocessing time on the fast path: DCT-domain
    /// scaled decode plus the fused resize→normalize→tensor kernel,
    /// seconds. The fused kernel reads the (scaled) source once and
    /// writes each normalized value in the same pass, so the separate
    /// normalization sweep of [`preprocess_time`](Self::preprocess_time)
    /// disappears into the destination write.
    pub fn preprocess_time_fast(&self, img: &ImageSpec, dst_side: usize) -> f64 {
        let d = Self::scale_denominator(img, dst_side);
        let scaled_px = (img.pixels() / (d * d)).max(1) as f64;
        self.decode_time_scaled(img, d)
            + self.resize_s_per_src_px * scaled_px
            + self.resize_s_per_dst_px * (dst_side * dst_side) as f64 / self.px_uplift()
    }

    /// Cost of serving a preprocessed tensor from the content-addressed
    /// cache: an FNV content hash over the payload plus the map lookup,
    /// seconds. Calibrated against the live server's measured hit path
    /// (~1 byte/cycle hashing plus fixed bookkeeping).
    pub fn cache_hit_time(&self, img: &ImageSpec) -> f64 {
        const HASH_S_PER_BYTE: f64 = 0.25e-9;
        const LOOKUP_FIXED_S: f64 = 2e-6;
        LOOKUP_FIXED_S + HASH_S_PER_BYTE * img.compressed_bytes as f64
    }

    /// Per-request host dispatch time (runs on the CPU regardless of where
    /// preprocessing executes), seconds.
    pub fn dispatch_time(&self, img: &ImageSpec) -> f64 {
        self.dispatch_fixed_s + self.dispatch_s_per_byte * img.compressed_bytes as f64
    }

    /// Fixed RPC cost per request arriving over the network front-end
    /// (frame parse, socket syscalls, response framing) — the paper's
    /// serialization row, seconds. Charged only on the TCP path.
    pub fn rpc_time(&self) -> f64 {
        self.rpc_fixed_s
    }

    /// Time to move `payload` bytes of compressed request through the
    /// network path — the paper's client→server data-transfer row,
    /// seconds. Charged only on the TCP path.
    pub fn serialize_time(&self, payload_bytes: usize) -> f64 {
        if self.serialize_bytes_per_s <= 0.0 {
            0.0
        } else {
            payload_bytes as f64 / self.serialize_bytes_per_s
        }
    }

    /// Package power when `busy_cores` cores are active, watts.
    pub fn power(&self, busy_cores: f64) -> f64 {
        self.idle_w + self.core_w * busy_cores.clamp(0.0, self.cores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuModel {
        CpuModel::i9_13900k()
    }

    #[test]
    fn preprocess_scales_with_size() {
        let s = cpu().preprocess_time(&ImageSpec::small(), 224);
        let m = cpu().preprocess_time(&ImageSpec::medium(), 224);
        let l = cpu().preprocess_time(&ImageSpec::large(), 224);
        assert!(s < m && m < l);
        // Calibration anchors (§4.2): medium ≈ 1.6 ms, large ≈ 74 ms.
        assert!((m - 1.6e-3).abs() < 0.3e-3, "medium {m}");
        assert!(l > 55e-3 && l < 95e-3, "large {l}");
    }

    #[test]
    fn fast_path_beats_baseline_and_matches_scale_selection() {
        let c = cpu();
        // Large images (denominator 8) shed most per-pixel work; medium
        // ones (denominator 1 at 224) only save the fused normalize pass.
        let l = ImageSpec::large();
        assert!(c.preprocess_time_fast(&l, 224) < c.preprocess_time(&l, 224) / 2.0);
        let m = ImageSpec::medium();
        assert!(c.preprocess_time_fast(&m, 224) < c.preprocess_time(&m, 224));
        // Huffman work is irreducible: fast can't drop below it.
        assert!(c.preprocess_time_fast(&l, 224) > c.decode_s_per_byte * l.compressed_bytes as f64);
        // Small images have no headroom: denominator 1 ≈ baseline decode.
        assert_eq!(CpuModel::scale_denominator(&ImageSpec::small(), 224), 1);
        assert_eq!(CpuModel::scale_denominator(&ImageSpec::medium(), 224), 1);
        assert_eq!(
            CpuModel::scale_denominator(&ImageSpec::new(500, 375, 0), 160),
            2
        );
        assert_eq!(CpuModel::scale_denominator(&ImageSpec::large(), 224), 8);
    }

    #[test]
    fn cache_hit_is_orders_cheaper_than_preprocess() {
        let c = cpu();
        let m = ImageSpec::medium();
        assert!(c.cache_hit_time(&m) < 0.05 * c.preprocess_time_fast(&m, 224));
    }

    #[test]
    fn decode_dominates_for_large() {
        let l = ImageSpec::large();
        assert!(cpu().decode_time(&l) > 0.6 * cpu().preprocess_time(&l, 224));
    }

    #[test]
    fn dispatch_much_cheaper_than_preprocess() {
        let m = ImageSpec::medium();
        assert!(cpu().dispatch_time(&m) < 0.1 * cpu().preprocess_time(&m, 224));
    }

    #[test]
    fn rpc_leg_small_but_grows_with_payload() {
        let c = cpu();
        let m = ImageSpec::medium();
        let l = ImageSpec::large();
        let rpc_m = c.rpc_time() + c.serialize_time(m.compressed_bytes);
        let rpc_l = c.rpc_time() + c.serialize_time(l.compressed_bytes);
        assert!(rpc_l > rpc_m, "bigger payloads cost more on the wire");
        // The paper's measurement: the RPC leg is a small slice of the
        // end-to-end time for a medium image, not a dominant stage.
        assert!(rpc_m < 0.25 * c.preprocess_time(&m, 224), "rpc {rpc_m}");
        assert!(rpc_m > 0.0);
    }

    #[test]
    fn simd_uplift_cuts_pixel_work_but_not_huffman() {
        let scalar = cpu();
        let simd = CpuModel::i9_13900k_simd();
        assert!(simd.simd_px_uplift > 1.0);
        let m = ImageSpec::medium();
        let l = ImageSpec::large();
        // Vectorized preprocessing is strictly faster...
        assert!(simd.preprocess_time(&m, 224) < scalar.preprocess_time(&m, 224));
        assert!(simd.preprocess_time_fast(&l, 224) < scalar.preprocess_time_fast(&l, 224));
        // ...but the sequential Huffman + fixed terms are untouched, so
        // the saving is bounded by the per-pixel share.
        let floor = scalar.decode_fixed_s + scalar.decode_s_per_byte * l.compressed_bytes as f64;
        assert!(simd.decode_time(&l) > floor);
        let px_share = scalar.decode_s_per_px * l.pixels() as f64;
        assert!(scalar.decode_time(&l) - simd.decode_time(&l) <= px_share);
        // The paper's headline ordering survives recalibration.
        let s_t = simd.preprocess_time(&ImageSpec::small(), 224);
        let m_t = simd.preprocess_time(&m, 224);
        let l_t = simd.preprocess_time(&l, 224);
        assert!(s_t < m_t && m_t < l_t);
    }

    #[test]
    fn simd_uplift_clamps_below_one() {
        let c = cpu().with_simd_uplift(0.25);
        assert_eq!(c.simd_px_uplift, 1.0);
        assert_eq!(c.preprocess_time(&ImageSpec::medium(), 224), {
            cpu().preprocess_time(&ImageSpec::medium(), 224)
        });
    }

    #[test]
    fn power_clamps_to_core_count() {
        let c = cpu();
        assert_eq!(c.power(0.0), c.idle_w);
        assert_eq!(c.power(1e9), c.idle_w + c.core_w * c.cores as f64);
    }
}
