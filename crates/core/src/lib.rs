//! # vserve — DNN server overhead analysis for computer vision
//!
//! A from-scratch Rust reproduction of *Beyond Inference: Performance
//! Analysis of DNN Server Overheads for Computer Vision* (DAC 2024).
//! The paper shows that on a throughput-optimized serving system, data
//! processing and data movement — JPEG decode, resize, normalize, PCIe
//! transfers, queueing, message brokers — can dominate end-to-end
//! performance even though DNN inference gets all the optimization
//! attention.
//!
//! This facade crate re-exports the full suite:
//!
//! | Subsystem | Crate | What it implements |
//! |---|---|---|
//! | serving system | [`server`] | dispatch, CPU/GPU preprocessing, dynamic batching, instances, transfers |
//! | hardware model | [`device`] | calibrated CPU/GPU/PCIe/memory/energy costs (i9-13900K + RTX 4090) |
//! | DNN engine | [`dnn`] | kernels, graph IR, FLOPs accounting, ViT/ResNet/detector builders |
//! | JPEG codec | [`codec`] | baseline JPEG encoder/decoder written from scratch |
//! | brokers | [`broker`] | disk-backed log broker, in-memory broker, cost models |
//! | pipelines | [`pipeline`] | detect→identify multi-DNN pipeline (Fig 11) |
//! | workloads | [`workload`] | arrivals, image-size mixes, faces-per-frame |
//! | simulation | [`sim`] | deterministic discrete-event kernel |
//! | statistics | [`metrics`] | streaming moments, quantiles, histograms, breakdowns |
//! | model zoo | [`zoo`] | the Fig 4 sweep of ~20 vision models |
//!
//! # Quick start
//!
//! Measure the preprocessing share of zero-load latency (the paper's
//! headline §4.2 result):
//!
//! ```
//! use vserve::prelude::*;
//!
//! let report = Experiment {
//!     node: NodeConfig::paper_testbed(),
//!     config: ServerConfig::optimized_cpu_preproc(),
//!     model: ModelProfile::vit_base(),
//!     mix: ImageMix::fixed(ImageSpec::medium()),
//!     concurrency: 1,
//!     warmup_s: 0.2,
//!     measure_s: 1.0,
//!     seed: 7,
//! }
//! .zero_load();
//! // ≈56 % of a medium image's request time is preprocessing.
//! assert!(report.preproc_share() > 0.45);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod zoo;

pub use vserve_broker as broker;
pub use vserve_codec as codec;
pub use vserve_device as device;
pub use vserve_dnn as dnn;
pub use vserve_metrics as metrics;
pub use vserve_pipeline as pipeline;
pub use vserve_server as server;
pub use vserve_sim as sim;
pub use vserve_tensor as tensor;
pub use vserve_workload as workload;

/// The common imports for writing experiments.
pub mod prelude {
    pub use vserve_broker::BrokerKind;
    pub use vserve_device::{EngineKind, ImageSpec, NodeConfig};
    pub use vserve_pipeline::PipelineExperiment;
    pub use vserve_server::{
        Experiment, LaneReport, ModelProfile, PreprocWhere, Priority, ServerConfig, ServerReport,
        StageMode, TenantSpec,
    };
    pub use vserve_workload::{Arrivals, FacesPerFrame, ImageMix};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_wires_an_experiment() {
        let report = Experiment {
            node: NodeConfig::paper_testbed(),
            config: ServerConfig::optimized(),
            model: ModelProfile::tiny_vit(),
            mix: ImageMix::fixed(ImageSpec::medium()),
            concurrency: 32,
            warmup_s: 0.2,
            measure_s: 0.5,
            seed: 1,
        }
        .run();
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn zoo_profiles_run_through_server() {
        let zoo = crate::zoo::build();
        let small = zoo.iter().find(|e| e.name == "vit-tiny-16").unwrap();
        let report = Experiment {
            node: NodeConfig::paper_testbed(),
            config: ServerConfig::optimized(),
            model: small.profile(),
            mix: ImageMix::fixed(ImageSpec::medium()),
            concurrency: 32,
            warmup_s: 0.2,
            measure_s: 0.5,
            seed: 1,
        }
        .run();
        assert!(report.throughput > 500.0);
    }
}
