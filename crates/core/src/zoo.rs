//! The Fig 4 model zoo: vision models spanning 0.5–80 GFLOPs.
//!
//! Each entry names a model family from `vserve-dnn`, its native input
//! resolution, and the FLOPs computed from the actual graph definition.
//! Where the architecture matches a published model, the model-card FLOPs
//! are recorded for cross-checking; `-class` entries stand in for
//! families (Swin, ConvNeXt, SegFormer, DETR, DPT, BEiT) whose exact
//! blocks we do not reimplement but whose compute scale and input size we
//! match.

use vserve_dnn::graph::Graph;
use vserve_dnn::{models, DnnError};
use vserve_server::ModelProfile;

/// One zoo model: a named architecture at its native resolution.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Model name.
    pub name: &'static str,
    /// Native input side in pixels.
    pub input_side: usize,
    /// FLOPs (MACs) per image, from the graph definition.
    pub gflops: f64,
    /// Parameters in millions, from the graph definition.
    pub mparams: f64,
    /// Published model-card GFLOPs when the architecture matches a real
    /// model exactly.
    pub published_gflops: Option<f64>,
}

impl ZooEntry {
    /// Server-facing profile for this model.
    pub fn profile(&self) -> ModelProfile {
        ModelProfile::new(self.name, self.gflops * 1e9, self.input_side)
    }
}

fn entry(
    name: &'static str,
    input_side: usize,
    published: Option<f64>,
    graph: Result<Graph, DnnError>,
) -> ZooEntry {
    let graph = graph.expect("zoo architectures are valid by construction");
    ZooEntry {
        name,
        input_side,
        gflops: graph.flops() as f64 / 1e9,
        mparams: graph.params() as f64 / 1e6,
        published_gflops: published,
    }
}

/// Builds the full zoo, ordered by ascending FLOPs.
///
/// # Examples
///
/// ```
/// let zoo = vserve::zoo::build();
/// assert!(zoo.len() >= 18);
/// assert!(zoo.windows(2).all(|w| w[0].gflops <= w[1].gflops));
/// ```
pub fn build() -> Vec<ZooEntry> {
    let mut zoo = vec![
        entry("resnet18-160", 160, None, models::resnet18(160, 1000)),
        entry(
            "mobile-vit-class",
            160,
            None,
            models::vit(160, 16, 144, 8, 4, 1000),
        ),
        entry("vit-tiny-16", 224, Some(1.26), models::vit_tiny(224)),
        entry("tinyvit-5m-class", 224, Some(1.3), models::tiny_vit(224)),
        entry("facenet-160", 160, None, models::facenet(160)),
        entry("resnet-18", 224, Some(1.8), models::resnet18(224, 1000)),
        entry("resnet-34", 224, Some(3.6), models::resnet34(224, 1000)),
        entry("resnet-50", 224, Some(4.1), models::resnet50(224, 1000)),
        entry("vit-small-16", 224, Some(4.6), models::vit_small(224)),
        entry("deit-small-16", 224, Some(4.6), models::vit_small(224)),
        entry(
            "vit-base-32",
            224,
            Some(4.4),
            models::vit(224, 32, 768, 12, 12, 1000),
        ),
        entry(
            "segformer-b2-class",
            512,
            None,
            models::vit(512, 16, 448, 16, 8, 150),
        ),
        entry(
            "swin-base-class",
            224,
            None,
            models::vit(224, 16, 640, 14, 10, 1000),
        ),
        entry(
            "convnext-base-class",
            224,
            None,
            models::resnet50_width(224, 1000, 1.9),
        ),
        entry("vit-base-16", 224, Some(17.6), models::vit_base(224)),
        entry("deit-base-16", 224, Some(17.6), models::vit_base(224)),
        entry("maskrcnn-class", 640, None, models::faster_rcnn(640)),
        entry("dpt-depth-class", 384, None, models::vit_base(384)),
        entry("vit-base-16-384", 384, Some(55.5), models::vit_base(384)),
        entry("detr-resnet50-class", 800, None, models::faster_rcnn(800)),
        entry("vit-large-16", 224, Some(61.6), models::vit_large(224)),
        entry("beit-large-class", 224, None, models::vit_large(224)),
    ];
    zoo.sort_by(|a, b| a.gflops.total_cmp(&b.gflops));
    zoo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_spans_the_papers_range() {
        let zoo = build();
        assert!(zoo.len() >= 18, "{} models", zoo.len());
        let min = zoo.first().unwrap().gflops;
        let max = zoo.last().unwrap().gflops;
        assert!(min < 2.0, "min {min}");
        assert!(max > 40.0, "max {max}");
        // Fig 4's key population: several models below 5 GFLOPs.
        let below5 = zoo.iter().filter(|e| e.gflops < 5.0).count();
        assert!(below5 >= 6, "{below5} models below 5 GFLOPs");
    }

    #[test]
    fn computed_flops_match_published_within_tolerance() {
        for e in build() {
            if let Some(pub_gf) = e.published_gflops {
                let rel = (e.gflops - pub_gf).abs() / pub_gf;
                assert!(
                    rel < 0.15,
                    "{}: computed {:.2} vs published {:.2}",
                    e.name,
                    e.gflops,
                    pub_gf
                );
            }
        }
    }

    #[test]
    fn profiles_preserve_scale() {
        for e in build() {
            let p = e.profile();
            assert_eq!(p.input_side, e.input_side);
            assert!((p.flops / 1e9 - e.gflops).abs() < 1e-9);
        }
    }

    #[test]
    fn params_are_positive() {
        assert!(build().iter().all(|e| e.mparams > 0.1));
    }
}
