//! Declarative cascade pipelines: a DAG of model stages over tenant
//! lanes, with per-edge transforms and (possibly dynamic) fan-out.
//!
//! A [`PipelineSpec`] names its stages; stage 0 is the root. Every edge
//! points *forward* (`to > parent index`), so a validated spec is a DAG
//! by construction — no cycle check needed at execution time. Edges
//! carry a [`Transform`] (how a parent's frame becomes a child's input)
//! and a [`FanOut`] (how many children the edge spawns, fixed or derived
//! from the parent's output). The live executor
//! ([`crate::PipelineRunner`]) walks this structure; the simulator's
//! detect→identify model is its fixed two-stage special case.
//!
//! The `VSERVE_PIPELINE` environment variable carries a compact chain
//! syntax (see [`PipelineSpec::parse`]):
//!
//! ```text
//! faces:det>4xid            # det, then 4 crops into id
//! faces:det@t0?0.9>*xid@t1  # lanes t0/t1, early exit at 0.9,
//!                           # fan-out from the detector's output
//! ```

/// Environment variable holding a [`PipelineSpec::parse`] chain; read by
/// [`PipelineSpec::from_env`].
pub const PIPELINE_ENV: &str = "VSERVE_PIPELINE";

/// Environment variable capping dynamic fan-out ([`FanOut::FromOutput`])
/// and, at validation, fixed fan-out. Defaults to
/// [`DEFAULT_FANOUT_CAP`].
pub const FANOUT_CAP_ENV: &str = "VSERVE_PIPELINE_FANOUT_CAP";

/// Default fan-out cap when [`FANOUT_CAP_ENV`] is unset.
pub const DEFAULT_FANOUT_CAP: u32 = 8;

/// Resolves the global fan-out cap from [`FANOUT_CAP_ENV`].
pub fn fanout_cap_from_env() -> u32 {
    std::env::var(FANOUT_CAP_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_FANOUT_CAP)
}

/// How a parent's frame becomes one child's input payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Child receives the parent's payload bytes unchanged (the child
    /// lane's own preprocessing resizes to its model input).
    Identity,
    /// Decode, resize the full frame to `side × side`, re-encode — the
    /// low-res early-exit front of a cascade.
    Resize {
        /// Output side in pixels.
        side: usize,
    },
    /// Decode once, cut child `i` of `k` out of a near-square grid of
    /// detection regions, re-encode each crop. This is the live stand-in
    /// for detector boxes: deterministic, covers the frame, and gives
    /// every child distinct bytes (so the preproc cache cannot collapse
    /// siblings).
    CropGrid,
}

/// How many children an edge spawns per parent completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanOut {
    /// Always exactly `k` children (0 = edge disabled).
    Fixed(u32),
    /// `1 + (argmax(parent output) mod cap)` children — a deterministic
    /// stand-in for "K detections found", exercised by the dynamic
    /// fan-out paths. `cap` bounds it.
    FromOutput {
        /// Upper bound on the derived fan-out.
        cap: u32,
    },
}

impl FanOut {
    /// Largest number of children this edge can spawn.
    pub fn max(&self) -> u32 {
        match *self {
            FanOut::Fixed(k) => k,
            FanOut::FromOutput { cap } => cap,
        }
    }

    /// Children to spawn given the parent's output vector.
    pub fn eval(&self, output: &[f32]) -> u32 {
        match *self {
            FanOut::Fixed(k) => k,
            FanOut::FromOutput { cap } => {
                let argmax = output
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                1 + (argmax as u32) % cap.max(1)
            }
        }
    }
}

/// One outgoing edge of a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Index of the child stage; must be greater than the parent's index.
    pub to: usize,
    /// Payload transform applied per child.
    pub transform: Transform,
    /// Children spawned per parent completion.
    pub fanout: FanOut,
}

/// One stage of the cascade: a model lane plus its outgoing edges.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Stage name (breakdown row + trace label); unique within the spec.
    pub name: String,
    /// Tenant or model name the stage's sub-requests are routed to
    /// (resolved through `LiveServer::lane_of` semantics).
    pub lane: String,
    /// Outgoing edges; empty for leaf stages.
    pub children: Vec<Edge>,
    /// Early-exit confidence: when the stage's max output probability
    /// reaches this, its children are skipped and the stage completes the
    /// path (the low-confidence-only cascade of Kang et al.).
    pub early_exit: Option<f32>,
}

impl StageSpec {
    /// A leaf stage on `lane`.
    pub fn leaf(name: &str, lane: &str) -> Self {
        StageSpec {
            name: name.to_string(),
            lane: lane.to_string(),
            children: Vec::new(),
            early_exit: None,
        }
    }
}

/// A validated cascade DAG. Construct with [`PipelineSpec::new`] (which
/// validates), [`PipelineSpec::parse`], or [`PipelineSpec::chain`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Pipeline name — the wire routing key and the cascade row prefix.
    pub name: String,
    /// Stages; index 0 is the root every frame enters through.
    pub stages: Vec<StageSpec>,
}

impl PipelineSpec {
    /// Validates and constructs a spec.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec has no stages, a name is empty or
    /// duplicated, an edge points backward/self/out of range (the DAG
    /// guarantee), or an edge's fan-out exceeds `fanout_cap`.
    pub fn new(name: &str, stages: Vec<StageSpec>, fanout_cap: u32) -> Result<Self, String> {
        if name.is_empty() {
            return Err("pipeline name must be non-empty".into());
        }
        if stages.is_empty() {
            return Err(format!("pipeline '{name}' has no stages"));
        }
        for (i, s) in stages.iter().enumerate() {
            if s.name.is_empty() {
                return Err(format!("stage {i} of '{name}' has an empty name"));
            }
            if stages[..i].iter().any(|p| p.name == s.name) {
                return Err(format!("duplicate stage name '{}' in '{name}'", s.name));
            }
            for e in &s.children {
                if e.to <= i || e.to >= stages.len() {
                    return Err(format!(
                        "edge {i}→{} of '{name}' must point forward (DAG)",
                        e.to
                    ));
                }
                if e.fanout.max() > fanout_cap {
                    return Err(format!(
                        "edge {i}→{} fan-out {} exceeds cap {fanout_cap}",
                        e.to,
                        e.fanout.max()
                    ));
                }
            }
        }
        Ok(PipelineSpec {
            name: name.to_string(),
            stages,
        })
    }

    /// A linear detect→identify chain: root on `det_lane`, `k` crop
    /// children on `id_lane` — the live counterpart of the simulator's
    /// fixed two-stage pipeline.
    pub fn chain(name: &str, det_lane: &str, id_lane: &str, k: u32) -> Self {
        let det = StageSpec {
            name: "det".to_string(),
            lane: det_lane.to_string(),
            children: vec![Edge {
                to: 1,
                transform: Transform::CropGrid,
                fanout: FanOut::Fixed(k),
            }],
            early_exit: None,
        };
        let id = StageSpec::leaf("id", id_lane);
        PipelineSpec::new(name, vec![det, id], k.max(DEFAULT_FANOUT_CAP))
            .expect("chain spec is valid by construction")
    }

    /// Worst-case sub-requests one frame can spawn through this spec
    /// (every edge at its maximum fan-out). The executor's admission
    /// reserves this much ingress budget before accepting a frame, so a
    /// half-finished parent can never deadlock on capacity its children
    /// need (DESIGN §16).
    pub fn worst_case_requests(&self) -> usize {
        // Edges only point forward, so a right-to-left pass sees every
        // child's weight before its parents.
        let n = self.stages.len();
        let mut weight = vec![1usize; n];
        for i in (0..n).rev() {
            for e in &self.stages[i].children {
                weight[i] = weight[i].saturating_add(e.fanout.max() as usize * weight[e.to]);
            }
        }
        weight[0]
    }

    /// Parses the compact chain syntax used by [`PIPELINE_ENV`]:
    ///
    /// ```text
    /// <name>:<stage>[><stage>]...
    /// <stage> := [<K>x | *x] <id> [@<lane>] [?<exit>]
    /// ```
    ///
    /// `Kx` fixes the edge *into* that stage at `K` children per parent,
    /// `*x` derives it from the parent's output (capped at `fanout_cap`),
    /// and no prefix means 1. `@lane` routes the stage (default: the
    /// stage id); `?0.9` sets the parent-side early exit... on the stage
    /// itself. Edges use [`Transform::CropGrid`] when fan-out can exceed
    /// 1 and [`Transform::Identity`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns a message for syntax errors or an invalid resulting spec.
    pub fn parse(s: &str, fanout_cap: u32) -> Result<Self, String> {
        let (name, chain) = s
            .split_once(':')
            .ok_or_else(|| format!("'{s}': expected '<name>:<stages>'"))?;
        let segs: Vec<&str> = chain.split('>').collect();
        let mut stages = Vec::with_capacity(segs.len());
        let mut incoming: Vec<FanOut> = Vec::with_capacity(segs.len());
        for (i, seg) in segs.iter().enumerate() {
            let seg = seg.trim();
            let (fan, rest) = if let Some(r) = seg.strip_prefix("*x") {
                (FanOut::FromOutput { cap: fanout_cap }, r)
            } else if let Some((k, r)) = seg
                .split_once('x')
                .and_then(|(k, r)| k.parse::<u32>().ok().map(|k| (k, r)))
            {
                (FanOut::Fixed(k), r)
            } else {
                (FanOut::Fixed(1), seg)
            };
            if i == 0 && fan != FanOut::Fixed(1) {
                return Err(format!("'{s}': the root stage cannot have fan-in"));
            }
            let (rest, exit) = match rest.split_once('?') {
                Some((r, t)) => {
                    let th: f32 = t
                        .parse()
                        .map_err(|_| format!("'{s}': bad early-exit '{t}'"))?;
                    (r, Some(th))
                }
                None => (rest, None),
            };
            let (id, lane) = match rest.split_once('@') {
                Some((id, lane)) => (id, lane),
                None => (rest, rest),
            };
            stages.push(StageSpec {
                name: id.to_string(),
                lane: lane.to_string(),
                children: Vec::new(),
                early_exit: exit,
            });
            incoming.push(fan);
        }
        for i in 1..stages.len() {
            let fan = incoming[i];
            let transform = if fan.max() > 1 {
                Transform::CropGrid
            } else {
                Transform::Identity
            };
            stages[i - 1].children.push(Edge {
                to: i,
                transform,
                fanout: fan,
            });
        }
        PipelineSpec::new(name.trim(), stages, fanout_cap)
    }

    /// Reads and parses [`PIPELINE_ENV`]; `None` when unset or invalid
    /// (a serving process must not die on a bad knob).
    pub fn from_env() -> Option<Self> {
        let s = std::env::var(PIPELINE_ENV).ok()?;
        PipelineSpec::parse(&s, fanout_cap_from_env()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_builds_and_counts_worst_case() {
        let spec = PipelineSpec::chain("faces", "det", "id", 4);
        assert_eq!(spec.stages.len(), 2);
        // 1 root + 4 children.
        assert_eq!(spec.worst_case_requests(), 5);
    }

    #[test]
    fn worst_case_multiplies_through_depth() {
        // 1 + 3×(1 + 2×1) = 10.
        let s0 = StageSpec {
            name: "a".into(),
            lane: "a".into(),
            children: vec![Edge {
                to: 1,
                transform: Transform::CropGrid,
                fanout: FanOut::Fixed(3),
            }],
            early_exit: None,
        };
        let s1 = StageSpec {
            name: "b".into(),
            lane: "b".into(),
            children: vec![Edge {
                to: 2,
                transform: Transform::Identity,
                fanout: FanOut::FromOutput { cap: 2 },
            }],
            early_exit: None,
        };
        let spec = PipelineSpec::new("deep", vec![s0, s1, StageSpec::leaf("c", "c")], 8).unwrap();
        assert_eq!(spec.worst_case_requests(), 10);
    }

    #[test]
    fn validation_rejects_backward_edges_and_dups() {
        let bad = vec![
            StageSpec {
                name: "a".into(),
                lane: "a".into(),
                children: vec![Edge {
                    to: 0,
                    transform: Transform::Identity,
                    fanout: FanOut::Fixed(1),
                }],
                early_exit: None,
            },
            StageSpec::leaf("b", "b"),
        ];
        assert!(PipelineSpec::new("p", bad, 8).is_err());
        let dup = vec![StageSpec::leaf("a", "x"), StageSpec::leaf("a", "y")];
        assert!(PipelineSpec::new("p", dup, 8).is_err());
        assert!(PipelineSpec::new("p", Vec::new(), 8).is_err());
    }

    #[test]
    fn validation_enforces_fanout_cap() {
        let s = vec![
            StageSpec {
                name: "a".into(),
                lane: "a".into(),
                children: vec![Edge {
                    to: 1,
                    transform: Transform::CropGrid,
                    fanout: FanOut::Fixed(9),
                }],
                early_exit: None,
            },
            StageSpec::leaf("b", "b"),
        ];
        assert!(PipelineSpec::new("p", s.clone(), 8).is_err());
        assert!(PipelineSpec::new("p", s, 9).is_ok());
    }

    #[test]
    fn parse_round_trips_the_readme_examples() {
        let p = PipelineSpec::parse("faces:det>4xid", 8).unwrap();
        assert_eq!(p.name, "faces");
        assert_eq!(p.stages[0].lane, "det");
        assert_eq!(
            p.stages[0].children,
            vec![Edge {
                to: 1,
                transform: Transform::CropGrid,
                fanout: FanOut::Fixed(4),
            }]
        );

        let p = PipelineSpec::parse("faces:det@t0?0.9>*xid@t1", 6).unwrap();
        assert_eq!(p.stages[0].lane, "t0");
        assert_eq!(p.stages[0].early_exit, Some(0.9));
        assert_eq!(p.stages[1].lane, "t1");
        assert_eq!(
            p.stages[0].children[0].fanout,
            FanOut::FromOutput { cap: 6 }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PipelineSpec::parse("no-colon", 8).is_err());
        assert!(PipelineSpec::parse("p:4xroot>id", 8).is_err());
        assert!(PipelineSpec::parse("p:a?notafloat>b", 8).is_err());
        assert!(PipelineSpec::parse("p:a>9xb", 8).is_err());
    }

    #[test]
    fn dynamic_fanout_derives_from_argmax() {
        let f = FanOut::FromOutput { cap: 4 };
        assert_eq!(f.eval(&[0.9, 0.1]), 1); // argmax 0 → 1
        assert_eq!(f.eval(&[0.1, 0.9]), 2); // argmax 1 → 2
        assert_eq!(f.eval(&[0.0, 0.0, 0.0, 0.0, 1.0]), 1); // 4 % 4 → 1
        assert_eq!(f.eval(&[]), 1);
        assert_eq!(FanOut::Fixed(3).eval(&[1.0]), 3);
    }
}
