//! Pipeline experiment results.

use vserve_broker::BrokerKind;
use vserve_metrics::{LatencySummary, StageBreakdown};

/// Stage names used in pipeline breakdowns.
pub mod pipeline_stages {
    /// Face detection (stage 1) GPU time.
    pub const DETECT: &str = "0-detect";
    /// Broker time: produce + station + consume.
    pub const BROKER: &str = "1-broker";
    /// Face identification (stage 2) GPU time.
    pub const IDENTIFY: &str = "2-identify";
    /// Queueing before either stage.
    pub const QUEUE: &str = "3-queue";
}

/// Outcome of one [`crate::PipelineExperiment`] run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Coupling mechanism measured.
    pub broker: BrokerKind,
    /// Frames completed per second.
    pub frame_throughput: f64,
    /// Faces identified per second.
    pub face_throughput: f64,
    /// Frame round-trip latency distribution.
    pub latency: LatencySummary,
    /// Mean per-frame stage times.
    pub breakdown: StageBreakdown,
    /// Mean sampled faces per frame.
    pub mean_faces: f64,
}

impl PipelineReport {
    /// Fraction of mean frame latency spent in the broker.
    pub fn broker_share(&self) -> f64 {
        if self.latency.mean <= 0.0 {
            0.0
        } else {
            self.breakdown.mean(pipeline_stages::BROKER) / self.latency.mean
        }
    }

    /// One-line report row.
    pub fn to_row(&self) -> String {
        format!(
            "{:<11} {:>8.1} frames/s {:>9.1} faces/s  avg {:>8.2} ms  broker {:>5.1}%",
            self.broker.to_string(),
            self.frame_throughput,
            self.face_throughput,
            self.latency.mean * 1e3,
            self.broker_share() * 100.0
        )
    }
}
