//! Multi-DNN pipelines with message brokers (§4.7, Figs 10–11).
//!
//! Reproduces the paper's face-identification pipeline: a Faster-R-CNN-
//! class detector feeding a FaceNet-class identifier, with the two stages
//! coupled by a disk-backed broker, an in-memory broker, or fused into a
//! single process. [`PipelineExperiment`] runs the discrete-event model;
//! the real brokers live in `vserve-broker` and can be wired to the live
//! server for functional validation (see the `face_pipeline` example).
//!
//! The *live* cascade executor is [`PipelineRunner`]: it walks a
//! [`PipelineSpec`] DAG (stages reference zoo lanes, edges carry a
//! crop/resize transform and a dynamic fan-out) over the live server's
//! tenant lanes, with worst-case ingress reservation at admission so
//! bounded queues cannot deadlock a half-finished parent (DESIGN §16).
//! [`PipeCosts`] replays measured live stage costs through the
//! discrete-event model for live↔sim differential checks.
//!
//! Key reproduced results:
//!
//! * in-memory coupling beats the disk-backed broker by ≈2.25× in
//!   end-to-end throughput at 25 faces/frame;
//! * broker share of zero-load latency drops from ≈71 % to ≈6 %;
//! * the fused pipeline wins below ≈9 faces/frame, after which the
//!   brokered pipeline's cross-frame batching takes over.
//!
//! # Examples
//!
//! ```
//! use vserve_broker::BrokerKind;
//! use vserve_device::NodeConfig;
//! use vserve_pipeline::PipelineExperiment;
//! use vserve_workload::FacesPerFrame;
//!
//! let redis = PipelineExperiment {
//!     node: NodeConfig::paper_testbed(),
//!     broker: BrokerKind::RedisLike,
//!     faces: FacesPerFrame::fixed(25),
//!     concurrency: 64,
//!     warmup_s: 0.5,
//!     measure_s: 2.0,
//!     seed: 1,
//! };
//! let kafka = PipelineExperiment { broker: BrokerKind::KafkaLike, ..redis.clone() };
//! let (r, k) = (redis.run(), kafka.run());
//! assert!(r.frame_throughput > 1.5 * k.frame_throughput);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod report;
mod sim;
mod spec;

pub use exec::{exec_stages, PipelineRunner, PipelineRunnerStats, PIPELINE_SPAN};
pub use report::{pipeline_stages, PipelineReport};
pub use sim::{PipeCosts, PipelineExperiment};
pub use spec::{
    fanout_cap_from_env, Edge, FanOut, PipelineSpec, StageSpec, Transform, DEFAULT_FANOUT_CAP,
    FANOUT_CAP_ENV, PIPELINE_ENV,
};

#[cfg(test)]
mod tests {
    use super::*;
    use vserve_broker::BrokerKind;
    use vserve_device::NodeConfig;
    use vserve_workload::FacesPerFrame;

    fn exp(broker: BrokerKind, k: u64, concurrency: usize) -> PipelineExperiment {
        PipelineExperiment {
            node: NodeConfig::paper_testbed(),
            broker,
            faces: FacesPerFrame::fixed(k),
            concurrency,
            warmup_s: 0.5,
            measure_s: 2.0,
            seed: 11,
        }
    }

    #[test]
    fn redis_beats_kafka_at_25_faces() {
        let r = exp(BrokerKind::RedisLike, 25, 64).run();
        let k = exp(BrokerKind::KafkaLike, 25, 64).run();
        let ratio = r.frame_throughput / k.frame_throughput;
        // Paper: 125 % improvement (2.25×).
        assert!(ratio > 1.6 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn broker_latency_shares_match_paper() {
        let k = exp(BrokerKind::KafkaLike, 25, 1).zero_load();
        let r = exp(BrokerKind::RedisLike, 25, 1).zero_load();
        assert!(
            k.broker_share() > 0.5,
            "kafka broker share {}",
            k.broker_share()
        );
        assert!(
            r.broker_share() < 0.15,
            "redis broker share {}",
            r.broker_share()
        );
        // Zero-load latency improvement (paper: 67 %).
        assert!(
            k.latency.mean > 2.0 * r.latency.mean,
            "kafka {} vs redis {}",
            k.latency.mean,
            r.latency.mean
        );
    }

    #[test]
    fn fused_wins_at_few_faces_redis_at_many() {
        let fused_small = exp(BrokerKind::Fused, 2, 64).run();
        let redis_small = exp(BrokerKind::RedisLike, 2, 64).run();
        assert!(
            fused_small.frame_throughput > redis_small.frame_throughput,
            "fused {} vs redis {} at k=2",
            fused_small.frame_throughput,
            redis_small.frame_throughput
        );
        let fused_big = exp(BrokerKind::Fused, 25, 64).run();
        let redis_big = exp(BrokerKind::RedisLike, 25, 64).run();
        assert!(
            redis_big.frame_throughput > fused_big.frame_throughput,
            "fused {} vs redis {} at k=25",
            fused_big.frame_throughput,
            redis_big.frame_throughput
        );
    }

    #[test]
    fn crossover_exists_between_2_and_25() {
        let mut crossed = None;
        for k in [2u64, 4, 6, 8, 10, 12, 16, 20, 25] {
            let fused = exp(BrokerKind::Fused, k, 64).run();
            let redis = exp(BrokerKind::RedisLike, k, 64).run();
            if redis.frame_throughput > fused.frame_throughput {
                crossed = Some(k);
                break;
            }
        }
        let k = crossed.expect("redis should overtake fused at some k");
        assert!((4..=25).contains(&k), "crossover at k={k}");
    }

    #[test]
    fn zero_faces_frames_complete() {
        let r = exp(BrokerKind::RedisLike, 0, 8).run();
        assert!(r.frame_throughput > 100.0);
        assert_eq!(r.face_throughput, 0.0);
    }

    #[test]
    fn face_throughput_scales_with_k() {
        let r = exp(BrokerKind::RedisLike, 10, 64).run();
        assert!(
            (r.face_throughput / r.frame_throughput - 10.0).abs() < 1.0,
            "faces/frame {}",
            r.face_throughput / r.frame_throughput
        );
    }

    #[test]
    fn deterministic() {
        let a = exp(BrokerKind::KafkaLike, 5, 16).run();
        let b = exp(BrokerKind::KafkaLike, 5, 16).run();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.frame_throughput, b.frame_throughput);
    }
}
