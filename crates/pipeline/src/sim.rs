//! Discrete-event model of the detect-then-identify pipeline (Fig 10).
//!
//! One GPU time-shares two models: a heavy face detector (stage 1) and a
//! light face identifier (stage 2). Each processed frame yields `k` face
//! crops. The stages are coupled by one of three mechanisms
//! ([`BrokerKind`]): a disk-backed log broker, an in-memory broker, or a
//! fused single process. Brokered faces pay produce/consume latency and
//! flow through a finite-rate broker station, but identification batches
//! *across frames*; the fused path pays no broker cost but identifies
//! each frame's faces as a lone small batch inside the detection process.

use std::collections::VecDeque;

use vserve_broker::BrokerKind;
use vserve_device::{EngineKind, ImageSpec, NodeConfig};
use vserve_metrics::{LatencyStats, RateMeter, StageBreakdown, Welford};
use vserve_sim::rng::RngStream;
use vserve_sim::{Engine, SimDuration, SimTime};
use vserve_workload::FacesPerFrame;

use crate::report::{pipeline_stages, PipelineReport};

/// Bytes of one serialized face crop travelling through the broker.
const FACE_CROP_BYTES: usize = 24 * 1024;
/// Per-face GPU preprocessing when crops re-enter stage 2 through a
/// broker (decode/resize of the serialized crop); the fused path keeps
/// tensors GPU-resident and skips this.
const STAGE2_PREPROC_S: f64 = 5e-6;
/// Utilization boost when brokered identification batches overlap with
/// detection kernels on concurrent streams: large cross-frame batches
/// fill SMs the fused path's lone small batches leave idle.
const OVERLAP_BOOST: f64 = 1.5;
/// Stage-2 identification batch limit when coupled through a broker.
const ID_MAX_BATCH: usize = 32;
/// Effective detector batch the serving layer sustains (amortizes the
/// per-batch launch cost across frames).
const DET_BATCH: usize = 8;

type Eng = Engine<PipeSim>;
type FrameId = usize;

#[derive(Debug, Clone)]
struct Frame {
    arrived: SimTime,
    faces_total: u64,
    faces_done: u64,
    det_s: f64,
    broker_s: f64,
    /// Longest single face's broker path (wait + station + consume);
    /// faces overlap, so the critical path is a max, not a sum.
    broker_face_max: f64,
    id_s: f64,
    queue_s: f64,
}

#[derive(Debug, Clone, Copy)]
enum GpuJob {
    /// Detect one frame (fused jobs carry their identification along).
    Detect { frame: FrameId, enq: SimTime },
    /// Identify a batch of brokered faces.
    Identify,
}

struct PipeSim {
    node: NodeConfig,
    broker: BrokerKind,
    faces: FacesPerFrame,
    det_flops: f64,
    id_flops: f64,
    engine: EngineKind,
    rng: RngStream,

    frames: Vec<Option<Frame>>,
    det_queue: VecDeque<(FrameId, SimTime)>,
    id_ready: VecDeque<(FrameId, SimTime)>,
    gpu_busy: bool,
    broker_busy: bool,
    broker_queue: VecDeque<(FrameId, SimTime)>,

    measuring: bool,
    latency: LatencyStats,
    breakdown: StageBreakdown,
    frame_meter: RateMeter,
    face_meter: RateMeter,
    faces_per_frame: Welford,
}

impl PipeSim {
    fn frame(&mut self, id: FrameId) -> &mut Frame {
        self.frames[id].as_mut().expect("live frame")
    }

    /// Per-frame detection service at an effective batch of `batch`
    /// frames (the dynamic batcher amortizes launches only under load).
    fn det_service(&self, batch: usize) -> f64 {
        let frame_img = ImageSpec::new(640, 640, 180 * 1024);
        let pre = self.node.gpu.preproc_time_batched(&frame_img, batch);
        let inf = self
            .node
            .gpu
            .infer_image_time(self.det_flops, batch, self.engine);
        pre + inf
    }

    fn id_batch_service(&self, n: usize, through_broker: bool) -> f64 {
        if through_broker {
            // Cross-frame batches run at the full-batch operating point
            // and overlap with detection kernels (stream concurrency).
            let compute = self.id_flops / self.node.gpu.effective_flops(ID_MAX_BATCH, self.engine);
            self.node.gpu.launch_s + n as f64 * (compute / OVERLAP_BOOST + STAGE2_PREPROC_S)
        } else {
            // Fused: this frame's faces alone, serialized with detection.
            self.node
                .gpu
                .infer_batch_time(self.id_flops, n, self.engine)
        }
    }
}

fn inject_frame(sim: &mut PipeSim, eng: &mut Eng) {
    let id = sim.frames.len();
    let k = sim.faces.sample(&mut sim.rng);
    sim.frames.push(Some(Frame {
        arrived: eng.now(),
        faces_total: k,
        faces_done: 0,
        det_s: 0.0,
        broker_s: 0.0,
        broker_face_max: 0.0,
        id_s: 0.0,
        queue_s: 0.0,
    }));
    sim.det_queue.push_back((id, eng.now()));
    try_run_gpu(sim, eng);
}

/// The GPU picks its next job: identification batches take priority once
/// enough faces are ready (they are short and keep the pipe drained);
/// otherwise the oldest detection runs.
fn try_run_gpu(sim: &mut PipeSim, eng: &mut Eng) {
    if sim.gpu_busy {
        return;
    }
    let job = if !sim.id_ready.is_empty()
        && (sim.id_ready.len() >= ID_MAX_BATCH || sim.det_queue.is_empty())
    {
        GpuJob::Identify
    } else if let Some((frame, enq)) = sim.det_queue.pop_front() {
        GpuJob::Detect { frame, enq }
    } else if !sim.id_ready.is_empty() {
        GpuJob::Identify
    } else {
        return;
    };
    let now = eng.now();
    sim.gpu_busy = true;
    match job {
        GpuJob::Detect { frame, enq } => {
            sim.frame(frame).queue_s += (now - enq).as_secs_f64();
            let fused = sim.broker == BrokerKind::Fused;
            // Under load the batcher amortizes across queued frames; a
            // lone frame pays batch-1 cost (zero-load path).
            let eff_batch = (1 + sim.det_queue.len()).min(DET_BATCH);
            let det = sim.det_service(eff_batch);
            let k = sim.frames[frame].as_ref().expect("live").faces_total;
            let service = if fused && k > 0 {
                det + sim.id_batch_service(k as usize, false)
            } else if fused {
                det
            } else {
                // Broker hand-off stalls the pipeline once per frame.
                det + sim.broker.cost().pipeline_bubble_s
            };
            eng.schedule_in(
                SimDuration::from_secs_f64(service),
                Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
                    detect_done(sim, eng, frame, det, service - det)
                }),
            );
        }
        GpuJob::Identify => {
            let n = sim.id_ready.len().min(ID_MAX_BATCH);
            let items: Vec<(FrameId, SimTime)> = sim.id_ready.drain(..n).collect();
            for &(f, enq) in &items {
                sim.frame(f).queue_s += (now - enq).as_secs_f64();
            }
            let service = sim.id_batch_service(n, true);
            eng.schedule_in(
                SimDuration::from_secs_f64(service),
                Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
                    identify_done(sim, eng, items, service)
                }),
            );
        }
    }
}

fn detect_done(sim: &mut PipeSim, eng: &mut Eng, frame: FrameId, det_s: f64, extra_s: f64) {
    sim.gpu_busy = false;
    let fused = sim.broker == BrokerKind::Fused;
    let f = sim.frame(frame);
    f.det_s += det_s;
    if fused {
        f.id_s += extra_s; // the frame's own identification batch
    } else {
        f.broker_s += extra_s; // the per-frame hand-off bubble
    }
    let k = f.faces_total;
    match sim.broker {
        BrokerKind::Fused => {
            complete_frame(sim, eng, frame);
        }
        _ if k == 0 => {
            complete_frame(sim, eng, frame);
        }
        kind => {
            // Async producer: the frame pays one produce latency, then its
            // faces stream through the finite-rate broker station.
            let cost = kind.cost();
            let produce = cost.produce_s + cost.per_byte_s * FACE_CROP_BYTES as f64;
            sim.frame(frame).broker_s += produce;
            for _ in 0..k {
                let at = eng.now() + SimDuration::from_secs_f64(produce);
                eng.schedule_at(
                    at,
                    Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
                        sim.broker_queue.push_back((frame, eng.now()));
                        try_run_broker(sim, eng);
                    }),
                );
            }
        }
    }
    try_run_gpu(sim, eng);
}

/// The broker station: a single server whose service time is the
/// reciprocal of the broker's sustainable message rate.
fn try_run_broker(sim: &mut PipeSim, eng: &mut Eng) {
    if sim.broker_busy {
        return;
    }
    let Some((frame, enq)) = sim.broker_queue.pop_front() else {
        return;
    };
    sim.broker_busy = true;
    let now = eng.now();
    let wait = (now - enq).as_secs_f64();
    let cost = sim.broker.cost();
    let service = if cost.max_rate.is_finite() {
        1.0 / cost.max_rate
    } else {
        0.0
    };
    eng.schedule_in(
        SimDuration::from_secs_f64(service),
        Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
            sim.broker_busy = false;
            // Consumer poll latency, then the face is ready for stage 2.
            let consume = sim.broker.cost().consume_s;
            let face_path = wait + service + consume;
            let f = sim.frame(frame);
            f.broker_face_max = f.broker_face_max.max(face_path);
            let at = eng.now() + SimDuration::from_secs_f64(consume);
            eng.schedule_at(
                at,
                Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
                    sim.id_ready.push_back((frame, eng.now()));
                    try_run_gpu(sim, eng);
                }),
            );
            try_run_broker(sim, eng);
        }),
    );
}

fn identify_done(sim: &mut PipeSim, eng: &mut Eng, items: Vec<(FrameId, SimTime)>, service: f64) {
    sim.gpu_busy = false;
    let per_face = service / items.len() as f64;
    for (frame, _) in items {
        let f = sim.frame(frame);
        f.id_s += per_face;
        f.faces_done += 1;
        if sim.measuring {
            sim.face_meter.record(eng.now().as_secs_f64());
        }
        if sim.frames[frame].as_ref().expect("live").faces_done
            >= sim.frames[frame].as_ref().expect("live").faces_total
        {
            complete_frame(sim, eng, frame);
        }
    }
    try_run_gpu(sim, eng);
}

fn complete_frame(sim: &mut PipeSim, eng: &mut Eng, frame: FrameId) {
    let now = eng.now();
    let mut f = sim.frames[frame].take().expect("live frame");
    f.broker_s += f.broker_face_max;
    if sim.measuring {
        let latency = (now - f.arrived).as_secs_f64();
        sim.latency.push(latency);
        sim.frame_meter.record(now.as_secs_f64());
        if sim.broker == BrokerKind::Fused {
            for _ in 0..f.faces_total {
                sim.face_meter.record(now.as_secs_f64());
            }
        }
        sim.faces_per_frame.push(f.faces_total as f64);
        sim.breakdown.record(pipeline_stages::DETECT, f.det_s);
        sim.breakdown.record(pipeline_stages::BROKER, f.broker_s);
        sim.breakdown.record(pipeline_stages::IDENTIFY, f.id_s);
        sim.breakdown.record(pipeline_stages::QUEUE, f.queue_s);
    }
    inject_frame(sim, eng);
}

/// The §4.7 face-identification pipeline experiment.
///
/// # Examples
///
/// ```
/// use vserve_broker::BrokerKind;
/// use vserve_device::NodeConfig;
/// use vserve_pipeline::PipelineExperiment;
/// use vserve_workload::FacesPerFrame;
///
/// let report = PipelineExperiment {
///     node: NodeConfig::paper_testbed(),
///     broker: BrokerKind::RedisLike,
///     faces: FacesPerFrame::fixed(5),
///     concurrency: 32,
///     warmup_s: 0.5,
///     measure_s: 2.0,
///     seed: 3,
/// }
/// .run();
/// assert!(report.frame_throughput > 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineExperiment {
    /// Hardware under test.
    pub node: NodeConfig,
    /// Inter-stage coupling.
    pub broker: BrokerKind,
    /// Faces-per-frame distribution.
    pub faces: FacesPerFrame,
    /// Closed-loop outstanding frames.
    pub concurrency: usize,
    /// Warm-up seconds before measuring.
    pub warmup_s: f64,
    /// Measurement window, seconds.
    pub measure_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl PipelineExperiment {
    /// Runs the pipeline to completion.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0` or the time windows are not positive.
    pub fn run(&self) -> PipelineReport {
        assert!(self.concurrency > 0, "concurrency must be positive");
        assert!(
            self.warmup_s >= 0.0 && self.measure_s > 0.0,
            "time windows must be positive"
        );
        let mut sim = PipeSim {
            node: self.node,
            broker: self.broker,
            faces: self.faces,
            det_flops: 37.0e9, // vserve_dnn::models::faster_rcnn(640)
            id_flops: 1.5e9,   // vserve_dnn::models::facenet(160)
            engine: EngineKind::TensorRt,
            rng: RngStream::derive(self.seed, "pipeline"),
            frames: Vec::new(),
            det_queue: VecDeque::new(),
            id_ready: VecDeque::new(),
            gpu_busy: false,
            broker_busy: false,
            broker_queue: VecDeque::new(),
            measuring: false,
            latency: LatencyStats::new(),
            breakdown: StageBreakdown::new(),
            frame_meter: RateMeter::new(),
            face_meter: RateMeter::new(),
            faces_per_frame: Welford::new(),
        };
        let mut eng: Eng = Engine::new();
        for i in 0..self.concurrency {
            eng.schedule_in(
                SimDuration::from_micros(i as u64),
                Box::new(|sim: &mut PipeSim, eng: &mut Eng| inject_frame(sim, eng)),
            );
        }
        let warm = SimTime::ZERO + SimDuration::from_secs_f64(self.warmup_s);
        eng.schedule_at(
            warm,
            Box::new(|sim: &mut PipeSim, eng: &mut Eng| {
                let t = eng.now().as_secs_f64();
                sim.measuring = true;
                sim.latency = LatencyStats::new();
                sim.breakdown = StageBreakdown::new();
                sim.frame_meter.open(t);
                sim.face_meter.open(t);
                sim.faces_per_frame = Welford::new();
            }),
        );
        let end = warm + SimDuration::from_secs_f64(self.measure_s);
        eng.run(&mut sim, end);
        let t_end = end.as_secs_f64();
        sim.frame_meter.close(t_end);
        sim.face_meter.close(t_end);

        PipelineReport {
            broker: self.broker,
            frame_throughput: sim.frame_meter.count() as f64 / self.measure_s,
            face_throughput: sim.face_meter.count() as f64 / self.measure_s,
            latency: sim.latency.summary(),
            breakdown: sim.breakdown,
            mean_faces: sim.faces_per_frame.mean(),
        }
    }

    /// Zero-load latency: one outstanding frame.
    pub fn zero_load(&self) -> PipelineReport {
        PipelineExperiment {
            concurrency: 1,
            ..self.clone()
        }
        .run()
    }
}
