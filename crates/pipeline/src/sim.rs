//! Discrete-event model of the detect-then-identify pipeline (Fig 10).
//!
//! One GPU time-shares two models: a heavy face detector (stage 1) and a
//! light face identifier (stage 2). Each processed frame yields `k` face
//! crops. The stages are coupled by one of three mechanisms
//! ([`BrokerKind`]): a disk-backed log broker, an in-memory broker, or a
//! fused single process. Brokered faces pay produce/consume latency and
//! flow through a finite-rate broker station, but identification batches
//! *across frames*; the fused path pays no broker cost but identifies
//! each frame's faces as a lone small batch inside the detection process.
//!
//! # Per-frame accounting and time conservation
//!
//! Stage components are accumulated in **integer nanoseconds on the same
//! grid the event engine schedules on** (every service time passes through
//! [`SimDuration::from_secs_f64`] exactly once, and the quantized value is
//! both scheduled and charged). On the serialized paths — the fused
//! coupling, and brokered frames with zero faces — a frame's stage rows
//! therefore sum to its end-to-end wall *exactly*, which
//! [`PipelineExperiment::run_audited`] exposes as a residual of zero
//! nanoseconds. Earlier revisions charged the unquantized `f64` service
//! times while scheduling the quantized ones, so rows drifted from the
//! wall by sub-nanosecond rounding per hop (the same bug class the ps.rs
//! virtual-finish accounting fix addressed).
//!
//! Brokered frames with `k > 0` faces overlap their per-face broker paths
//! and share cross-frame identification batches, so their breakdown is a
//! *critical-path attribution* (`broker` carries the longest single face's
//! wait + station + consume; `identify` carries per-face shares of shared
//! batches) and is not claimed to conserve.

use std::collections::VecDeque;

use vserve_broker::BrokerKind;
use vserve_device::{EngineKind, ImageSpec, NodeConfig};
use vserve_metrics::{LatencyStats, RateMeter, StageBreakdown, Welford};
use vserve_sim::rng::RngStream;
use vserve_sim::{Engine, SimDuration, SimTime};
use vserve_workload::FacesPerFrame;

use crate::report::{pipeline_stages, PipelineReport};

/// Bytes of one serialized face crop travelling through the broker.
const FACE_CROP_BYTES: usize = 24 * 1024;
/// Per-face GPU preprocessing when crops re-enter stage 2 through a
/// broker (decode/resize of the serialized crop); the fused path keeps
/// tensors GPU-resident and skips this.
const STAGE2_PREPROC_S: f64 = 5e-6;
/// Utilization boost when brokered identification batches overlap with
/// detection kernels on concurrent streams: large cross-frame batches
/// fill SMs the fused path's lone small batches leave idle.
const OVERLAP_BOOST: f64 = 1.5;
/// Stage-2 identification batch limit when coupled through a broker.
const ID_MAX_BATCH: usize = 32;
/// Effective detector batch the serving layer sustains (amortizes the
/// per-batch launch cost across frames).
const DET_BATCH: usize = 8;

/// Measured per-stage costs for replaying a *live* cascade through the
/// simulator, in place of the analytic hardware model.
///
/// The live executor's differential suite measures the realized mean
/// detect service, per-face identify service, and fan-out hand-off cost
/// on the host, plants them here, and replays the same fan-out level
/// through [`PipelineExperiment::run_with_costs`] (fused coupling — the
/// in-process executor has no broker): the sim's `detect` / `broker` /
/// `identify` / `queue` shares must then agree with the live cascade's.
///
/// `exit_rate` models a low-confidence early-exit first stage: that
/// fraction of frames completes after detection with no face children.
#[derive(Debug, Clone, Copy)]
pub struct PipeCosts {
    /// Stage-1 (detect) service per frame, seconds.
    pub det_s: f64,
    /// Stage-2 (identify) service per face, seconds.
    pub id_face_s: f64,
    /// Per-frame hand-off cost between the stages (the live executor's
    /// decode + crop + re-encode fan-out work), charged to the `broker`
    /// row so live `fanout+join` maps onto it.
    pub handoff_s: f64,
    /// Probability a frame early-exits after detection (no children).
    pub exit_rate: f64,
}

impl Default for PipeCosts {
    fn default() -> Self {
        PipeCosts {
            det_s: 0.0,
            id_face_s: 0.0,
            handoff_s: 0.0,
            exit_rate: 0.0,
        }
    }
}

type Eng = Engine<PipeSim>;
type FrameId = usize;

#[derive(Debug, Clone)]
struct Frame {
    arrived: SimTime,
    faces_total: u64,
    faces_done: u64,
    /// Grid-quantized stage components, nanoseconds (see module docs).
    det_ns: u64,
    broker_ns: u64,
    id_ns: u64,
    queue_ns: u64,
    /// Longest single face's broker path (wait + station + consume);
    /// faces overlap, so the critical path is a max, not a sum.
    broker_face_max: f64,
    /// Per-face shares of cross-frame identification batches (brokered
    /// path only; inherently fractional on the nanosecond grid).
    id_frac_s: f64,
}

#[derive(Debug, Clone, Copy)]
enum GpuJob {
    /// Detect one frame (fused jobs carry their identification along).
    Detect { frame: FrameId, enq: SimTime },
    /// Identify a batch of brokered faces.
    Identify,
}

struct PipeSim {
    node: NodeConfig,
    broker: BrokerKind,
    faces: FacesPerFrame,
    /// Measured live costs replayed in place of the hardware model.
    costs: Option<PipeCosts>,
    det_flops: f64,
    id_flops: f64,
    engine: EngineKind,
    rng: RngStream,

    frames: Vec<Option<Frame>>,
    det_queue: VecDeque<(FrameId, SimTime)>,
    id_ready: VecDeque<(FrameId, SimTime)>,
    gpu_busy: bool,
    broker_busy: bool,
    broker_queue: VecDeque<(FrameId, SimTime)>,

    measuring: bool,
    latency: LatencyStats,
    breakdown: StageBreakdown,
    frame_meter: RateMeter,
    face_meter: RateMeter,
    faces_per_frame: Welford,
    /// Worst |wall − Σ stage rows| over serialized-path frames, nanosec.
    max_residual_ns: u64,
}

/// Quantizes a service time to the engine's nanosecond grid.
fn grid_ns(s: f64) -> u64 {
    SimDuration::from_secs_f64(s).as_nanos()
}

const NS: f64 = 1e-9;

impl PipeSim {
    fn frame(&mut self, id: FrameId) -> &mut Frame {
        self.frames[id].as_mut().expect("live frame")
    }

    /// Per-frame detection service at an effective batch of `batch`
    /// frames (the dynamic batcher amortizes launches only under load).
    fn det_service(&self, batch: usize) -> f64 {
        if let Some(c) = &self.costs {
            // Replay: the live measurement already reflects the realized
            // batching operating point.
            return c.det_s;
        }
        let frame_img = ImageSpec::new(640, 640, 180 * 1024);
        let pre = self.node.gpu.preproc_time_batched(&frame_img, batch);
        let inf = self
            .node
            .gpu
            .infer_image_time(self.det_flops, batch, self.engine);
        pre + inf
    }

    fn id_batch_service(&self, n: usize, through_broker: bool) -> f64 {
        if through_broker {
            // Cross-frame batches run at the full-batch operating point
            // and overlap with detection kernels (stream concurrency).
            let compute = self.id_flops / self.node.gpu.effective_flops(ID_MAX_BATCH, self.engine);
            self.node.gpu.launch_s + n as f64 * (compute / OVERLAP_BOOST + STAGE2_PREPROC_S)
        } else if let Some(c) = &self.costs {
            n as f64 * c.id_face_s
        } else {
            // Fused: this frame's faces alone, serialized with detection.
            self.node
                .gpu
                .infer_batch_time(self.id_flops, n, self.engine)
        }
    }
}

fn inject_frame(sim: &mut PipeSim, eng: &mut Eng) {
    let id = sim.frames.len();
    let mut k = sim.faces.sample(&mut sim.rng);
    if let Some(c) = sim.costs {
        // Early exit is sampled at arrival so warmup and measurement see
        // the same per-frame stream regardless of completion order.
        if c.exit_rate > 0.0 && sim.rng.uniform(0.0, 1.0) < c.exit_rate {
            k = 0;
        }
    }
    sim.frames.push(Some(Frame {
        arrived: eng.now(),
        faces_total: k,
        faces_done: 0,
        det_ns: 0,
        broker_ns: 0,
        id_ns: 0,
        queue_ns: 0,
        broker_face_max: 0.0,
        id_frac_s: 0.0,
    }));
    sim.det_queue.push_back((id, eng.now()));
    try_run_gpu(sim, eng);
}

/// The GPU picks its next job: identification batches take priority once
/// enough faces are ready (they are short and keep the pipe drained);
/// otherwise the oldest detection runs.
fn try_run_gpu(sim: &mut PipeSim, eng: &mut Eng) {
    if sim.gpu_busy {
        return;
    }
    let job = if !sim.id_ready.is_empty()
        && (sim.id_ready.len() >= ID_MAX_BATCH || sim.det_queue.is_empty())
    {
        GpuJob::Identify
    } else if let Some((frame, enq)) = sim.det_queue.pop_front() {
        GpuJob::Detect { frame, enq }
    } else if !sim.id_ready.is_empty() {
        GpuJob::Identify
    } else {
        return;
    };
    let now = eng.now();
    sim.gpu_busy = true;
    match job {
        GpuJob::Detect { frame, enq } => {
            sim.frame(frame).queue_ns += (now - enq).as_nanos();
            let fused = sim.broker == BrokerKind::Fused;
            // Under load the batcher amortizes across queued frames; a
            // lone frame pays batch-1 cost (zero-load path).
            let eff_batch = (1 + sim.det_queue.len()).min(DET_BATCH);
            let det = sim.det_service(eff_batch);
            let k = sim.frames[frame].as_ref().expect("live").faces_total;
            // Quantize each component once and schedule their exact sum,
            // so what runs on the clock is what the frame is charged.
            let det_ns = grid_ns(det);
            let (handoff_ns, id_ns) = if fused {
                let handoff = sim
                    .costs
                    .map(|c| if k > 0 { grid_ns(c.handoff_s) } else { 0 })
                    .unwrap_or(0);
                let idn = if k > 0 {
                    grid_ns(sim.id_batch_service(k as usize, false))
                } else {
                    0
                };
                (handoff, idn)
            } else {
                // Broker hand-off stalls the pipeline once per frame.
                (grid_ns(sim.broker.cost().pipeline_bubble_s), 0)
            };
            let service_ns = det_ns + handoff_ns + id_ns;
            eng.schedule_in(
                SimDuration::from_nanos(service_ns),
                Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
                    detect_done(sim, eng, frame, det_ns, handoff_ns, id_ns)
                }),
            );
        }
        GpuJob::Identify => {
            let n = sim.id_ready.len().min(ID_MAX_BATCH);
            let items: Vec<(FrameId, SimTime)> = sim.id_ready.drain(..n).collect();
            for &(f, enq) in &items {
                sim.frame(f).queue_ns += (now - enq).as_nanos();
            }
            let service_ns = grid_ns(sim.id_batch_service(n, true));
            eng.schedule_in(
                SimDuration::from_nanos(service_ns),
                Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
                    identify_done(sim, eng, items, service_ns)
                }),
            );
        }
    }
}

fn detect_done(
    sim: &mut PipeSim,
    eng: &mut Eng,
    frame: FrameId,
    det_ns: u64,
    handoff_ns: u64,
    id_ns: u64,
) {
    sim.gpu_busy = false;
    let fused = sim.broker == BrokerKind::Fused;
    let f = sim.frame(frame);
    f.det_ns += det_ns;
    if fused {
        f.broker_ns += handoff_ns; // replayed fan-out hand-off (0 analytic)
        f.id_ns += id_ns; // the frame's own identification batch
    } else {
        f.broker_ns += handoff_ns; // the per-frame hand-off bubble
    }
    let k = f.faces_total;
    match sim.broker {
        BrokerKind::Fused => {
            complete_frame(sim, eng, frame);
        }
        _ if k == 0 => {
            complete_frame(sim, eng, frame);
        }
        kind => {
            // Async producer: the frame pays one produce latency, then its
            // faces stream through the finite-rate broker station.
            let cost = kind.cost();
            let produce_ns = grid_ns(cost.produce_s + cost.per_byte_s * FACE_CROP_BYTES as f64);
            sim.frame(frame).broker_ns += produce_ns;
            for _ in 0..k {
                let at = eng.now() + SimDuration::from_nanos(produce_ns);
                eng.schedule_at(
                    at,
                    Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
                        sim.broker_queue.push_back((frame, eng.now()));
                        try_run_broker(sim, eng);
                    }),
                );
            }
        }
    }
    try_run_gpu(sim, eng);
}

/// The broker station: a single server whose service time is the
/// reciprocal of the broker's sustainable message rate.
fn try_run_broker(sim: &mut PipeSim, eng: &mut Eng) {
    if sim.broker_busy {
        return;
    }
    let Some((frame, enq)) = sim.broker_queue.pop_front() else {
        return;
    };
    sim.broker_busy = true;
    let now = eng.now();
    let wait = (now - enq).as_secs_f64();
    let cost = sim.broker.cost();
    let service_ns = if cost.max_rate.is_finite() {
        grid_ns(1.0 / cost.max_rate)
    } else {
        0
    };
    eng.schedule_in(
        SimDuration::from_nanos(service_ns),
        Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
            sim.broker_busy = false;
            // Consumer poll latency, then the face is ready for stage 2.
            let consume_ns = grid_ns(sim.broker.cost().consume_s);
            let face_path = wait + (service_ns + consume_ns) as f64 * NS;
            let f = sim.frame(frame);
            f.broker_face_max = f.broker_face_max.max(face_path);
            let at = eng.now() + SimDuration::from_nanos(consume_ns);
            eng.schedule_at(
                at,
                Box::new(move |sim: &mut PipeSim, eng: &mut Eng| {
                    sim.id_ready.push_back((frame, eng.now()));
                    try_run_gpu(sim, eng);
                }),
            );
            try_run_broker(sim, eng);
        }),
    );
}

fn identify_done(
    sim: &mut PipeSim,
    eng: &mut Eng,
    items: Vec<(FrameId, SimTime)>,
    service_ns: u64,
) {
    sim.gpu_busy = false;
    let per_face = service_ns as f64 * NS / items.len() as f64;
    for (frame, _) in items {
        let f = sim.frame(frame);
        f.id_frac_s += per_face;
        f.faces_done += 1;
        if sim.measuring {
            sim.face_meter.record(eng.now().as_secs_f64());
        }
        if sim.frames[frame].as_ref().expect("live").faces_done
            >= sim.frames[frame].as_ref().expect("live").faces_total
        {
            complete_frame(sim, eng, frame);
        }
    }
    try_run_gpu(sim, eng);
}

fn complete_frame(sim: &mut PipeSim, eng: &mut Eng, frame: FrameId) {
    let now = eng.now();
    let f = sim.frames[frame].take().expect("live frame");
    let det_s = f.det_ns as f64 * NS;
    let broker_s = f.broker_ns as f64 * NS + f.broker_face_max;
    let id_s = f.id_ns as f64 * NS + f.id_frac_s;
    let queue_s = f.queue_ns as f64 * NS;
    // Serialized paths (fused, or brokered with no faces) must conserve
    // exactly on the integer grid: the wall is precisely the sum of the
    // scheduled (= charged) components.
    if sim.broker == BrokerKind::Fused || f.faces_total == 0 {
        let wall_ns = (now - f.arrived).as_nanos();
        let sum_ns = f.queue_ns + f.det_ns + f.broker_ns + f.id_ns;
        sim.max_residual_ns = sim.max_residual_ns.max(wall_ns.abs_diff(sum_ns));
    }
    if sim.measuring {
        let latency = (now - f.arrived).as_secs_f64();
        sim.latency.push(latency);
        sim.frame_meter.record(now.as_secs_f64());
        if sim.broker == BrokerKind::Fused {
            for _ in 0..f.faces_total {
                sim.face_meter.record(now.as_secs_f64());
            }
        }
        sim.faces_per_frame.push(f.faces_total as f64);
        sim.breakdown.record(pipeline_stages::DETECT, det_s);
        sim.breakdown.record(pipeline_stages::BROKER, broker_s);
        sim.breakdown.record(pipeline_stages::IDENTIFY, id_s);
        sim.breakdown.record(pipeline_stages::QUEUE, queue_s);
    }
    inject_frame(sim, eng);
}

/// The §4.7 face-identification pipeline experiment.
///
/// # Examples
///
/// ```
/// use vserve_broker::BrokerKind;
/// use vserve_device::NodeConfig;
/// use vserve_pipeline::PipelineExperiment;
/// use vserve_workload::FacesPerFrame;
///
/// let report = PipelineExperiment {
///     node: NodeConfig::paper_testbed(),
///     broker: BrokerKind::RedisLike,
///     faces: FacesPerFrame::fixed(5),
///     concurrency: 32,
///     warmup_s: 0.5,
///     measure_s: 2.0,
///     seed: 3,
/// }
/// .run();
/// assert!(report.frame_throughput > 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineExperiment {
    /// Hardware under test.
    pub node: NodeConfig,
    /// Inter-stage coupling.
    pub broker: BrokerKind,
    /// Faces-per-frame distribution.
    pub faces: FacesPerFrame,
    /// Closed-loop outstanding frames.
    pub concurrency: usize,
    /// Warm-up seconds before measuring.
    pub warmup_s: f64,
    /// Measurement window, seconds.
    pub measure_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl PipelineExperiment {
    /// Runs the pipeline to completion.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0` or the time windows are not positive.
    pub fn run(&self) -> PipelineReport {
        self.run_inner(None).0
    }

    /// Runs the pipeline with measured live costs replacing the analytic
    /// hardware model — the sim half of the live-vs-sim differential
    /// suite. See [`PipeCosts`].
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0` or the time windows are not positive.
    pub fn run_with_costs(&self, costs: PipeCosts) -> PipelineReport {
        self.run_inner(Some(costs)).0
    }

    /// Runs the pipeline and also returns the worst per-frame conservation
    /// residual in nanoseconds: `|wall − Σ stage rows|` over every frame
    /// on a serialized path (fused coupling, or brokered frames with zero
    /// faces). The accounting charges exactly what it schedules, so this
    /// is `0` — pinned by a regression test before live numbers are
    /// compared against the breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0` or the time windows are not positive.
    pub fn run_audited(&self) -> (PipelineReport, u64) {
        self.run_inner(None)
    }

    fn run_inner(&self, costs: Option<PipeCosts>) -> (PipelineReport, u64) {
        assert!(self.concurrency > 0, "concurrency must be positive");
        assert!(
            self.warmup_s >= 0.0 && self.measure_s > 0.0,
            "time windows must be positive"
        );
        let mut sim = PipeSim {
            node: self.node,
            broker: self.broker,
            faces: self.faces,
            costs,
            det_flops: 37.0e9, // vserve_dnn::models::faster_rcnn(640)
            id_flops: 1.5e9,   // vserve_dnn::models::facenet(160)
            engine: EngineKind::TensorRt,
            rng: RngStream::derive(self.seed, "pipeline"),
            frames: Vec::new(),
            det_queue: VecDeque::new(),
            id_ready: VecDeque::new(),
            gpu_busy: false,
            broker_busy: false,
            broker_queue: VecDeque::new(),
            measuring: false,
            latency: LatencyStats::new(),
            breakdown: StageBreakdown::new(),
            frame_meter: RateMeter::new(),
            face_meter: RateMeter::new(),
            faces_per_frame: Welford::new(),
            max_residual_ns: 0,
        };
        let mut eng: Eng = Engine::new();
        for i in 0..self.concurrency {
            eng.schedule_in(
                SimDuration::from_micros(i as u64),
                Box::new(|sim: &mut PipeSim, eng: &mut Eng| inject_frame(sim, eng)),
            );
        }
        let warm = SimTime::ZERO + SimDuration::from_secs_f64(self.warmup_s);
        eng.schedule_at(
            warm,
            Box::new(|sim: &mut PipeSim, eng: &mut Eng| {
                let t = eng.now().as_secs_f64();
                sim.measuring = true;
                sim.latency = LatencyStats::new();
                sim.breakdown = StageBreakdown::new();
                sim.frame_meter.open(t);
                sim.face_meter.open(t);
                sim.faces_per_frame = Welford::new();
            }),
        );
        let end = warm + SimDuration::from_secs_f64(self.measure_s);
        eng.run(&mut sim, end);
        let t_end = end.as_secs_f64();
        sim.frame_meter.close(t_end);
        sim.face_meter.close(t_end);

        let report = PipelineReport {
            broker: self.broker,
            frame_throughput: sim.frame_meter.count() as f64 / self.measure_s,
            face_throughput: sim.face_meter.count() as f64 / self.measure_s,
            latency: sim.latency.summary(),
            breakdown: sim.breakdown,
            mean_faces: sim.faces_per_frame.mean(),
        };
        (report, sim.max_residual_ns)
    }

    /// Zero-load latency: one outstanding frame.
    pub fn zero_load(&self) -> PipelineReport {
        PipelineExperiment {
            concurrency: 1,
            ..self.clone()
        }
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(broker: BrokerKind, k: u64, concurrency: usize) -> PipelineExperiment {
        PipelineExperiment {
            node: NodeConfig::paper_testbed(),
            broker,
            faces: FacesPerFrame::fixed(k),
            concurrency,
            warmup_s: 0.2,
            measure_s: 1.0,
            seed: 5,
        }
    }

    #[test]
    fn fused_stage_rows_conserve_exactly() {
        // The satellite-3 regression: on the serialized fused path every
        // frame's stage rows sum to its wall with zero residual on the
        // engine's nanosecond grid, at zero load and under load.
        for conc in [1usize, 16] {
            let (_, residual) = PipelineExperiment {
                concurrency: conc,
                ..exp(BrokerKind::Fused, 5, 1)
            }
            .run_audited();
            assert_eq!(residual, 0, "fused residual at concurrency {conc}");
        }
    }

    #[test]
    fn zero_face_brokered_frames_conserve_exactly() {
        let (_, residual) = exp(BrokerKind::RedisLike, 0, 8).run_audited();
        assert_eq!(residual, 0, "k=0 brokered residual");
    }

    #[test]
    fn fused_mean_rows_sum_to_mean_latency() {
        // Aggregate view of the same conservation: summed stage means
        // equal mean latency to float rounding.
        let r = exp(BrokerKind::Fused, 5, 16).run();
        let rows: f64 = [
            pipeline_stages::DETECT,
            pipeline_stages::BROKER,
            pipeline_stages::IDENTIFY,
            pipeline_stages::QUEUE,
        ]
        .iter()
        .map(|s| r.breakdown.mean(s))
        .sum();
        let rel = (rows - r.latency.mean).abs() / r.latency.mean;
        assert!(rel < 1e-9, "rows {rows} vs latency {}", r.latency.mean);
    }

    #[test]
    fn calibrated_replay_reproduces_planted_costs() {
        // Plant exact per-stage costs; zero-load shares must match them.
        let costs = PipeCosts {
            det_s: 4e-3,
            id_face_s: 1e-3,
            handoff_s: 2e-3,
            exit_rate: 0.0,
        };
        let r = PipelineExperiment {
            concurrency: 1,
            ..exp(BrokerKind::Fused, 4, 1)
        }
        .run_with_costs(costs);
        let expect = 4e-3 + 2e-3 + 4.0 * 1e-3;
        assert!(
            (r.latency.mean - expect).abs() / expect < 1e-6,
            "latency {} expected {expect}",
            r.latency.mean
        );
        assert!((r.breakdown.mean(pipeline_stages::DETECT) - 4e-3).abs() < 1e-9);
        assert!((r.breakdown.mean(pipeline_stages::BROKER) - 2e-3).abs() < 1e-9);
        assert!((r.breakdown.mean(pipeline_stages::IDENTIFY) - 4e-3).abs() < 1e-9);
    }

    #[test]
    fn exit_rate_shrinks_identify_share() {
        let costs = |exit_rate| PipeCosts {
            det_s: 2e-3,
            id_face_s: 1e-3,
            handoff_s: 5e-4,
            exit_rate,
        };
        let share = |rate| {
            let r = exp(BrokerKind::Fused, 6, 8).run_with_costs(costs(rate));
            r.breakdown.mean(pipeline_stages::IDENTIFY) / r.latency.mean
        };
        let (s0, s5, s9) = (share(0.0), share(0.5), share(0.9));
        assert!(s0 > s5 && s5 > s9, "shares {s0} {s5} {s9} not shrinking");
        assert!(s9 < 0.5 * s0, "s9 {s9} vs s0 {s0}");
    }

    #[test]
    fn replay_deterministic() {
        let costs = PipeCosts {
            det_s: 1e-3,
            id_face_s: 2e-4,
            handoff_s: 1e-4,
            exit_rate: 0.3,
        };
        let a = exp(BrokerKind::Fused, 4, 8).run_with_costs(costs);
        let b = exp(BrokerKind::Fused, 4, 8).run_with_costs(costs);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.frame_throughput, b.frame_throughput);
    }
}
