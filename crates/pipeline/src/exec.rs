//! The live cascade executor: walks a [`PipelineSpec`] DAG over a
//! [`LiveServer`](vserve_server::live::LiveServer)'s tenant lanes.
//!
//! One executor thread owns all pipeline state; sub-request completions
//! arrive as events from the server's completion hooks, so the executor
//! never blocks on a reply and a single thread can multiplex any number
//! of in-flight cascades. Stage work is submitted through the server's
//! ordinary lanes — cascade stages therefore batch independently, with
//! their tenants' quota and SLO admission applied per sub-request.
//!
//! # Fan-out admission and the no-deadlock rule
//!
//! The ingress queue is bounded. A naive executor that admits a frame,
//! submits its root, and then blocks trying to enqueue K children behind
//! other parents' children could deadlock only if ingress drained through
//! the executor itself — it does not (the preprocessing pool drains it
//! unconditionally), but unbounded admission would still let cascades
//! monopolize the queue. The rule (DESIGN §16):
//!
//! 1. At admission, reserve the spec's **worst-case** sub-request count
//!    ([`PipelineSpec::worst_case_requests`]) from a budget equal to the
//!    ingress capacity; if the budget is short, shed the whole frame with
//!    a typed [`LiveError::Overloaded`] *before* any work starts.
//! 2. Post-admission sub-requests use
//!    [`PipelineHandle::submit_reserved`]: quota/SLO sheds stay typed,
//!    but a momentarily full ingress queue blocks briefly instead of
//!    shedding a half-finished parent's children.
//!
//! Together: every admitted frame either joins or fails with a typed
//! error, and the spawned-vs-retired sub-request counts reconcile exactly
//! (pinned by the fan-out property test).

use std::collections::HashMap;
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::bounded;
use vserve_metrics::{LatencyStats, LatencySummary, StageBreakdown};
use vserve_server::live::{LiveError, LiveResult, ReplyReceiver};
use vserve_server::{stages, PipelineDriver, PipelineHandle};
use vserve_tensor::ops;

use crate::spec::{PipelineSpec, Transform};

/// Span name of the per-pipeline parent span on the executor's trace
/// track: it covers submission through join, so every sub-request span
/// sharing the trace id nests under it.
pub const PIPELINE_SPAN: &str = "pipeline";

/// Stage keys of the executor's own [`PipelineRunnerStats::breakdown`]
/// (per-pipeline seconds). Spec stages appear under their own names.
pub mod exec_stages {
    /// Fan-out transform work: decode parent, crop/resize K children,
    /// re-encode.
    pub const FANOUT: &str = "fanout";
    /// Join: assembling terminal outputs into the final reply.
    pub const JOIN: &str = "join";
    /// Summed queue time of every sub-request (ingress + batcher).
    pub const QUEUE: &str = "queue";

    /// Row attributing queue wait to the spec stage whose sub-requests
    /// waited (e.g. `queue:id` for sibling crops held behind busy
    /// inference workers). The per-stage rows partition [`QUEUE`]:
    /// their sum equals it per pipeline.
    pub fn queue_row(stage: &str) -> String {
        format!("queue:{stage}")
    }
}

/// Mirror of the server's reply slot: delivers exactly one message and
/// fires the completion hook exactly once, even when dropped unreplied.
struct Reply {
    tx: crossbeam::channel::Sender<Result<LiveResult, LiveError>>,
    hook: Option<Box<dyn FnOnce() + Send>>,
}

impl Reply {
    fn send(mut self, msg: Result<LiveResult, LiveError>) {
        let _ = self.tx.send(msg);
        if let Some(hook) = self.hook.take() {
            hook();
        }
    }
}

impl Drop for Reply {
    fn drop(&mut self) {
        if let Some(hook) = self.hook.take() {
            hook();
        }
    }
}

struct NewReq {
    jpeg: Vec<u8>,
    deadline: Option<Duration>,
    trace_id: Option<u64>,
    /// Budget units reserved at admission, released at completion.
    reserved: usize,
    reply: Reply,
}

enum Ev {
    New(Box<NewReq>),
    /// Sub-request `node` of pipeline `pipe` has its reply in the
    /// channel (sent by the server's completion hook).
    Done {
        pipe: u64,
        node: usize,
    },
    Shutdown,
}

struct Node {
    stage: usize,
    /// Payload this node was submitted with — the fan-out source for its
    /// children's crops.
    jpeg: Arc<Vec<u8>>,
    rx: Option<ReplyReceiver>,
    output: Option<Vec<f32>>,
    /// True once the node is known to spawn no children (leaf stage,
    /// early exit, or zero fan-out): its output joins the final reply.
    terminal: bool,
}

struct Active {
    trace_id: u64,
    tag: u32,
    submitted: Instant,
    deadline: Option<Instant>,
    reserved: usize,
    reply: Option<Reply>,
    nodes: Vec<Node>,
    /// Submitted sub-requests whose Done event has not arrived yet.
    pending: usize,
    /// First failure; set once, descendants of failed nodes are not
    /// spawned, and the join answers this error.
    failed: Option<LiveError>,
    /// Per spec stage: summed preproc + inference service seconds.
    stage_service: Vec<f64>,
    /// Per spec stage: summed queue seconds of its sub-requests.
    stage_queue: Vec<f64>,
    fanout_s: f64,
    queue_s: f64,
    preproc: Duration,
    queue: Duration,
    inference: Duration,
}

struct StatsInner {
    completed: u64,
    failed: u64,
    shed: u64,
    spawned: u64,
    retired: u64,
    /// Remaining admission budget (starts at the server's ingress
    /// capacity; each admitted frame holds its worst case until joined).
    budget: usize,
    latency: LatencyStats,
    breakdown: StageBreakdown,
}

struct Stats(Mutex<StatsInner>);

impl Stats {
    fn lock(&self) -> MutexGuard<'_, StatsInner> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Counters and per-pipeline stage accounting of one
/// [`PipelineRunner`], from [`PipelineRunner::stats`].
#[derive(Debug, Clone)]
pub struct PipelineRunnerStats {
    /// Pipelines joined successfully.
    pub completed: u64,
    /// Pipelines answered with a typed error after admission (a
    /// sub-request shed or failed).
    pub failed: u64,
    /// Frames shed at admission ([`LiveError::Overloaded`]) because the
    /// worst-case reservation exceeded the remaining ingress budget.
    pub shed: u64,
    /// Sub-requests submitted (root + children).
    pub spawned: u64,
    /// Sub-requests whose completion event was processed. Equals
    /// [`spawned`](Self::spawned) whenever no pipeline is in flight —
    /// the no-lost-sub-request invariant.
    pub retired: u64,
    /// Remaining admission budget (ingress capacity minus in-flight
    /// reservations).
    pub budget: usize,
    /// End-to-end pipeline latency distribution.
    pub latency: LatencySummary,
    /// Per-pipeline seconds: one row per spec stage (preproc + inference
    /// service) plus [`exec_stages`] rows.
    pub breakdown: StageBreakdown,
}

/// The live DAG executor for one [`PipelineSpec`] — implements
/// [`PipelineDriver`], so register it with
/// [`LiveServer::register_pipeline`](vserve_server::live::LiveServer::register_pipeline)
/// (which also ties its shutdown to the server's).
pub struct PipelineRunner {
    spec: Arc<PipelineSpec>,
    worst_case: usize,
    tx: mpsc::Sender<Ev>,
    worker: Option<JoinHandle<()>>,
    stats: Arc<Stats>,
}

impl std::fmt::Debug for PipelineRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineRunner")
            .field("pipeline", &self.spec.name)
            .field("stages", &self.spec.stages.len())
            .finish()
    }
}

impl PipelineRunner {
    /// Starts the executor thread for `spec` over `handle`'s server.
    ///
    /// # Errors
    ///
    /// Returns a message when a stage's lane does not resolve to any
    /// tenant or model of the server.
    pub fn new(handle: PipelineHandle, spec: PipelineSpec) -> Result<Self, String> {
        let mut lanes = Vec::with_capacity(spec.stages.len());
        for s in &spec.stages {
            match handle.lane_of(&s.lane) {
                Some(lane) => lanes.push(lane),
                None => {
                    return Err(format!(
                        "pipeline '{}' stage '{}': no lane or model named '{}'",
                        spec.name, s.name, s.lane
                    ))
                }
            }
        }
        let spec = Arc::new(spec);
        let worst_case = spec.worst_case_requests();
        let stats = Arc::new(Stats(Mutex::new(StatsInner {
            completed: 0,
            failed: 0,
            shed: 0,
            spawned: 0,
            retired: 0,
            budget: handle.queue_cap(),
            latency: LatencyStats::new(),
            breakdown: StageBreakdown::new(),
        })));
        let (tx, rx) = mpsc::channel();
        let mut exec = Exec {
            handle,
            spec: Arc::clone(&spec),
            lanes,
            tx: tx.clone(),
            stats: Arc::clone(&stats),
            active: HashMap::new(),
            next_pipe: 0,
            draining: false,
        };
        let worker = std::thread::spawn(move || exec.run(rx));
        Ok(PipelineRunner {
            spec,
            worst_case,
            tx,
            worker: Some(worker),
            stats,
        })
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Worst-case sub-requests reserved per admitted frame.
    pub fn worst_case_requests(&self) -> usize {
        self.worst_case
    }

    /// Snapshot of the runner's counters and stage accounting.
    pub fn stats(&self) -> PipelineRunnerStats {
        let s = self.stats.lock();
        PipelineRunnerStats {
            completed: s.completed,
            failed: s.failed,
            shed: s.shed,
            spawned: s.spawned,
            retired: s.retired,
            budget: s.budget,
            latency: s.latency.summary(),
            breakdown: s.breakdown.clone(),
        }
    }

    /// Submits a frame and blocks for the joined result.
    ///
    /// # Errors
    ///
    /// Any typed [`LiveError`]: admission shed, a sub-request's decode or
    /// model failure, quota/SLO shed, deadline, or shutdown.
    pub fn infer(&self, jpeg: Vec<u8>) -> Result<LiveResult, LiveError> {
        PipelineDriver::submit(self, jpeg, None, None, None)
            .recv()
            .map_err(|_| LiveError::Disconnected)?
    }
}

impl PipelineDriver for PipelineRunner {
    fn submit(
        &self,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
        hook: Option<Box<dyn FnOnce() + Send>>,
    ) -> ReplyReceiver {
        let (tx, rx) = bounded(1);
        let reply = Reply { tx, hook };
        // The fan-out reservation rule: hold the worst case before the
        // root is submitted, or shed the whole frame typed right here.
        {
            let mut s = self.stats.lock();
            if self.worst_case > s.budget {
                s.shed += 1;
                drop(s);
                reply.send(Err(LiveError::Overloaded));
                return rx;
            }
            s.budget -= self.worst_case;
        }
        let req = Box::new(NewReq {
            jpeg,
            deadline,
            trace_id,
            reserved: self.worst_case,
            reply,
        });
        if let Err(mpsc::SendError(Ev::New(req))) = self.tx.send(Ev::New(req)) {
            self.stats.lock().budget += req.reserved;
            req.reply.send(Err(LiveError::Disconnected));
        }
        rx
    }
}

impl Drop for PipelineRunner {
    fn drop(&mut self) {
        let _ = self.tx.send(Ev::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

struct Exec {
    handle: PipelineHandle,
    spec: Arc<PipelineSpec>,
    /// Resolved lane index per spec stage.
    lanes: Vec<usize>,
    tx: mpsc::Sender<Ev>,
    stats: Arc<Stats>,
    active: HashMap<u64, Active>,
    next_pipe: u64,
    draining: bool,
}

impl Exec {
    fn run(&mut self, rx: mpsc::Receiver<Ev>) {
        while let Ok(ev) = rx.recv() {
            match ev {
                Ev::New(req) => self.start(*req),
                Ev::Done { pipe, node } => self.on_done(pipe, node),
                Ev::Shutdown => self.draining = true,
            }
            if self.draining && self.active.is_empty() {
                break;
            }
        }
        // Runner gone with pipelines still active (no Shutdown seen, or
        // hooks died with the server): answer what's left as
        // Disconnected via the Reply drop guarantees.
    }

    fn start(&mut self, req: NewReq) {
        let pipe = self.next_pipe;
        self.next_pipe += 1;
        let now = Instant::now();
        let trace_id = req.trace_id.unwrap_or_else(|| self.handle.next_trace_id());
        let deadline = req.deadline.or(self.handle.default_deadline());
        self.active.insert(
            pipe,
            Active {
                trace_id,
                tag: PipelineHandle::lane_tag(self.lanes[0]),
                submitted: now,
                deadline: deadline.map(|d| now + d),
                reserved: req.reserved,
                reply: Some(req.reply),
                nodes: Vec::new(),
                pending: 0,
                failed: None,
                stage_service: vec![0.0; self.spec.stages.len()],
                stage_queue: vec![0.0; self.spec.stages.len()],
                fanout_s: 0.0,
                queue_s: 0.0,
                preproc: Duration::ZERO,
                queue: Duration::ZERO,
                inference: Duration::ZERO,
            },
        );
        self.submit_node(pipe, 0, Arc::new(req.jpeg));
    }

    /// Submits one sub-request on its stage's lane. The completion hook
    /// posts a `Done` event back to this executor; capacity was reserved
    /// at admission, so the send side never sheds (see module docs).
    fn submit_node(&mut self, pipe: u64, stage: usize, jpeg: Arc<Vec<u8>>) {
        let Some(act) = self.active.get_mut(&pipe) else {
            return;
        };
        let node = act.nodes.len();
        let now = Instant::now();
        // Expired pipelines still submit (with a zero remaining budget)
        // so every node flows through the same typed-shed machinery and
        // the spawn/retire counts stay exact.
        let remaining = act.deadline.map(|d| d.saturating_duration_since(now));
        let tx = self.tx.clone();
        let hook = Box::new(move || {
            let _ = tx.send(Ev::Done { pipe, node });
        });
        let rx = self.handle.submit_reserved(
            self.lanes[stage],
            (*jpeg).clone(),
            remaining,
            Some(act.trace_id),
            Some(hook),
        );
        act.nodes.push(Node {
            stage,
            jpeg,
            rx: Some(rx),
            output: None,
            terminal: false,
        });
        act.pending += 1;
        self.stats.lock().spawned += 1;
    }

    fn on_done(&mut self, pipe: u64, node: usize) {
        let Some(act) = self.active.get_mut(&pipe) else {
            return;
        };
        act.pending -= 1;
        self.stats.lock().retired += 1;
        // The hook fired, so the reply is already in the channel; an
        // empty channel means the slot was dropped unreplied (shutdown).
        let res = act.nodes[node]
            .rx
            .take()
            .map(|rx| rx.try_recv().unwrap_or(Err(LiveError::Disconnected)))
            .unwrap_or(Err(LiveError::Disconnected));
        let stage_idx = act.nodes[node].stage;
        let mut spawn: Vec<(usize, Arc<Vec<u8>>)> = Vec::new();
        match res {
            Ok(r) => {
                act.queue += r.queue;
                act.preproc += r.preproc;
                act.inference += r.inference;
                act.queue_s += r.queue.as_secs_f64();
                act.stage_queue[stage_idx] += r.queue.as_secs_f64();
                act.stage_service[stage_idx] += (r.preproc + r.inference).as_secs_f64();
                let st = &self.spec.stages[stage_idx];
                let exited = st
                    .early_exit
                    .is_some_and(|th| r.output.iter().fold(f32::MIN, |a, &b| a.max(b)) >= th);
                if st.children.is_empty() || exited || act.failed.is_some() {
                    act.nodes[node].terminal = true;
                } else {
                    let t0 = Instant::now();
                    let parent = Arc::clone(&act.nodes[node].jpeg);
                    for e in &st.children {
                        let k = e.fanout.eval(&r.output) as usize;
                        if k == 0 {
                            continue;
                        }
                        match make_children(&parent, e.transform, k) {
                            Ok(blobs) => {
                                spawn.extend(blobs.into_iter().map(|b| (e.to, Arc::new(b))))
                            }
                            Err(err) => {
                                act.failed = Some(err);
                                spawn.clear();
                                break;
                            }
                        }
                    }
                    let t1 = Instant::now();
                    act.fanout_s += (t1 - t0).as_secs_f64();
                    act.nodes[node].terminal = spawn.is_empty();
                    self.handle.trace().span_tagged(
                        act.tag,
                        act.trace_id,
                        stages::FANOUT,
                        t0,
                        t1,
                        0,
                        spawn.len() as u64,
                    );
                }
                act.nodes[node].output = Some(r.output);
            }
            Err(e) => {
                if act.failed.is_none() {
                    act.failed = Some(e);
                }
            }
        }
        for (stage, blob) in spawn {
            self.submit_node(pipe, stage, blob);
        }
        if self.active.get(&pipe).is_some_and(|a| a.pending == 0) {
            self.finish(pipe);
        }
    }

    fn finish(&mut self, pipe: u64) {
        let Some(mut act) = self.active.remove(&pipe) else {
            return;
        };
        let join_t0 = Instant::now();
        let result = match act.failed.take() {
            Some(e) => Err(e),
            None => {
                // Join: terminal outputs concatenated in submission
                // order — deterministic because node ids are assigned by
                // the single executor thread.
                let mut output = Vec::new();
                for n in &act.nodes {
                    if n.terminal {
                        output.extend_from_slice(n.output.as_deref().unwrap_or(&[]));
                    }
                }
                Ok(output)
            }
        };
        let end = Instant::now();
        let join_s = (end - join_t0).as_secs_f64();
        let wall = end.saturating_duration_since(act.submitted);
        let tr = self.handle.trace();
        tr.span_tagged(
            act.tag,
            act.trace_id,
            stages::JOIN,
            join_t0,
            end,
            0,
            act.nodes.len() as u64,
        );
        // The parent span: submission through join, covering every
        // sub-request span recorded under the same trace id.
        tr.span_tagged(
            act.tag,
            act.trace_id,
            PIPELINE_SPAN,
            act.submitted,
            end,
            0,
            act.nodes.len() as u64,
        );
        // Cascade rows in the server's shared breakdown.
        self.handle.record_stage(stages::FANOUT, act.fanout_s);
        self.handle.record_stage(stages::JOIN, join_s);
        for (i, st) in self.spec.stages.iter().enumerate() {
            if act.stage_service[i] > 0.0 {
                self.handle.record_stage(
                    &stages::cascade_stage(&self.spec.name, &st.name),
                    act.stage_service[i],
                );
            }
        }
        let mut s = self.stats.lock();
        s.budget += act.reserved;
        match result {
            Ok(output) => {
                s.completed += 1;
                s.latency.push(wall.as_secs_f64());
                for (i, st) in self.spec.stages.iter().enumerate() {
                    s.breakdown.record(&st.name, act.stage_service[i]);
                    s.breakdown
                        .record(&exec_stages::queue_row(&st.name), act.stage_queue[i]);
                }
                s.breakdown.record(exec_stages::FANOUT, act.fanout_s);
                s.breakdown.record(exec_stages::JOIN, join_s);
                s.breakdown.record(exec_stages::QUEUE, act.queue_s);
                drop(s);
                if let Some(reply) = act.reply.take() {
                    reply.send(Ok(LiveResult {
                        output,
                        preproc: act.preproc,
                        queue: act.queue,
                        inference: act.inference,
                        batch_size: act.nodes.len(),
                        total: wall,
                    }));
                }
            }
            Err(e) => {
                s.failed += 1;
                drop(s);
                if let Some(reply) = act.reply.take() {
                    reply.send(Err(e));
                }
            }
        }
    }
}

/// Materializes the K child payloads of one fan-out edge.
fn make_children(jpeg: &[u8], transform: Transform, k: usize) -> Result<Vec<Vec<u8>>, LiveError> {
    match transform {
        Transform::Identity => Ok(vec![jpeg.to_vec(); k]),
        Transform::Resize { side } => {
            let img = vserve_codec::decode(jpeg).map_err(LiveError::Decode)?;
            let side = side.max(1);
            let small = ops::resize_bilinear(&img, side, side);
            let blob = vserve_codec::encode(&small, &Default::default());
            Ok(vec![blob; k])
        }
        Transform::CropGrid => {
            let img = vserve_codec::decode(jpeg).map_err(LiveError::Decode)?;
            let cols = (k as f64).sqrt().ceil().max(1.0) as usize;
            let rows = k.div_ceil(cols);
            let w = (img.width() / cols).max(1);
            let h = (img.height() / rows).max(1);
            let mut out = Vec::with_capacity(k);
            for i in 0..k {
                let x0 = ((i % cols) * w).min(img.width() - w);
                let y0 = ((i / cols) * h).min(img.height() - h);
                let crop = ops::crop_rect(&img, x0, y0, w, h);
                out.push(vserve_codec::encode(&crop, &Default::default()));
            }
            Ok(out)
        }
    }
}
