//! Regeneration of every figure in the paper's evaluation (§4).
//!
//! Each `figN` function runs the corresponding experiment and returns
//! structured rows; each `figN_report` renders a table annotated with the
//! paper's expected values so the shape comparison is explicit.
//! EXPERIMENTS.md records a full paper-vs-measured log produced from
//! these functions.

use vserve::prelude::*;
use vserve::zoo;
use vserve_device::EngineKind;
use vserve_server::{serial_loop_throughput, StageMode};

use crate::table::{fmt, Table};

/// Measurement windows (virtual seconds) shared by all figures.
#[derive(Debug, Clone, Copy)]
pub struct Windows {
    /// Warm-up virtual seconds.
    pub warmup_s: f64,
    /// Measured virtual seconds.
    pub measure_s: f64,
}

impl Default for Windows {
    fn default() -> Self {
        Windows {
            warmup_s: 0.5,
            measure_s: 2.0,
        }
    }
}

impl Windows {
    /// Shorter windows for smoke tests and criterion wrappers.
    pub fn quick() -> Self {
        Windows {
            warmup_s: 0.2,
            measure_s: 0.6,
        }
    }
}

fn experiment(
    node: NodeConfig,
    config: ServerConfig,
    model: ModelProfile,
    img: ImageSpec,
    concurrency: usize,
    w: Windows,
) -> Experiment {
    Experiment {
        node,
        config,
        model,
        mix: ImageMix::fixed(img),
        concurrency,
        warmup_s: w.warmup_s,
        measure_s: w.measure_s,
        seed: 2024,
    }
}

// ---------------------------------------------------------------------------
// Fig 3 — software configuration ladder
// ---------------------------------------------------------------------------

/// One rung of the Fig 3 ladder.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Configuration name.
    pub name: &'static str,
    /// Measured images/second.
    pub throughput: f64,
    /// P99 latency in ms (0 for the serial closed-form rungs).
    pub tail_ms: f64,
    /// The paper's reported throughput for this rung.
    pub paper: f64,
}

/// Runs the Fig 3 ladder: PyTorch loop → DALI → GPU preprocessing →
/// TrIS+ONNX → dynamic batching → tuned parameters → TensorRT.
pub fn fig3(w: Windows) -> Vec<Fig3Row> {
    let node = NodeConfig::paper_testbed();
    let model = ModelProfile::vit_base();
    let img = ImageSpec::medium();
    // Python-loop glue per image in the non-pipelined rungs.
    let loop_overhead = 0.12e-3;

    let mut rows = Vec::new();
    // Rung 1: eager PyTorch, sequential CPU decode, batch-64 inference.
    rows.push(Fig3Row {
        name: "pytorch loop (cpu decode)",
        throughput: serial_loop_throughput(
            &node,
            &model,
            &img,
            EngineKind::PyTorch,
            PreprocWhere::Cpu,
            64,
            1,
            loop_overhead,
        ),
        tail_ms: 0.0,
        paper: 431.0,
    });
    // Rung 2: DALI batched CPU decode (vectorized loops amortize per-image
    // setup; still one pipeline thread).
    let dali_speedup = 0.92;
    let x1 = serial_loop_throughput(
        &node,
        &model,
        &img,
        EngineKind::PyTorch,
        PreprocWhere::Cpu,
        64,
        1,
        loop_overhead,
    );
    rows.push(Fig3Row {
        name: "+ dali batched cpu decode",
        throughput: x1 / dali_speedup * (1.0),
        tail_ms: 0.0,
        paper: 446.0,
    });
    // Rung 3: GPU preprocessing in the same synchronous loop.
    rows.push(Fig3Row {
        name: "+ gpu preprocessing",
        throughput: serial_loop_throughput(
            &node,
            &model,
            &img,
            EngineKind::PyTorch,
            PreprocWhere::Gpu,
            64,
            1,
            loop_overhead * 4.0, // extra H2D sync per image in the loop
        ),
        tail_ms: 0.0,
        paper: 842.0,
    });
    // Rung 4: TrIS + ONNX runtime, pipelined, fixed batches.
    let r4 = experiment(
        node,
        ServerConfig::tris_defaults(EngineKind::OnnxRuntime).with_fixed_batching(),
        model.clone(),
        img,
        64, // fixed client-side batches need full batches outstanding
        w,
    )
    .run();
    rows.push(Fig3Row {
        name: "tris + onnxrt (fixed batch)",
        throughput: r4.throughput,
        tail_ms: r4.latency.p99 * 1e3,
        paper: 1150.0,
    });
    // Rung 5: dynamic batching (throughput dips, tail improves 55→38 ms).
    let r5 = experiment(
        node,
        ServerConfig::tris_defaults(EngineKind::OnnxRuntime),
        model.clone(),
        img,
        48,
        w,
    )
    .run();
    rows.push(Fig3Row {
        name: "+ dynamic batching",
        throughput: r5.throughput,
        tail_ms: r5.latency.p99 * 1e3,
        paper: 1100.0,
    });
    // Rung 6: the paper's server-parameter search.
    let r6 = experiment(
        node,
        ServerConfig {
            engine: EngineKind::OnnxRuntime,
            ..ServerConfig::optimized()
        },
        model.clone(),
        img,
        128,
        w,
    )
    .run();
    rows.push(Fig3Row {
        name: "+ tuned server parameters",
        throughput: r6.throughput,
        tail_ms: r6.latency.p99 * 1e3,
        paper: 1400.0,
    });
    // Rung 7: TensorRT compilation.
    let r7 = experiment(node, ServerConfig::optimized(), model, img, 128, w).run();
    rows.push(Fig3Row {
        name: "+ tensorrt",
        throughput: r7.throughput,
        tail_ms: r7.latency.p99 * 1e3,
        paper: 1640.0,
    });
    rows
}

/// Renders Fig 3 as a table.
pub fn fig3_report(w: Windows) -> String {
    let mut t = Table::new(&["configuration", "img/s", "p99 ms", "paper img/s", "ratio"]);
    for r in fig3(w) {
        t.row_owned(vec![
            r.name.to_string(),
            fmt(r.throughput, 0),
            fmt(r.tail_ms, 1),
            fmt(r.paper, 0),
            fmt(r.throughput / r.paper, 2),
        ]);
    }
    format!(
        "Fig 3 — ViT-Base software ladder (medium images)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fig 4 — model zoo sweep
// ---------------------------------------------------------------------------

/// One zoo model's Fig 4 measurements.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Model name.
    pub name: String,
    /// FLOPs in GFLOPs.
    pub gflops: f64,
    /// Throughput with CPU preprocessing, img/s.
    pub cpu_pre: f64,
    /// Throughput with GPU preprocessing, img/s.
    pub gpu_pre: f64,
    /// Inference share of mean latency with GPU preprocessing.
    pub inference_share: f64,
}

/// Runs the Fig 4 sweep over the model zoo with medium ImageNet images.
pub fn fig4(w: Windows) -> Vec<Fig4Row> {
    let node = NodeConfig::paper_testbed();
    let img = ImageSpec::medium();
    zoo::build()
        .into_iter()
        .map(|e| {
            let cpu = experiment(
                node,
                ServerConfig::optimized_cpu_preproc(),
                e.profile(),
                img,
                128,
                w,
            )
            .run();
            let gpu = experiment(node, ServerConfig::optimized(), e.profile(), img, 128, w).run();
            Fig4Row {
                name: e.name.to_string(),
                gflops: e.gflops,
                cpu_pre: cpu.throughput,
                gpu_pre: gpu.throughput,
                inference_share: gpu.inference_share(),
            }
        })
        .collect()
}

/// Renders Fig 4 with the paper's summary statistics.
pub fn fig4_report(w: Windows) -> String {
    let rows = fig4(w);
    let mut t = Table::new(&[
        "model",
        "gflops",
        "cpu-pre img/s",
        "gpu-pre img/s",
        "gpu gain %",
        "inference %",
    ]);
    let mut gains = Vec::new();
    for r in &rows {
        let gain = (r.gpu_pre / r.cpu_pre - 1.0) * 100.0;
        gains.push(gain);
        t.row_owned(vec![
            r.name.clone(),
            fmt(r.gflops, 2),
            fmt(r.cpu_pre, 0),
            fmt(r.gpu_pre, 0),
            fmt(gain, 1),
            fmt(r.inference_share * 100.0, 1),
        ]);
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    let (lo, hi) = gains
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &g| {
            (l.min(g), h.max(g))
        });
    format!(
        "Fig 4 — model zoo, medium images\n{}\nGPU-preprocessing gain: {:.1}%..{:.1}%, mean {:.1}% (paper: -2.9%..104%, mean 34%)\n",
        t.render(),
        lo,
        hi,
        avg
    )
}

// ---------------------------------------------------------------------------
// Fig 5 — concurrency sweep
// ---------------------------------------------------------------------------

/// One concurrency point for one preprocessing arm.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Where preprocessing ran.
    pub preproc: PreprocWhere,
    /// Closed-loop concurrency.
    pub concurrency: usize,
    /// Throughput, img/s.
    pub throughput: f64,
    /// Mean latency, seconds.
    pub latency: f64,
    /// Mean queueing time, seconds.
    pub queue: f64,
}

/// Sweep concurrency 1..4096 for CPU and GPU preprocessing (ViT-Base,
/// medium images).
pub fn fig5(w: Windows) -> Vec<Fig5Row> {
    let node = NodeConfig::paper_testbed();
    let model = ModelProfile::vit_base();
    let img = ImageSpec::medium();
    let mut rows = Vec::new();
    for preproc in [PreprocWhere::Cpu, PreprocWhere::Gpu] {
        let config = match preproc {
            PreprocWhere::Cpu => ServerConfig::optimized_cpu_preproc(),
            PreprocWhere::Gpu => ServerConfig::optimized(),
        };
        for &c in &[1usize, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096] {
            let r = experiment(node, config.clone(), model.clone(), img, c, w).run();
            rows.push(Fig5Row {
                preproc,
                concurrency: c,
                throughput: r.throughput,
                latency: r.latency.mean,
                queue: r.queue_time(),
            });
        }
    }
    rows
}

/// Renders Fig 5.
pub fn fig5_report(w: Windows) -> String {
    let mut t = Table::new(&[
        "preproc",
        "concurrency",
        "img/s",
        "avg ms",
        "queue ms",
        "queue %",
    ]);
    for r in fig5(w) {
        t.row_owned(vec![
            r.preproc.to_string(),
            r.concurrency.to_string(),
            fmt(r.throughput, 0),
            fmt(r.latency * 1e3, 1),
            fmt(r.queue * 1e3, 1),
            fmt(100.0 * r.queue / r.latency.max(1e-12), 1),
        ]);
    }
    format!(
        "Fig 5 — concurrency sweep, ViT-Base, medium images\n{}\n(paper: queuing grows to ~3 s at 4096; GPU preprocessing declines at extreme concurrency)\n",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fig 6 — zero-load latency breakdown
// ---------------------------------------------------------------------------

/// Zero-load latency breakdown for one image size and preprocessing arm.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Image label (small/medium/large).
    pub image: &'static str,
    /// Preprocessing location.
    pub preproc: PreprocWhere,
    /// Total zero-load latency, seconds.
    pub latency: f64,
    /// Preprocessing share of latency.
    pub preproc_share: f64,
    /// Non-inference share of latency (preproc + transfer + queue +
    /// dispatch) — what the paper's Fig 6 plots against inference.
    pub overhead_share: f64,
    /// Inference share of latency.
    pub inference_share: f64,
    /// Paper's preprocessing share for this point (None if unstated).
    pub paper_share: Option<f64>,
}

/// Zero-load breakdowns: three image sizes × two preprocessing arms.
pub fn fig6(w: Windows) -> Vec<Fig6Row> {
    let node = NodeConfig::paper_testbed();
    let model = ModelProfile::vit_base();
    let mut rows = Vec::new();
    for (label, img) in [
        ("small", ImageSpec::small()),
        ("medium", ImageSpec::medium()),
        ("large", ImageSpec::large()),
    ] {
        for preproc in [PreprocWhere::Cpu, PreprocWhere::Gpu] {
            let config = match preproc {
                PreprocWhere::Cpu => ServerConfig::optimized_cpu_preproc(),
                PreprocWhere::Gpu => ServerConfig::optimized(),
            };
            let r = experiment(node, config, model.clone(), img, 1, w).zero_load();
            let paper_share = match (label, preproc) {
                ("medium", PreprocWhere::Cpu) => Some(0.56),
                ("medium", PreprocWhere::Gpu) => Some(0.49),
                ("large", PreprocWhere::Cpu) => Some(0.97),
                ("large", PreprocWhere::Gpu) => Some(0.88),
                _ => None,
            };
            rows.push(Fig6Row {
                image: label,
                preproc,
                latency: r.latency.mean,
                preproc_share: r.preproc_share(),
                overhead_share: r.overhead_share(),
                inference_share: r.inference_share(),
                paper_share,
            });
        }
    }
    rows
}

/// Renders Fig 6.
pub fn fig6_report(w: Windows) -> String {
    let mut t = Table::new(&[
        "image",
        "preproc",
        "latency ms",
        "preproc %",
        "non-inference %",
        "inference %",
        "paper non-inf %",
    ]);
    for r in fig6(w) {
        t.row_owned(vec![
            r.image.to_string(),
            r.preproc.to_string(),
            fmt(r.latency * 1e3, 2),
            fmt(r.preproc_share * 100.0, 1),
            fmt(r.overhead_share * 100.0, 1),
            fmt(r.inference_share * 100.0, 1),
            r.paper_share
                .map(|s| fmt(s * 100.0, 0))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    format!(
        "Fig 6 — zero-load latency breakdown, ViT-Base\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fig 7 — stage-isolated vs end-to-end throughput
// ---------------------------------------------------------------------------

/// Stage throughputs for one model × image size (GPU preprocessing).
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Model name.
    pub model: String,
    /// Image label.
    pub image: &'static str,
    /// Preprocessing-only throughput, img/s.
    pub preproc_only: f64,
    /// Inference-only throughput, img/s.
    pub inference_only: f64,
    /// End-to-end throughput, img/s.
    pub end_to_end: f64,
}

/// Runs the Fig 7 matrix: {TinyViT, ResNet-50, ViT-Base} × {S, M, L}.
pub fn fig7(w: Windows) -> Vec<Fig7Row> {
    let node = NodeConfig::paper_testbed();
    let mut rows = Vec::new();
    for model in [
        ModelProfile::tiny_vit(),
        ModelProfile::resnet50(),
        ModelProfile::vit_base(),
    ] {
        for (label, img) in [
            ("small", ImageSpec::small()),
            ("medium", ImageSpec::medium()),
            ("large", ImageSpec::large()),
        ] {
            let run = |mode: StageMode| {
                experiment(
                    node,
                    ServerConfig::optimized().with_stage_mode(mode),
                    model.clone(),
                    img,
                    256,
                    w,
                )
                .run()
                .throughput
            };
            rows.push(Fig7Row {
                model: model.name.clone(),
                image: label,
                preproc_only: run(StageMode::PreprocOnly),
                inference_only: run(StageMode::InferenceOnly),
                end_to_end: run(StageMode::EndToEnd),
            });
        }
    }
    rows
}

/// Renders Fig 7.
pub fn fig7_report(w: Windows) -> String {
    let rows = fig7(w);
    let mut t = Table::new(&[
        "model",
        "image",
        "preproc-only",
        "inference-only",
        "end-to-end",
        "e2e/inf",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.model.clone(),
            r.image.to_string(),
            fmt(r.preproc_only, 0),
            fmt(r.inference_only, 0),
            fmt(r.end_to_end, 0),
            fmt(r.end_to_end / r.inference_only, 2),
        ]);
    }
    format!(
        "Fig 7 — stage-isolated throughput, GPU preprocessing\n{}\n(paper: ViT-Base large e2e = 19.5% of inference-only; TinyViT small/medium e2e can exceed inference-only)\n",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fig 8 — energy per image
// ---------------------------------------------------------------------------

/// Energy split for one model × image × preprocessing arm.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Model name.
    pub model: String,
    /// Image label.
    pub image: &'static str,
    /// Preprocessing location.
    pub preproc: PreprocWhere,
    /// CPU joules per image.
    pub cpu_j: f64,
    /// GPU joules per image.
    pub gpu_j: f64,
}

/// Energy per image: three models × {medium, large} × {CPU, GPU} preproc.
pub fn fig8(w: Windows) -> Vec<Fig8Row> {
    let node = NodeConfig::paper_testbed();
    let mut rows = Vec::new();
    for model in [
        ModelProfile::tiny_vit(),
        ModelProfile::resnet50(),
        ModelProfile::vit_base(),
    ] {
        for (label, img) in [
            ("medium", ImageSpec::medium()),
            ("large", ImageSpec::large()),
        ] {
            for preproc in [PreprocWhere::Cpu, PreprocWhere::Gpu] {
                let config = match preproc {
                    PreprocWhere::Cpu => ServerConfig::optimized_cpu_preproc(),
                    PreprocWhere::Gpu => ServerConfig::optimized(),
                };
                let r = experiment(node, config, model.clone(), img, 128, w).run();
                rows.push(Fig8Row {
                    model: model.name.clone(),
                    image: label,
                    preproc,
                    cpu_j: r.energy.cpu_j_per_image(),
                    gpu_j: r.energy.gpu_j_per_image(),
                });
            }
        }
    }
    rows
}

/// Renders Fig 8.
pub fn fig8_report(w: Windows) -> String {
    let mut t = Table::new(&[
        "model",
        "image",
        "preproc",
        "cpu J/img",
        "gpu J/img",
        "total",
    ]);
    for r in fig8(w) {
        t.row_owned(vec![
            r.model.clone(),
            r.image.to_string(),
            r.preproc.to_string(),
            fmt(r.cpu_j, 3),
            fmt(r.gpu_j, 3),
            fmt(r.cpu_j + r.gpu_j, 3),
        ]);
    }
    format!(
        "Fig 8 — energy per image\n{}\n(paper: CPU preprocessing costs more energy across the board; large images raise CPU energy)\n",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fig 9 — multi-GPU scaling
// ---------------------------------------------------------------------------

/// Throughput at one GPU count for one arm.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Image label.
    pub image: &'static str,
    /// Arm: cpu-preproc / gpu-preproc / inference-only.
    pub arm: &'static str,
    /// GPU count.
    pub gpus: usize,
    /// Throughput, img/s.
    pub throughput: f64,
}

/// Multi-GPU scaling of ViT-Base: 1–4 GPUs × {medium, large} × three arms.
pub fn fig9(w: Windows) -> Vec<Fig9Row> {
    let model = ModelProfile::vit_base();
    let mut rows = Vec::new();
    for (label, img) in [
        ("medium", ImageSpec::medium()),
        ("large", ImageSpec::large()),
    ] {
        for (arm, config) in [
            ("cpu-preproc", ServerConfig::optimized_cpu_preproc()),
            ("gpu-preproc", ServerConfig::optimized()),
            (
                "inference-only",
                ServerConfig::optimized().with_stage_mode(StageMode::InferenceOnly),
            ),
        ] {
            for gpus in 1..=4 {
                let node = NodeConfig::with_gpus(gpus);
                let concurrency = 256 * gpus;
                let r = experiment(node, config.clone(), model.clone(), img, concurrency, w).run();
                rows.push(Fig9Row {
                    image: label,
                    arm,
                    gpus,
                    throughput: r.throughput,
                });
            }
        }
    }
    rows
}

/// Renders Fig 9.
pub fn fig9_report(w: Windows) -> String {
    let rows = fig9(w);
    let mut t = Table::new(&["image", "arm", "gpus", "img/s", "scaling"]);
    for r in &rows {
        let base = rows
            .iter()
            .find(|b| b.image == r.image && b.arm == r.arm && b.gpus == 1)
            .map(|b| b.throughput)
            .unwrap_or(r.throughput);
        t.row_owned(vec![
            r.image.to_string(),
            r.arm.to_string(),
            r.gpus.to_string(),
            fmt(r.throughput, 0),
            fmt(r.throughput / base, 2),
        ]);
    }
    format!(
        "Fig 9 — multi-GPU scaling, ViT-Base\n{}\n(paper: medium scales ~linearly; large with GPU preprocessing gains to 2 GPUs then stalls; CPU preprocessing stays flat; inference-only scales linearly)\n",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fig 11 — brokers in the multi-DNN pipeline
// ---------------------------------------------------------------------------

/// One faces-per-frame point for one coupling.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Coupling mechanism.
    pub broker: BrokerKind,
    /// Faces per frame.
    pub faces: u64,
    /// Frames per second.
    pub frame_throughput: f64,
    /// Zero-load mean frame latency, seconds.
    pub zero_load_latency: f64,
    /// Broker share of zero-load latency.
    pub broker_share: f64,
}

/// The Fig 11 sweep: faces 1..25 × {Kafka-like, Redis-like, Fused}.
pub fn fig11(w: Windows) -> Vec<Fig11Row> {
    let node = NodeConfig::paper_testbed();
    let mut rows = Vec::new();
    for broker in [
        BrokerKind::KafkaLike,
        BrokerKind::RedisLike,
        BrokerKind::Fused,
    ] {
        for &k in &[1u64, 2, 4, 6, 9, 12, 16, 20, 25] {
            let exp = PipelineExperiment {
                node,
                broker,
                faces: FacesPerFrame::fixed(k),
                concurrency: 64,
                warmup_s: w.warmup_s,
                measure_s: w.measure_s,
                seed: 2024,
            };
            let run = exp.run();
            let zl = exp.zero_load();
            rows.push(Fig11Row {
                broker,
                faces: k,
                frame_throughput: run.frame_throughput,
                zero_load_latency: zl.latency.mean,
                broker_share: zl.broker_share(),
            });
        }
    }
    rows
}

/// Renders Fig 11 with the paper's headline comparisons.
pub fn fig11_report(w: Windows) -> String {
    let rows = fig11(w);
    let mut t = Table::new(&["broker", "faces", "frames/s", "zero-load ms", "broker %"]);
    for r in &rows {
        t.row_owned(vec![
            r.broker.to_string(),
            r.faces.to_string(),
            fmt(r.frame_throughput, 0),
            fmt(r.zero_load_latency * 1e3, 2),
            fmt(r.broker_share * 100.0, 1),
        ]);
    }
    let at = |broker: BrokerKind, k: u64| {
        rows.iter()
            .find(|r| r.broker == broker && r.faces == k)
            .cloned()
            .expect("swept point")
    };
    let k25_redis = at(BrokerKind::RedisLike, 25);
    let k25_kafka = at(BrokerKind::KafkaLike, 25);
    let crossover = [1u64, 2, 4, 6, 9, 12, 16, 20, 25]
        .iter()
        .find(|&&k| {
            at(BrokerKind::RedisLike, k).frame_throughput
                > at(BrokerKind::Fused, k).frame_throughput
        })
        .copied();
    format!(
        "Fig 11 — multi-DNN pipeline brokers\n{}\nredis/kafka throughput at 25 faces: {:.2}x (paper 2.25x)\nzero-load latency gain at 25 faces: {:.0}% (paper 67%)\nbroker latency share at 25 faces: kafka {:.0}% (paper 71%), redis {:.0}% (paper 6%)\nredis overtakes fused at k = {:?} (paper: 9)\n",
        t.render(),
        k25_redis.frame_throughput / k25_kafka.frame_throughput,
        (1.0 - k25_redis.zero_load_latency / k25_kafka.zero_load_latency) * 100.0,
        k25_kafka.broker_share * 100.0,
        k25_redis.broker_share * 100.0,
        crossover
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_ladder_monotone_overall() {
        let rows = fig3(Windows::quick());
        assert_eq!(rows.len(), 7);
        // End-to-end improvement across the ladder is large (paper: >8x
        // between rung 1 and rung 7 at its anchors).
        let first = rows.first().unwrap().throughput;
        let last = rows.last().unwrap().throughput;
        assert!(last / first > 3.0, "ladder gain {:.1}x", last / first);
        // Every rung within a factor ~1.6 of the paper's value.
        for r in &rows {
            let ratio = r.throughput / r.paper;
            assert!(
                (0.6..1.7).contains(&ratio),
                "{}: {:.0} vs paper {:.0}",
                r.name,
                r.throughput,
                r.paper
            );
        }
    }

    #[test]
    fn fig6_shares_track_paper() {
        for r in fig6(Windows::quick()) {
            if let Some(paper) = r.paper_share {
                assert!(
                    (r.overhead_share - paper).abs() < 0.12,
                    "{} {}: {:.2} vs paper {:.2}",
                    r.image,
                    r.preproc,
                    r.overhead_share,
                    paper
                );
            }
        }
    }

    #[test]
    fn fig11_headlines() {
        let report = fig11_report(Windows::quick());
        assert!(report.contains("redis/kafka"));
    }
}
