//! Fixed-width table rendering for figure-regeneration reports.

/// A simple fixed-width table builder.
///
/// # Examples
///
/// ```
/// use vserve_bench::table::Table;
///
/// let mut t = Table::new(&["model", "img/s"]);
/// t.row(&["vit-base", "1650.0"]);
/// let s = t.render();
/// assert!(s.contains("vit-base"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header underline.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision.
pub fn fmt(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(&["x"]);
        t.row(&["1", "extra"]);
        assert!(t.render().contains("extra"));
        assert_eq!(t.len(), 1);
    }
}
