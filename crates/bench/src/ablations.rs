//! Ablations over the design choices DESIGN.md calls out.
//!
//! These are not paper figures; they expose *why* the reproduced shapes
//! appear by sweeping the mechanisms the model attributes them to.

use vserve::prelude::*;

use crate::figs::Windows;
use crate::table::{fmt, Table};

fn base(node: NodeConfig, config: ServerConfig, concurrency: usize, w: Windows) -> Experiment {
    Experiment {
        node,
        config,
        model: ModelProfile::vit_base(),
        mix: ImageMix::fixed(ImageSpec::medium()),
        concurrency,
        warmup_s: w.warmup_s,
        measure_s: w.measure_s,
        seed: 7,
    }
}

/// Sweep the dynamic batcher's maximum queueing delay: the paper's Fig 3
/// rung-5 trade (throughput vs tail latency).
pub fn batch_delay_sweep(w: Windows) -> String {
    let node = NodeConfig::paper_testbed();
    let mut t = Table::new(&["max delay ms", "img/s", "p99 ms", "mean batch"]);
    for delay_ms in [0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
        let config = ServerConfig {
            max_queue_delay_s: delay_ms * 1e-3,
            ..ServerConfig::optimized()
        };
        let r = base(node, config, 96, w).run();
        t.row_owned(vec![
            fmt(delay_ms, 1),
            fmt(r.throughput, 0),
            fmt(r.latency.p99 * 1e3, 1),
            fmt(r.mean_batch, 1),
        ]);
    }
    format!(
        "Ablation — dynamic batching max delay (ViT-Base, medium)\n{}",
        t.render()
    )
}

/// Grid over CPU preprocessing workers × instances: the paper's "quick
/// search on server settings" (+300 img/s in Fig 3).
pub fn worker_instance_grid(w: Windows) -> String {
    let node = NodeConfig::paper_testbed();
    let mut t = Table::new(&["workers", "instances", "img/s (cpu-pre)"]);
    for workers in [2usize, 4, 8, 16, 24] {
        for instances in [1usize, 2, 4] {
            let config = ServerConfig {
                preproc_workers: workers,
                instances_per_gpu: instances,
                ..ServerConfig::optimized_cpu_preproc()
            };
            let r = base(node, config, 256, w).run();
            t.row_owned(vec![
                workers.to_string(),
                instances.to_string(),
                fmt(r.throughput, 0),
            ]);
        }
    }
    format!(
        "Ablation — preprocessing workers × model instances\n{}",
        t.render()
    )
}

/// Sweep the host staging bandwidth: what moves the Fig 9 multi-GPU knee
/// for large images.
pub fn staging_bandwidth_sweep(w: Windows) -> String {
    let mut t = Table::new(&["staging GB/s", "1 gpu img/s", "4 gpu img/s", "scaling"]);
    for gbps in [2.0, 4.0, 6.0, 12.0, 24.0] {
        let mut node1 = NodeConfig::with_gpus(1);
        node1.cpu.staging_bytes_per_s = gbps * 1e9;
        let mut node4 = NodeConfig::with_gpus(4);
        node4.cpu.staging_bytes_per_s = gbps * 1e9;
        let mk = |node: NodeConfig, c: usize| Experiment {
            node,
            config: ServerConfig::optimized(),
            model: ModelProfile::vit_base(),
            mix: ImageMix::fixed(ImageSpec::large()),
            concurrency: c,
            warmup_s: w.warmup_s,
            measure_s: w.measure_s,
            seed: 7,
        };
        let x1 = mk(node1, 256).run().throughput;
        let x4 = mk(node4, 512).run().throughput;
        t.row_owned(vec![
            fmt(gbps, 0),
            fmt(x1, 0),
            fmt(x4, 0),
            fmt(x4 / x1.max(1e-9), 2),
        ]);
    }
    format!(
        "Ablation — host staging bandwidth vs multi-GPU scaling (large images)\n{}",
        t.render()
    )
}

/// Sweep the GPU memory watermark: what produces the Fig 5 decline at
/// extreme concurrency.
pub fn memory_watermark_sweep(w: Windows) -> String {
    let mut t = Table::new(&["watermark", "img/s @512", "img/s @4096", "decline %"]);
    for watermark in [0.4, 0.6, 0.8, 1.0] {
        let mut node = NodeConfig::paper_testbed();
        node.gpu.mem_watermark = watermark;
        let x512 = base(node, ServerConfig::optimized(), 512, w)
            .run()
            .throughput;
        let x4096 = base(node, ServerConfig::optimized(), 4096, w)
            .run()
            .throughput;
        t.row_owned(vec![
            fmt(watermark, 1),
            fmt(x512, 0),
            fmt(x4096, 0),
            fmt((1.0 - x4096 / x512.max(1e-9)) * 100.0, 1),
        ]);
    }
    format!(
        "Ablation — GPU memory watermark vs extreme-concurrency decline\n{}",
        t.render()
    )
}

/// Broker cost sensitivity: scale the disk broker's per-message cost (a
/// stand-in for fsync policy) and watch the Fig 11 gap move.
pub fn broker_cost_sweep(w: Windows) -> String {
    use vserve_broker::BrokerKind;
    let node = NodeConfig::paper_testbed();
    let mut t = Table::new(&["broker", "faces", "frames/s"]);
    for broker in [
        BrokerKind::KafkaLike,
        BrokerKind::RedisLike,
        BrokerKind::Fused,
    ] {
        for k in [4u64, 12, 25] {
            let r = PipelineExperiment {
                node,
                broker,
                faces: FacesPerFrame::fixed(k),
                concurrency: 64,
                warmup_s: w.warmup_s,
                measure_s: w.measure_s,
                seed: 7,
            }
            .run();
            t.row_owned(vec![
                broker.to_string(),
                k.to_string(),
                fmt(r.frame_throughput, 0),
            ]);
        }
    }
    format!("Ablation — broker kind × faces per frame\n{}", t.render())
}

/// Runs every ablation and concatenates the reports.
pub fn all(w: Windows) -> String {
    [
        batch_delay_sweep(w),
        worker_instance_grid(w),
        staging_bandwidth_sweep(w),
        memory_watermark_sweep(w),
        broker_cost_sweep(w),
    ]
    .join("\n")
}
