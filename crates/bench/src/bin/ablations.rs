//! Runs every design-choice ablation sweep.
fn main() {
    println!(
        "{}",
        vserve_bench::ablations::all(vserve_bench::figs::Windows::default())
    );
}
