//! Kernel micro-benchmarks: naive vs tiled vs parallel compute paths,
//! scalar vs SIMD dispatch.
//!
//! Times the hot kernels behind the paper's preprocessing + inference
//! pipeline at the testbed shapes (224/336/448 px inputs, batch 1-32):
//!
//! * `gemm` (naive oracle) vs `gemm_tiled` (packed-B register tiling),
//! * `conv2d_batch_ref` vs `conv2d_batch_into` (scratch-reusing, serial
//!   and multi-threaded) on the 3->32 stride-2 stem convolution,
//! * sequential vs parallel JPEG decode,
//! * sequential vs parallel resize + normalize preprocessing,
//! * the fused resize→normalize→tensor kernel.
//!
//! Every SIMD-routed variant (`gemm_tiled`, conv, decode, fused
//! preprocess) is additionally timed once per dispatch level — forced
//! scalar and the host's best vector level — and each record carries a
//! `dispatch` column naming the level it ran under, so the scalar-vs-simd
//! uplift is a first-class column of `BENCH_kernels.json`. Every variant
//! is checked bit-identical to its naive scalar reference before it is
//! timed, so a speedup here is never bought with a numeric drift.
//!
//! Results are printed as a table and appended as JSON lines to
//! `BENCH_kernels.json` (override with `--out PATH`). `--smoke` shrinks
//! shapes and repetitions to a few milliseconds for CI wiring checks.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use vserve_compute::{Backend, Scratch};
use vserve_device::ImageSpec;
use vserve_dnn::kernels;
use vserve_simd::Level;
use vserve_tensor::{ops, Image};
use vserve_workload::synthetic_jpeg;

/// One timed variant of one benchmark, serialized as a JSON line.
struct Record {
    bench: &'static str,
    variant: &'static str,
    shape: String,
    threads: usize,
    /// SIMD dispatch level the variant ran under.
    dispatch: &'static str,
    secs: f64,
    /// Work rate in the bench's natural unit (GFLOP/s or Mpix/s).
    rate: f64,
    rate_unit: &'static str,
    speedup_vs_naive: f64,
}

impl Record {
    fn json(&self, host_cores: usize, smoke: bool) -> String {
        format!(
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"shape\":\"{}\",\"threads\":{},\
             \"dispatch\":\"{}\",\"secs\":{:.6},\"{}\":{:.3},\"speedup_vs_naive\":{:.3},\
             \"host_cores\":{},\"smoke\":{}}}",
            self.bench,
            self.variant,
            self.shape,
            self.threads,
            self.dispatch,
            self.secs,
            self.rate_unit,
            self.rate,
            self.speedup_vs_naive,
            host_cores,
            smoke
        )
    }
}

/// Dispatch levels to sweep: forced scalar plus the host's best vector
/// level (when it has one). On a vectorless host this is just `scalar`,
/// and the records say so.
fn dispatch_levels() -> Vec<Level> {
    vserve_simd::reset_level();
    let native = vserve_simd::active_level();
    if native.is_scalar() {
        vec![Level::Scalar]
    } else {
        vec![Level::Scalar, native]
    }
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Deterministic pseudo-random fill in [-1, 1) (xorshift).
fn pseudo(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

fn bench_gemm(records: &mut Vec<Record>, smoke: bool, par_threads: usize) {
    let (m, k, n) = if smoke { (48, 48, 48) } else { (256, 256, 256) };
    let reps = if smoke { 1 } else { 5 };
    let a = pseudo(1, m * k);
    let b = pseudo(2, k * n);
    let mut c_naive = vec![0.0f32; m * n];
    let mut c_tiled = vec![0.0f32; m * n];
    let shape = format!("{m}x{k}x{n}");
    let gflop = (2 * m * k * n) as f64 / 1e9;

    let naive = time_best(reps, || kernels::gemm(&a, &b, &mut c_naive, m, k, n));
    records.push(Record {
        bench: "gemm",
        variant: "naive",
        shape: shape.clone(),
        threads: 1,
        dispatch: Level::Scalar.name(),
        secs: naive,
        rate: gflop / naive,
        rate_unit: "gflops",
        speedup_vs_naive: 1.0,
    });

    for level in dispatch_levels() {
        vserve_simd::set_level(level);
        for (variant, bk) in [
            ("tiled_serial", Backend::serial()),
            ("tiled_parallel", Backend::new(par_threads)),
        ] {
            let mut scratch = Scratch::new();
            kernels::gemm_tiled(&bk, &mut scratch, &a, &b, &mut c_tiled, m, k, n);
            assert_eq!(c_naive, c_tiled, "gemm_tiled diverged from naive gemm");
            let secs = time_best(reps, || {
                kernels::gemm_tiled(&bk, &mut scratch, &a, &b, &mut c_tiled, m, k, n)
            });
            records.push(Record {
                bench: "gemm",
                variant,
                shape: shape.clone(),
                threads: bk.threads(),
                dispatch: level.name(),
                secs,
                rate: gflop / secs,
                rate_unit: "gflops",
                speedup_vs_naive: naive / secs,
            });
        }
    }
    vserve_simd::reset_level();
}

fn bench_conv(records: &mut Vec<Record>, smoke: bool, par_threads: usize) {
    // The stem convolution of the paper's CNNs: 3->32 channels, 3x3,
    // stride 2, pad 1, at the three input resolutions of the testbed.
    let (in_c, out_c, k, stride, pad) = (3usize, 32usize, 3usize, 2usize, 1usize);
    let shapes: Vec<(usize, usize)> = if smoke {
        vec![(64, 1), (64, 4)]
    } else {
        vec![
            (224, 1),
            (224, 8),
            (224, 32),
            (336, 1),
            (336, 8),
            (448, 1),
            (448, 8),
        ]
    };
    let weight = pseudo(3, out_c * in_c * k * k);
    let bias = pseudo(4, out_c);

    for (px, batch) in shapes {
        let input = pseudo(5 + px as u64, batch * in_c * px * px);
        let flops = {
            let o = px.div_ceil(stride);
            (2 * batch * out_c * o * o * in_c * k * k) as f64
        };
        // Keep the heavy naive reference to one rep on big shapes.
        let reps = if smoke {
            1
        } else if flops > 5e8 {
            1
        } else {
            3
        };
        let shape = format!("{px}px_b{batch}");

        let (ref_out, _, _) = kernels::conv2d_batch_ref(
            &input, batch, &weight, &bias, in_c, px, px, out_c, k, stride, pad,
        );
        let naive = time_best(reps, || {
            kernels::conv2d_batch_ref(
                &input, batch, &weight, &bias, in_c, px, px, out_c, k, stride, pad,
            );
        });
        records.push(Record {
            bench: "conv2d_batch",
            variant: "naive",
            shape: shape.clone(),
            threads: 1,
            dispatch: Level::Scalar.name(),
            secs: naive,
            rate: flops / naive / 1e9,
            rate_unit: "gflops",
            speedup_vs_naive: 1.0,
        });

        for level in dispatch_levels() {
            vserve_simd::set_level(level);
            for (variant, bk) in [
                ("tiled_serial", Backend::serial()),
                ("tiled_parallel", Backend::new(par_threads)),
            ] {
                let mut scratch = Scratch::new();
                let mut out = Vec::new();
                kernels::conv2d_batch_into(
                    &bk,
                    &mut scratch,
                    &input,
                    batch,
                    &weight,
                    &bias,
                    in_c,
                    px,
                    px,
                    out_c,
                    k,
                    stride,
                    pad,
                    &mut out,
                );
                assert_eq!(ref_out, out, "conv2d_batch_into diverged from reference");
                let secs = time_best(reps, || {
                    kernels::conv2d_batch_into(
                        &bk,
                        &mut scratch,
                        &input,
                        batch,
                        &weight,
                        &bias,
                        in_c,
                        px,
                        px,
                        out_c,
                        k,
                        stride,
                        pad,
                        &mut out,
                    );
                });
                records.push(Record {
                    bench: "conv2d_batch",
                    variant,
                    shape: shape.clone(),
                    threads: bk.threads(),
                    dispatch: level.name(),
                    secs,
                    rate: flops / secs / 1e9,
                    rate_unit: "gflops",
                    speedup_vs_naive: naive / secs,
                });
            }
        }
        vserve_simd::reset_level();
    }
}

fn bench_decode(records: &mut Vec<Record>, smoke: bool, par_threads: usize) {
    let px = if smoke { 96 } else { 448 };
    let reps = if smoke { 1 } else { 5 };
    let jpeg = synthetic_jpeg(&ImageSpec::new(px, px, 0), 17);
    let mpix = (px * px) as f64 / 1e6;
    let shape = format!("{px}px");

    vserve_simd::set_level(Level::Scalar);
    let ref_img = vserve_codec::decode(&jpeg).expect("decode");
    let naive = time_best(reps, || {
        vserve_codec::decode(&jpeg).expect("decode");
    });
    records.push(Record {
        bench: "jpeg_decode",
        variant: "serial",
        shape: shape.clone(),
        threads: 1,
        dispatch: Level::Scalar.name(),
        secs: naive,
        rate: mpix / naive,
        rate_unit: "mpix_per_s",
        speedup_vs_naive: 1.0,
    });

    for level in dispatch_levels() {
        vserve_simd::set_level(level);
        if !level.is_scalar() {
            // SIMD serial decode: same bits, IDCT + color-convert on the
            // vector units.
            let img = vserve_codec::decode(&jpeg).expect("decode");
            assert_eq!(ref_img.as_bytes(), img.as_bytes(), "simd decode diverged");
            let secs = time_best(reps, || {
                vserve_codec::decode(&jpeg).expect("decode");
            });
            records.push(Record {
                bench: "jpeg_decode",
                variant: "serial",
                shape: shape.clone(),
                threads: 1,
                dispatch: level.name(),
                secs,
                rate: mpix / secs,
                rate_unit: "mpix_per_s",
                speedup_vs_naive: naive / secs,
            });
        }
        let bk = Backend::new(par_threads);
        let mut scratch = Scratch::new();
        let img = vserve_codec::decode_with(&bk, &mut scratch, &jpeg).expect("decode");
        assert_eq!(
            ref_img.as_bytes(),
            img.as_bytes(),
            "parallel decode diverged"
        );
        let secs = time_best(reps, || {
            vserve_codec::decode_with(&bk, &mut scratch, &jpeg).expect("decode");
        });
        records.push(Record {
            bench: "jpeg_decode",
            variant: "parallel",
            shape: shape.clone(),
            threads: bk.threads(),
            dispatch: level.name(),
            secs,
            rate: mpix / secs,
            rate_unit: "mpix_per_s",
            speedup_vs_naive: naive / secs,
        });
    }
    vserve_simd::reset_level();
}

fn bench_preprocess(records: &mut Vec<Record>, smoke: bool, par_threads: usize) {
    let (w, h, side) = if smoke {
        (160, 120, 64)
    } else {
        (640, 480, 224)
    };
    let reps = if smoke { 1 } else { 5 };
    let img = Image::noise(w, h, 23);
    let mpix = (w * h) as f64 / 1e6;
    let shape = format!("{w}x{h}->{side}");

    // The unfused chain's resize/normalize passes are not SIMD-routed;
    // record them under the scalar label regardless of the host level.
    vserve_simd::set_level(Level::Scalar);
    let ref_t = ops::standard_preprocess(&img, side);
    let naive = time_best(reps, || {
        ops::standard_preprocess(&img, side);
    });
    records.push(Record {
        bench: "preprocess",
        variant: "serial",
        shape: shape.clone(),
        threads: 1,
        dispatch: Level::Scalar.name(),
        secs: naive,
        rate: mpix / naive,
        rate_unit: "mpix_per_s",
        speedup_vs_naive: 1.0,
    });

    let bk = Backend::new(par_threads);
    let t = ops::standard_preprocess_with(&bk, &img, side);
    assert_eq!(
        ref_t.as_slice(),
        t.as_slice(),
        "parallel preprocess diverged"
    );
    let secs = time_best(reps, || {
        ops::standard_preprocess_with(&bk, &img, side);
    });
    records.push(Record {
        bench: "preprocess",
        variant: "parallel",
        shape,
        threads: bk.threads(),
        dispatch: Level::Scalar.name(),
        secs,
        rate: mpix / secs,
        rate_unit: "mpix_per_s",
        speedup_vs_naive: naive / secs,
    });
    vserve_simd::reset_level();
}

fn bench_fused_preprocess(records: &mut Vec<Record>, smoke: bool) {
    let (w, h, side) = if smoke {
        (160, 120, 64)
    } else {
        (640, 480, 224)
    };
    let reps = if smoke { 1 } else { 5 };
    let img = Image::noise(w, h, 29);
    let mpix = (w * h) as f64 / 1e6;
    let shape = format!("{w}x{h}->{side}");

    vserve_simd::set_level(Level::Scalar);
    let ref_t = ops::fused_preprocess(&img, side);
    let mut naive = f64::INFINITY;
    for level in dispatch_levels() {
        vserve_simd::set_level(level);
        let t = ops::fused_preprocess(&img, side);
        assert_eq!(
            ref_t.as_slice(),
            t.as_slice(),
            "fused preprocess diverged at {level}"
        );
        let secs = time_best(reps, || {
            ops::fused_preprocess(&img, side);
        });
        if level.is_scalar() {
            naive = secs;
        }
        records.push(Record {
            bench: "fused_preprocess",
            variant: "serial",
            shape: shape.clone(),
            threads: 1,
            dispatch: level.name(),
            secs,
            rate: mpix / secs,
            rate_unit: "mpix_per_s",
            speedup_vs_naive: naive / secs,
        });
    }
    vserve_simd::reset_level();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let par_threads = Backend::from_env().threads().max(4);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut records = Vec::new();
    bench_gemm(&mut records, smoke, par_threads);
    bench_conv(&mut records, smoke, par_threads);
    bench_decode(&mut records, smoke, par_threads);
    bench_preprocess(&mut records, smoke, par_threads);
    bench_fused_preprocess(&mut records, smoke);

    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:<16} {:<14} {:<12} {:>7} {:<8} {:>12} {:>14} {:>9}",
        "bench", "variant", "shape", "threads", "dispatch", "secs", "rate", "speedup"
    );
    for r in &records {
        let _ = writeln!(
            table,
            "{:<16} {:<14} {:<12} {:>7} {:<8} {:>12.6} {:>9.3} {:>4} {:>9.2}x",
            r.bench,
            r.variant,
            r.shape,
            r.threads,
            r.dispatch,
            r.secs,
            r.rate,
            r.rate_unit,
            r.speedup_vs_naive
        );
    }
    print!("{table}");
    println!("host_cores={host_cores} smoke={smoke}");

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open bench output");
    for r in &records {
        writeln!(file, "{}", r.json(host_cores, smoke)).expect("write bench output");
    }
    println!("appended {} records to {out_path}", records.len());
}
