//! Preprocessing fast-path benchmarks: baseline vs fused vs scaled decode.
//!
//! Times the single-image JPEG→tensor preprocessing chain at the testbed
//! shapes (448/896/1792 px sources → 224 px model input), single-threaded:
//!
//! * `baseline` — full decode, then separate resize and normalize passes
//!   (`decode_with` + `standard_preprocess_with`),
//! * `fused_full` — full decode feeding the fused
//!   resize→normalize→tensor kernel (`fused_preprocess_with`),
//! * `fast` — DCT-domain scaled decode + fused kernel
//!   (`preprocess_jpeg_with`), the live server's default path,
//! * `cache_hit` — content hash + LRU lookup serving an already
//!   preprocessed tensor from `PreprocCache`.
//!
//! The fused variant is checked element-close to the baseline chain and
//! the fast variant is checked for identical output shape before timing;
//! exact accuracy bounds live in the codec/tensor test suites.
//!
//! Results are printed as a table and appended as JSON lines to
//! `BENCH_preproc.json` (override with `--out PATH`). `--smoke` shrinks
//! shapes and repetitions to a few milliseconds for CI wiring checks.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use vserve_compute::{Backend, Scratch};
use vserve_device::ImageSpec;
use vserve_server::cache::CacheKey;
use vserve_server::PreprocCache;
use vserve_tensor::ops;
use vserve_workload::synthetic_jpeg;

/// One timed variant of one benchmark, serialized as a JSON line.
struct Record {
    bench: &'static str,
    variant: &'static str,
    shape: String,
    threads: usize,
    secs: f64,
    /// Source megapixels processed per second.
    rate: f64,
    rate_unit: &'static str,
    speedup_vs_baseline: f64,
}

impl Record {
    fn json(&self, host_cores: usize, smoke: bool) -> String {
        format!(
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"shape\":\"{}\",\"threads\":{},\
             \"secs\":{:.6},\"{}\":{:.3},\"speedup_vs_baseline\":{:.3},\
             \"host_cores\":{},\"smoke\":{}}}",
            self.bench,
            self.variant,
            self.shape,
            self.threads,
            self.secs,
            self.rate_unit,
            self.rate,
            self.speedup_vs_baseline,
            host_cores,
            smoke
        )
    }
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_source(records: &mut Vec<Record>, src: usize, side: usize, reps: usize, smoke: bool) {
    let jpeg = synthetic_jpeg(&ImageSpec::new(src, src, 0), 17);
    let mpix = (src * src) as f64 / 1e6;
    let shape = format!("{src}px->{side}");
    let bk = Backend::serial();
    let mut scratch = Scratch::new();

    let ref_t = {
        let img = vserve_codec::decode_with(&bk, &mut scratch, &jpeg).expect("decode");
        ops::standard_preprocess_with(&bk, &img, side)
    };
    let baseline = time_best(reps, || {
        let img = vserve_codec::decode_with(&bk, &mut scratch, &jpeg).expect("decode");
        ops::standard_preprocess_with(&bk, &img, side);
    });
    records.push(Record {
        bench: "preproc",
        variant: "baseline",
        shape: shape.clone(),
        threads: 1,
        secs: baseline,
        rate: mpix / baseline,
        rate_unit: "mpix_per_s",
        speedup_vs_baseline: 1.0,
    });

    // Fused kernel on the full-resolution decode: same samples as the
    // baseline chain up to float-arithmetic fusion, so element-close.
    let fused_t = {
        let img = vserve_codec::decode_with(&bk, &mut scratch, &jpeg).expect("decode");
        ops::fused_preprocess_with(&bk, &img, side)
    };
    assert_eq!(ref_t.shape(), fused_t.shape());
    let worst = ref_t
        .as_slice()
        .iter()
        .zip(fused_t.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(worst < 0.1, "fused kernel diverged from baseline: {worst}");
    let fused = time_best(reps, || {
        let img = vserve_codec::decode_with(&bk, &mut scratch, &jpeg).expect("decode");
        ops::fused_preprocess_with(&bk, &img, side);
    });
    records.push(Record {
        bench: "preproc",
        variant: "fused_full",
        shape: shape.clone(),
        threads: 1,
        secs: fused,
        rate: mpix / fused,
        rate_unit: "mpix_per_s",
        speedup_vs_baseline: baseline / fused,
    });

    let fast_t =
        vserve_codec::preprocess_jpeg_with(&bk, &mut scratch, &jpeg, side).expect("fast path");
    assert_eq!(ref_t.shape(), fast_t.shape());
    let fast = time_best(reps, || {
        vserve_codec::preprocess_jpeg_with(&bk, &mut scratch, &jpeg, side).expect("fast path");
    });
    records.push(Record {
        bench: "preproc",
        variant: "fast",
        shape: shape.clone(),
        threads: 1,
        secs: fast,
        rate: mpix / fast,
        rate_unit: "mpix_per_s",
        speedup_vs_baseline: baseline / fast,
    });

    // Serving the same payload from the content-addressed cache: hash the
    // bytes, look up, clone the Arc — what a LiveServer hit costs.
    let mut cache = PreprocCache::with_capacity_mb(64);
    cache.insert(CacheKey::for_payload(&jpeg, side), Arc::new(fast_t));
    let hit = time_best(reps.max(5), || {
        let key = CacheKey::for_payload(&jpeg, side);
        assert!(cache.get(&key).is_some(), "seeded entry must hit");
    });
    records.push(Record {
        bench: "preproc",
        variant: "cache_hit",
        shape,
        threads: 1,
        secs: hit,
        rate: mpix / hit,
        rate_unit: "mpix_per_s",
        speedup_vs_baseline: baseline / hit,
    });

    if !smoke && src >= 2 * side {
        let speedup = baseline / fast;
        assert!(
            speedup >= 2.0,
            "fast path must be >=2x at {src}px->{side}: got {speedup:.2}x"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_preproc.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (sources, side, reps) = if smoke {
        (vec![128usize, 256], 64usize, 1usize)
    } else {
        (vec![448usize, 896, 1792], 224usize, 3usize)
    };

    let mut records = Vec::new();
    for src in sources {
        bench_source(&mut records, src, side, reps, smoke);
    }

    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:<10} {:<12} {:<14} {:>7} {:>12} {:>14} {:>9}",
        "bench", "variant", "shape", "threads", "secs", "rate", "speedup"
    );
    for r in &records {
        let _ = writeln!(
            table,
            "{:<10} {:<12} {:<14} {:>7} {:>12.6} {:>9.3} {:>4} {:>9.2}x",
            r.bench,
            r.variant,
            r.shape,
            r.threads,
            r.secs,
            r.rate,
            r.rate_unit,
            r.speedup_vs_baseline
        );
    }
    print!("{table}");
    println!("host_cores={host_cores} smoke={smoke}");

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open bench output");
    for r in &records {
        writeln!(file, "{}", r.json(host_cores, smoke)).expect("write bench output");
    }
    println!("appended {} records to {out_path}", records.len());
}
