//! Regenerates the paper's Fig 9; see `vserve_bench::figs`.
fn main() {
    println!(
        "{}",
        vserve_bench::figs::fig9_report(vserve_bench::figs::Windows::default())
    );
}
