//! Regenerates the paper's Fig 7; see `vserve_bench::figs`.
fn main() {
    println!(
        "{}",
        vserve_bench::figs::fig7_report(vserve_bench::figs::Windows::default())
    );
}
