//! Regenerates the paper's Fig 4; see `vserve_bench::figs`.
fn main() {
    println!(
        "{}",
        vserve_bench::figs::fig4_report(vserve_bench::figs::Windows::default())
    );
}
