//! Regenerates the paper's Fig 6; see `vserve_bench::figs`.
fn main() {
    println!(
        "{}",
        vserve_bench::figs::fig6_report(vserve_bench::figs::Windows::default())
    );
}
