//! Regenerates the paper's Fig 5; see `vserve_bench::figs`.
fn main() {
    println!(
        "{}",
        vserve_bench::figs::fig5_report(vserve_bench::figs::Windows::default())
    );
}
