//! Self-tuning controller benchmark: step-load tracking vs static grids.
//!
//! The paper's configuration story (batch size, batch linger, worker
//! split) assumes someone grid-sweeps offline and deploys the winner.
//! This harness measures what the online controller (`vserve-tune`)
//! recovers of that winner *without* the sweep, under offered load that
//! steps up / down / up across image-size mixes:
//!
//! * `static` — the live server frozen at each {max_batch × linger} grid
//!   point, driven through the full plateau schedule; the per-plateau
//!   best and worst of the grid bracket what configuration is worth,
//! * `tuned` — the same server started from a deliberately mediocre
//!   configuration with a [`Tuner`] attached, run once through the same
//!   schedule; per-plateau first-half vs second-half means show
//!   convergence after each load step,
//! * `sim` — the same comparison inside the calibrated simulator
//!   (`replay_experiment` vs static `run_open` grid points), the
//!   deterministic mirror of the live curve.
//!
//! Offered load is paced open-loop against the measured closed-loop
//! capacity of this host, so plateaus mean the same thing on any machine.
//! Results are printed as a table and appended as JSON lines to
//! `BENCH_tune.json` (override with `--out PATH`). `--smoke` shrinks the
//! schedule to a CI-sized convergence check. In full mode the run asserts
//! the acceptance bars: tuned mean latency within 15 % of the best static
//! grid point at every plateau, strictly better than the worst, and
//! bounded convergence after each step.
//!
//! The live section interleaves every variant within each plateau so they
//! share host conditions, and is retried on fresh servers (up to 3
//! attempts) when a sustained host-stall period lands on an attempt —
//! the same fresh-attempt policy the tracing-overhead test uses on shared
//! 1-core containers. Every attempt's records land in the JSON, tagged
//! `attempt`; the sim mirror is deterministic and never retried.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use vserve_device::{ImageSpec, NodeConfig};
use vserve_dnn::{models, Model};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_server::{Experiment, ModelProfile, ServerConfig, ServerReport};
use vserve_tune::{replay_experiment, TuneOptions, Tuner};
use vserve_workload::{synthetic_jpeg, Arrivals, ImageMix};

// Heavy enough (~1.1 ms inference on the reference container) that service
// time dominates the controller's linger floor and probe excursions —
// otherwise the degenerate no-batching static config wins on pure queueing
// mechanics and the comparison says nothing about configuration.
const MODEL_SIDE: usize = 160;

/// One plateau of one variant, serialized as a JSON line.
struct Record {
    section: &'static str,
    variant: String,
    plateau: usize,
    mix: &'static str,
    /// Offered rate, images/s.
    rate: f64,
    mean_latency_s: f64,
    p99_latency_s: f64,
    /// Completed images per second of plateau wall time.
    throughput: f64,
    completed: usize,
    shed: usize,
    /// Mean latency over the first / second half of the plateau
    /// (controller runs only; 0 for statics) — the convergence curve.
    first_half_mean_s: f64,
    second_half_mean_s: f64,
    /// Controller reconfigurations applied during this plateau.
    decisions: u64,
    /// Effective knobs at plateau end, `mb=..,lg_us=..,pw=..`.
    knobs: String,
    /// Live-section attempt this record belongs to (0 for sim records);
    /// the last attempt present is the one the acceptance verdict used.
    attempt: usize,
}

impl Record {
    fn json(&self, host_cores: usize, smoke: bool) -> String {
        format!(
            "{{\"bench\":\"tune\",\"section\":\"{}\",\"variant\":\"{}\",\"plateau\":{},\
             \"mix\":\"{}\",\"offered_per_s\":{:.1},\"mean_latency_s\":{:.6},\
             \"p99_latency_s\":{:.6},\"img_per_s\":{:.1},\"completed\":{},\"shed\":{},\
             \"first_half_mean_s\":{:.6},\"second_half_mean_s\":{:.6},\"decisions\":{},\
             \"knobs\":\"{}\",\"attempt\":{},\"host_cores\":{},\"smoke\":{}}}",
            self.section,
            self.variant,
            self.plateau,
            self.mix,
            self.rate,
            self.mean_latency_s,
            self.p99_latency_s,
            self.throughput,
            self.completed,
            self.shed,
            self.first_half_mean_s,
            self.second_half_mean_s,
            self.decisions,
            self.knobs,
            self.attempt,
            host_cores,
            smoke
        )
    }
}

fn tiny_model() -> Model {
    Model::from_graph(models::micro_cnn(MODEL_SIDE, 10).expect("micro_cnn"), 7)
}

fn live_opts(max_batch: usize, linger: Duration) -> LiveOptions {
    LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch,
        max_queue_delay: linger,
        input_side: MODEL_SIDE,
        queue_cap: 512,
        backend_threads: 1,
        ..LiveOptions::default()
    }
}

/// An offered-load plateau: rate as a fraction of measured capacity, and
/// the payload mix in flight (sizes are compressed-source sides).
struct Plateau {
    rate_frac: f64,
    mix: &'static str,
    sides: &'static [usize],
}

/// The step-load schedule: up, down, up — with the image mix shifting
/// under the controller at the same time.
const PLATEAUS: &[Plateau] = &[
    Plateau {
        rate_frac: 0.35,
        mix: "small",
        sides: &[224],
    },
    Plateau {
        rate_frac: 0.65,
        mix: "mixed",
        sides: &[224, 320],
    },
    Plateau {
        rate_frac: 0.25,
        mix: "large",
        sides: &[384, 448],
    },
    Plateau {
        rate_frac: 0.60,
        mix: "small",
        sides: &[224],
    },
];

fn payloads(sides: &[usize], per_side: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for &side in sides {
        for seed in 0..per_side as u64 {
            out.push(synthetic_jpeg(&ImageSpec::new(side, side, 0), seed));
        }
    }
    out
}

/// Closed-loop capacity estimate (images/s) for the pacing baseline.
fn calibrate_capacity(smoke: bool) -> f64 {
    let server = LiveServer::start(tiny_model(), live_opts(8, Duration::from_millis(1)));
    let jpegs = payloads(&[224], 4);
    let reqs = if smoke { 40 } else { 160 };
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..2 {
            let (server, jpegs) = (&server, &jpegs);
            s.spawn(move || {
                for i in 0..reqs {
                    let _ = server.infer(jpegs[(c + i) % jpegs.len()].clone());
                }
            });
        }
    });
    (2 * reqs) as f64 / t0.elapsed().as_secs_f64()
}

struct PlateauResult {
    mean: f64,
    p99: f64,
    throughput: f64,
    completed: usize,
    shed: usize,
    first_half_mean: f64,
    second_half_mean: f64,
}

/// Raw results of one paced slice; a variant's plateau is the
/// round-order concatenation of its slices.
struct SliceStats {
    lats: Vec<f64>,
    shed: usize,
    wall_s: f64,
}

/// Paces `rate` submissions/s at the server for `dur`, open loop, then
/// drains. Latencies are the server-measured round trips, so drain order
/// does not distort them.
fn run_slice_paced(server: &LiveServer, rate: f64, dur: Duration, jpegs: &[Vec<u8>]) -> SliceStats {
    let total = (rate * dur.as_secs_f64()).max(1.0) as usize;
    let t0 = Instant::now();
    let mut rxs = Vec::with_capacity(total);
    for i in 0..total {
        let target = Duration::from_secs_f64(i as f64 / rate);
        let elapsed = t0.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
        }
        rxs.push(server.submit(jpegs[i % jpegs.len()].clone()));
    }
    let mut lats = Vec::with_capacity(total);
    let mut shed = 0usize;
    for rx in rxs {
        match rx.recv() {
            Ok(Ok(r)) => lats.push(r.total.as_secs_f64()),
            _ => shed += 1,
        }
    }
    SliceStats {
        lats,
        shed,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Aggregates a variant's slices (in round order) into the plateau view.
/// Halves split at the slice midpoint so the second half is the later
/// wall-clock rounds — the controller's tracked steady state.
fn summarize(rounds: &[SliceStats]) -> PlateauResult {
    let mean_of = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let lats: Vec<f64> = rounds.iter().flat_map(|s| s.lats.iter().copied()).collect();
    let shed = rounds.iter().map(|s| s.shed).sum();
    let wall: f64 = rounds.iter().map(|s| s.wall_s).sum();
    let mut sorted = lats.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p99 = sorted
        .get(((sorted.len() as f64) * 0.99) as usize)
        .or(sorted.last())
        .copied()
        .unwrap_or(0.0);
    let (first, second) = lats.split_at(lats.len() / 2);
    PlateauResult {
        mean: mean_of(&lats),
        p99,
        throughput: lats.len() as f64 / wall.max(1e-9),
        completed: lats.len(),
        shed,
        first_half_mean: mean_of(first),
        second_half_mean: mean_of(second),
    }
}

fn knob_string(server: &LiveServer) -> String {
    let k = server.knobs();
    format!(
        "mb={},lg_us={},pw={}",
        k.max_batch,
        k.linger.as_micros(),
        k.preproc_workers
    )
}

/// Prints and records one static variant's aggregated plateau.
fn record_static(
    records: &mut Vec<Record>,
    server: &LiveServer,
    variant: &str,
    p: usize,
    plat: &Plateau,
    rate: f64,
    r: PlateauResult,
    attempt: usize,
) -> PlateauResult {
    println!(
        "  {variant:<22} plateau {p} ({:<5} @ {:>6.1}/s): mean {:>7.2} ms p99 {:>7.2} ms \
         done {:>5} shed {:>4}",
        plat.mix,
        rate,
        r.mean * 1e3,
        r.p99 * 1e3,
        r.completed,
        r.shed,
    );
    records.push(Record {
        section: "live",
        variant: variant.to_string(),
        plateau: p,
        mix: plat.mix,
        rate,
        mean_latency_s: r.mean,
        p99_latency_s: r.p99,
        throughput: r.throughput,
        completed: r.completed,
        shed: r.shed,
        first_half_mean_s: 0.0,
        second_half_mean_s: 0.0,
        decisions: 0,
        knobs: knob_string(server),
        attempt,
    });
    r
}

fn sim_record(
    records: &mut Vec<Record>,
    variant: &str,
    plateau: usize,
    rate: f64,
    r: &ServerReport,
) {
    records.push(Record {
        section: "sim",
        variant: variant.to_string(),
        plateau,
        mix: "medium",
        rate,
        mean_latency_s: r.latency.mean,
        p99_latency_s: r.latency.p99,
        throughput: r.throughput,
        completed: r.completed as usize,
        shed: 0,
        first_half_mean_s: 0.0,
        second_half_mean_s: 0.0,
        decisions: 0,
        knobs: String::new(),
        attempt: 0,
    });
}

/// The sim mirror: static grid vs hill-climber replay at each plateau
/// rate, deterministic on any host.
fn sim_section(records: &mut Vec<Record>, smoke: bool) -> Vec<(f64, f64, f64)> {
    println!("\n--- sim replay (optimized_cpu_preproc, 2 workers) ---");
    let mut config = ServerConfig::optimized_cpu_preproc();
    config.preproc_workers = 2;
    let exp = |cfg: ServerConfig| Experiment {
        node: NodeConfig::paper_testbed(),
        config: cfg,
        model: ModelProfile::vit_base(),
        mix: ImageMix::fixed(ImageSpec::medium()),
        concurrency: 1,
        warmup_s: if smoke { 0.2 } else { 0.5 },
        measure_s: if smoke { 0.8 } else { 3.0 },
        seed: 23,
    };
    // Capacity of the well-batched static config, for plateau scaling.
    let cap = exp(config.clone()).run().throughput;
    let rates = [0.45 * cap, 0.95 * cap, 0.45 * cap];
    let grid: &[(usize, f64)] = if smoke {
        &[(8, 0.5e-3), (64, 5e-3)]
    } else {
        &[(4, 0.2e-3), (8, 0.5e-3), (32, 2e-3), (64, 5e-3)]
    };
    let mut outcome = Vec::new();
    for (p, &rate) in rates.iter().enumerate() {
        let mut best = f64::INFINITY;
        let mut worst: f64 = 0.0;
        for &(mb, lg) in grid {
            let mut cfg = config.clone();
            cfg.max_batch = mb;
            cfg.max_queue_delay_s = lg;
            let r = exp(cfg).run_open(Arrivals::poisson(rate));
            best = best.min(r.latency.mean);
            worst = worst.max(r.latency.mean);
            sim_record(
                records,
                &format!("static mb={mb},lg_us={}", (lg * 1e6) as u64),
                p,
                rate,
                &r,
            );
        }
        // The replay starts from the grid's worst corner on purpose. It
        // gets a longer sim warmup so the measured window is the
        // controller's steady state, symmetric with the live section.
        let mut cfg = config.clone();
        cfg.max_batch = 64;
        cfg.max_queue_delay_s = 5e-3;
        let opts = TuneOptions {
            interval: Duration::from_millis(50),
            warmup_ticks: 1,
            ..TuneOptions::default()
        };
        let mut tuned_exp = exp(cfg);
        tuned_exp.warmup_s = if smoke { 1.0 } else { 4.0 };
        let tuned = replay_experiment(&tuned_exp, Arrivals::poisson(rate), opts);
        sim_record(records, "tuned", p, rate, &tuned);
        println!(
            "  plateau {p} @ {rate:>7.1}/s: static best {:>7.2} ms worst {:>7.2} ms | tuned {:>7.2} ms",
            best * 1e3,
            worst * 1e3,
            tuned.latency.mean * 1e3
        );
        outcome.push((best, worst, tuned.latency.mean));
    }
    outcome
}

struct LiveOutcome {
    best: Vec<f64>,
    worst: Vec<f64>,
    tuned: Vec<PlateauResult>,
    decisions: u64,
}

/// One full pass of the interleaved live schedule on fresh servers.
///
/// Every plateau runs all static grid points and then the tuned server
/// back-to-back, so all variants of a plateau share the same few-minute
/// window of host conditions. Run-to-run drift on a shared box is tens
/// of percent across minutes — comparing a static swept at t+0 against a
/// controller measured at t+200 s would measure the neighbors, not the
/// configuration.
fn live_section(
    records: &mut Vec<Record>,
    capacity: f64,
    smoke: bool,
    per_side: usize,
    plateau_dur: Duration,
    grid: &[(usize, u64)],
    attempt: usize,
) -> LiveOutcome {
    println!("\n--- live: interleaved static grid + tuned (attempt {attempt}) ---");
    let statics: Vec<(String, LiveServer)> = grid
        .iter()
        .map(|&(mb, lg_us)| {
            (
                format!("static mb={mb},lg_us={lg_us}"),
                LiveServer::start(tiny_model(), live_opts(mb, Duration::from_micros(lg_us))),
            )
        })
        .collect();
    // The tuned server starts at the grid's pathological corner: deep
    // batches, long linger.
    let server = std::sync::Arc::new(LiveServer::start(
        tiny_model(),
        live_opts(32, Duration::from_millis(8)),
    ));
    // A much wider hysteresis band than the default: this knob space has
    // huge gradients (the pathological corner is ~7× off the optimum), so
    // demanding a 10% win per accepted move costs the descent nothing —
    // while at the optimum it silences the spurious accepts that a
    // few-percent-noisy window would otherwise trigger, each of which
    // walks a knob off the floor and resets the settle backoff.
    let tune_opts = TuneOptions {
        interval: if smoke {
            Duration::from_millis(60)
        } else {
            Duration::from_millis(150)
        },
        hysteresis: 0.10,
        settle_ticks: 8,
        ..TuneOptions::default()
    };
    let tuner = Tuner::start(server.clone(), tune_opts);
    let decisions = tuner.decisions();
    // Warmup at the first plateau's rate, unrecorded: the statics are
    // measured in steady state by construction (their knobs never move),
    // so the controller gets the same footing before plateau 0. The
    // transients after every load *step* are still fully recorded — the
    // first/second-half means are the convergence evidence.
    let warmup_jpegs = payloads(PLATEAUS[0].sides, per_side);
    // Escaping the pathological corner needs ~60 accepted/drifted windows
    // (13 multiplicative linger steps + ~12 batch-cap steps at two windows
    // per kept move, plus round-robin probes on the other axes), so the
    // warmup must cover comfortably more control windows than that.
    let warmup_dur = if smoke {
        Duration::from_millis(1500)
    } else {
        Duration::from_secs(18)
    };
    let w = summarize(&[run_slice_paced(
        &server,
        capacity * PLATEAUS[0].rate_frac,
        warmup_dur,
        &warmup_jpegs,
    )]);
    println!(
        "  warmup: mean {:.2} ms -> {:.2} ms over {:?}, {} decisions [{}]",
        w.first_half_mean * 1e3,
        w.second_half_mean * 1e3,
        warmup_dur,
        decisions.load(Ordering::Relaxed),
        knob_string(&server)
    );
    let mut best = vec![f64::INFINITY; PLATEAUS.len()];
    let mut worst = vec![0.0f64; PLATEAUS.len()];
    let mut tuned = Vec::new();
    let mut last_decisions = decisions.load(Ordering::Relaxed);
    // Each plateau is sliced into short rounds that round-robin every
    // variant, so no variant systematically samples a later wall-clock
    // window than another — host conditions drift within a plateau, and
    // whichever variant always ran last would measure the drift, not its
    // configuration.
    let rounds: u32 = if smoke { 1 } else { 4 };
    let round_dur = plateau_dur / rounds;
    for (p, plat) in PLATEAUS.iter().enumerate() {
        let jpegs = payloads(plat.sides, per_side);
        let rate = capacity * plat.rate_frac;
        let mut acc: Vec<Vec<SliceStats>> = (0..=statics.len()).map(|_| Vec::new()).collect();
        for _ in 0..rounds {
            for (vi, (_, srv)) in statics.iter().enumerate() {
                acc[vi].push(run_slice_paced(srv, rate, round_dur, &jpegs));
            }
            acc[statics.len()].push(run_slice_paced(&server, rate, round_dur, &jpegs));
        }
        for (vi, (name, srv)) in statics.iter().enumerate() {
            let r = record_static(
                records,
                srv,
                name,
                p,
                plat,
                rate,
                summarize(&acc[vi]),
                attempt,
            );
            best[p] = best[p].min(r.mean);
            worst[p] = worst[p].max(r.mean);
        }
        // Tuned: attribute the decisions the controller made while this
        // plateau's traffic was live.
        let r = summarize(&acc[statics.len()]);
        let now = decisions.load(Ordering::Relaxed);
        let delta = now - last_decisions;
        last_decisions = now;
        println!(
            "  {:<22} plateau {p} ({:<5} @ {:>6.1}/s): mean {:>7.2} ms p99 {:>7.2} ms \
             done {:>5} shed {:>4}  halves {:>6.2}→{:>6.2} ms decisions {} [{}]",
            "tuned",
            plat.mix,
            rate,
            r.mean * 1e3,
            r.p99 * 1e3,
            r.completed,
            r.shed,
            r.first_half_mean * 1e3,
            r.second_half_mean * 1e3,
            delta,
            knob_string(&server)
        );
        records.push(Record {
            section: "live",
            variant: "tuned".to_string(),
            plateau: p,
            mix: plat.mix,
            rate,
            mean_latency_s: r.mean,
            p99_latency_s: r.p99,
            throughput: r.throughput,
            completed: r.completed,
            shed: r.shed,
            first_half_mean_s: r.first_half_mean,
            second_half_mean_s: r.second_half_mean,
            decisions: delta,
            knobs: knob_string(&server),
            attempt,
        });
        tuned.push(r);
    }
    let total = decisions.load(Ordering::Relaxed);
    drop(tuner);
    LiveOutcome {
        best,
        worst,
        tuned,
        decisions: total,
    }
}

/// The live acceptance bars, evaluated without panicking so a host-stall
/// attempt can be retried. Bars use the tuned run's *second-half* mean —
/// the controller-tracked steady state after it has converged inside the
/// plateau — against the statics' full-plateau means.
fn live_verdict(o: &LiveOutcome) -> Result<(), String> {
    for (p, r) in o.tuned.iter().enumerate() {
        let steady = r.second_half_mean;
        println!(
            "live plateau {p}: tuned {:.2} ms (halves {:.2} -> {:.2}) vs static \
             [best {:.2}, worst {:.2}] ms",
            r.mean * 1e3,
            r.first_half_mean * 1e3,
            steady * 1e3,
            o.best[p] * 1e3,
            o.worst[p] * 1e3
        );
        if steady > o.best[p] * 1.15 {
            return Err(format!(
                "live plateau {p}: tuned steady {steady} not within 15% of best static {}",
                o.best[p]
            ));
        }
        if steady >= o.worst[p] {
            return Err(format!(
                "live plateau {p}: tuned steady {steady} not better than worst static {}",
                o.worst[p]
            ));
        }
        // Bounded convergence: within one plateau the second half must
        // not be worse than the first — the controller either improved
        // after the load step or held a converged configuration.
        if steady > r.first_half_mean * 1.10 {
            return Err(format!(
                "live plateau {p}: second half {steady} regressed past first half {}",
                r.first_half_mean
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_tune.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let plateau_dur = if smoke {
        Duration::from_millis(1500)
    } else {
        Duration::from_secs(8)
    };
    let per_side = if smoke { 2 } else { 4 };
    // The static grid the controller competes against: linger from
    // near-zero to far past any sane value, batch cap from serial to
    // deep — the corners are intentionally bad somewhere in the schedule.
    let grid: &[(usize, u64)] = if smoke {
        &[(2, 200), (16, 2_000)]
    } else {
        &[(1, 100), (4, 500), (16, 2_000), (32, 8_000)]
    };

    let capacity = calibrate_capacity(smoke);
    println!("calibrated closed-loop capacity: {capacity:.1} img/s (host_cores={host_cores})");

    let mut records = Vec::new();

    let max_attempts = if smoke { 1 } else { 3 };
    let mut total_decisions = 0u64;
    let mut live_pass: Result<(), String> = Err("live section never ran".into());
    for attempt in 0..max_attempts {
        let o = live_section(
            &mut records,
            capacity,
            smoke,
            per_side,
            plateau_dur,
            grid,
            attempt,
        );
        total_decisions += o.decisions;
        if smoke {
            live_pass = Ok(());
            break;
        }
        live_pass = live_verdict(&o);
        match &live_pass {
            Ok(()) => break,
            Err(e) if attempt + 1 < max_attempts => {
                println!("live attempt {attempt} missed acceptance ({e}); fresh servers, retrying")
            }
            Err(e) => println!("live attempt {attempt} missed acceptance ({e}); out of attempts"),
        }
    }

    let sim_outcome = sim_section(&mut records, smoke);

    let mut table = String::new();
    let _ = writeln!(
        table,
        "\n{:<7} {:<22} {:>3} {:<6} {:>9} {:>11} {:>11} {:>9} {:>9} {:>5} {:>9}",
        "section",
        "variant",
        "p",
        "mix",
        "offered/s",
        "mean_lat_ms",
        "p99_lat_ms",
        "img/s",
        "completed",
        "shed",
        "decisions"
    );
    for r in &records {
        let _ = writeln!(
            table,
            "{:<7} {:<22} {:>3} {:<6} {:>9.1} {:>11.2} {:>11.2} {:>9.1} {:>9} {:>5} {:>9}",
            r.section,
            r.variant,
            r.plateau,
            r.mix,
            r.rate,
            r.mean_latency_s * 1e3,
            r.p99_latency_s * 1e3,
            r.throughput,
            r.completed,
            r.shed,
            r.decisions
        );
    }
    print!("{table}");

    // The artifact is written before the acceptance bars run, so a failed
    // run still leaves its records for diagnosis.
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open bench output");
    for r in &records {
        writeln!(file, "{}", r.json(host_cores, smoke)).expect("write bench output");
    }
    println!("appended {} records to {out_path}", records.len());

    // Acceptance bars. The sim is deterministic; the live verdict was
    // evaluated per attempt above. Smoke mode keeps only the convergence
    // pulse-check (the CI-sized run is far too short for the comparison
    // bars to be meaningful).
    assert!(
        total_decisions > 0,
        "controller never reconfigured anything"
    );
    if !smoke {
        for (p, (b, w, t)) in sim_outcome.iter().enumerate() {
            assert!(
                *t <= b * 1.15,
                "sim plateau {p}: tuned {t} not within 15% of best static {b}"
            );
            assert!(
                *t < *w,
                "sim plateau {p}: tuned {t} not better than worst static {w}"
            );
        }
        if let Err(e) = live_pass {
            panic!("live acceptance failed after {max_attempts} attempts: {e}");
        }
        println!(
            "acceptance: tuned steady state within 15% of best static and better than \
             worst at every plateau, convergence bounded"
        );
    } else {
        println!("acceptance (smoke): controller applied {total_decisions} reconfigurations");
    }
}
