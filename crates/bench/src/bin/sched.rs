//! Multi-tenant scheduling benchmark: SLO isolation under best-effort
//! flood, DRR fairness, and the deterministic sim mirror.
//!
//! Three sections:
//!
//! * `live` — one latency-critical (LC) tenant paced at a fixed fraction
//!   of the host's measured capacity while a best-effort (BE) tenant
//!   floods at ≥2× the LC rate. Three variants share the schedule:
//!   `solo` (LC alone, the isolation baseline), `single-lane` (both
//!   workloads through one unbounded FIFO lane — the pre-scheduler
//!   server), and `multi-lane` (per-tenant lanes, LC at high priority,
//!   BE at low). The acceptance bar is the tentpole claim: the LC p99
//!   under flood stays within 2× of its solo p99 once lanes isolate it.
//! * `drr` — the weighted-fair picker driven directly over always-ready
//!   lanes for a deterministic share sweep (1:1, 2:1, 4:1, and a 3-lane
//!   mix); dispatched-cost shares must land within 10 % of the weight
//!   ratios.
//! * `sim` — the two-lane discrete-event mirror replayed twice: per-lane
//!   rows must be bit-identical across replays, and co-locating the BE
//!   lane must inflate LC queueing versus the solo sim.
//!
//! Results are printed as a table and appended as JSON lines to
//! `BENCH_sched.json` (override with `--out PATH`). `--smoke` shrinks the
//! live schedule to a CI pulse-check and skips the live timing bars; the
//! `drr` and `sim` sections are deterministic and always enforced. The
//! live section is retried on fresh servers (up to 3 attempts) when a
//! host stall lands on an attempt, the same policy the tune bench uses on
//! shared 1-core containers.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use vserve_device::{ImageSpec, NodeConfig};
use vserve_dnn::{models, Model};
use vserve_sched::{DrrPicker, LaneView, Priority, TenantSpec};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_server::{Experiment, ModelProfile, ServerConfig};
use vserve_workload::{synthetic_jpeg, ImageMix};

/// Heavy enough (~1 ms inference on the reference container) that batch
/// scheduling, not per-request constant overhead, dominates the contrast.
const MODEL_SIDE: usize = 160;

struct Record {
    section: &'static str,
    variant: String,
    /// Offered LC rate (live) or replay index (sim), as labeled.
    rate: f64,
    lc_p99_s: f64,
    lc_mean_s: f64,
    lc_completed: usize,
    lc_shed: usize,
    be_completed: usize,
    be_shed: usize,
    /// DRR section only: measured vs expected share of lane 0.
    share_measured: f64,
    share_expected: f64,
    attempt: usize,
}

impl Record {
    fn json(&self, host_cores: usize, smoke: bool) -> String {
        format!(
            "{{\"bench\":\"sched\",\"section\":\"{}\",\"variant\":\"{}\",\
             \"offered_per_s\":{:.1},\"lc_p99_s\":{:.6},\"lc_mean_s\":{:.6},\
             \"lc_completed\":{},\"lc_shed\":{},\"be_completed\":{},\"be_shed\":{},\
             \"share_measured\":{:.4},\"share_expected\":{:.4},\"attempt\":{},\
             \"host_cores\":{},\"smoke\":{}}}",
            self.section,
            self.variant,
            self.rate,
            self.lc_p99_s,
            self.lc_mean_s,
            self.lc_completed,
            self.lc_shed,
            self.be_completed,
            self.be_shed,
            self.share_measured,
            self.share_expected,
            self.attempt,
            host_cores,
            smoke
        )
    }
}

fn tiny_model() -> Model {
    Model::from_graph(models::micro_cnn(MODEL_SIDE, 10).expect("micro_cnn"), 7)
}

fn live_opts(tenants: Vec<TenantSpec>) -> LiveOptions {
    LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch: 8,
        max_queue_delay: Duration::from_millis(1),
        input_side: MODEL_SIDE,
        queue_cap: 256,
        backend_threads: 1,
        tenants,
        ..LiveOptions::default()
    }
}

/// Closed-loop capacity estimate (images/s) for the pacing baseline.
fn calibrate_capacity(jpegs: &[Vec<u8>], smoke: bool) -> f64 {
    let server = LiveServer::start(tiny_model(), live_opts(Vec::new()));
    let reqs = if smoke { 40 } else { 160 };
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..2 {
            let server = &server;
            s.spawn(move || {
                for i in 0..reqs {
                    let _ = server.infer(jpegs[(c + i) % jpegs.len()].clone());
                }
            });
        }
    });
    (2 * reqs) as f64 / t0.elapsed().as_secs_f64()
}

struct SideStats {
    lats: Vec<f64>,
    shed: usize,
}

/// Paces `rate` submissions/s into `lane` for `dur`, open loop, then
/// drains. Latencies are server-measured round trips.
fn pace_lane(server: &LiveServer, lane: usize, rate: f64, dur: Duration) -> SideStats {
    let jpeg = synthetic_jpeg(&ImageSpec::new(224, 224, 0), lane as u64);
    let total = (rate * dur.as_secs_f64()).max(1.0) as usize;
    let t0 = Instant::now();
    let mut rxs = Vec::with_capacity(total);
    for i in 0..total {
        let target = Duration::from_secs_f64(i as f64 / rate);
        let elapsed = t0.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
        }
        rxs.push(server.submit_lane(lane, jpeg.clone()));
    }
    let mut lats = Vec::with_capacity(total);
    let mut shed = 0usize;
    for rx in rxs {
        match rx.recv() {
            Ok(Ok(r)) => lats.push(r.total.as_secs_f64()),
            _ => shed += 1,
        }
    }
    SideStats { lats, shed }
}

/// Warms every lane of a fresh server (cold caches and first-forward
/// costs land on the warmup, not a measured tail).
fn warm(server: &LiveServer, lanes: &[usize]) {
    let jpeg = synthetic_jpeg(&ImageSpec::new(224, 224, 0), 99);
    for _ in 0..4 {
        let rxs: Vec<_> = lanes
            .iter()
            .map(|&l| server.submit_lane(l, jpeg.clone()))
            .collect();
        for rx in rxs {
            let _ = rx.recv();
        }
    }
}

fn p99(lats: &[f64]) -> f64 {
    let mut sorted = lats.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted
        .get(((sorted.len() as f64) * 0.99) as usize)
        .or(sorted.last())
        .copied()
        .unwrap_or(0.0)
}

fn mean(lats: &[f64]) -> f64 {
    lats.iter().sum::<f64>() / lats.len().max(1) as f64
}

struct FloodOutcome {
    lc: SideStats,
    be: SideStats,
}

/// LC paced on this thread, BE flood paced on its own thread — the two
/// tenants offer load concurrently, as real co-located clients would.
fn run_flood(
    server: &LiveServer,
    lc_lane: usize,
    be_lane: usize,
    lc_rate: f64,
    be_rate: f64,
    dur: Duration,
) -> FloodOutcome {
    std::thread::scope(|s| {
        let be = s.spawn(move || pace_lane(server, be_lane, be_rate, dur));
        let lc = pace_lane(server, lc_lane, lc_rate, dur);
        FloodOutcome {
            lc,
            be: be.join().expect("be pacer"),
        }
    })
}

struct LiveOutcome {
    solo_p99: f64,
    single_p99: f64,
    multi_p99: f64,
}

/// One full pass of the live schedule on fresh servers.
fn live_section(
    records: &mut Vec<Record>,
    capacity: f64,
    dur: Duration,
    attempt: usize,
) -> LiveOutcome {
    println!(
        "\n--- live: solo vs single-lane vs multi-lane under BE flood (attempt {attempt}) ---"
    );
    let lc_rate = 0.20 * capacity;
    // The flood: 3× the LC rate (the bar requires ≥2×), pushing the
    // co-located total to ~80 % of closed-loop capacity.
    let be_rate = 3.0 * lc_rate;
    let mut push = |variant: &str, lc: &SideStats, be: &SideStats| {
        let r = Record {
            section: "live",
            variant: variant.to_string(),
            rate: lc_rate,
            lc_p99_s: p99(&lc.lats),
            lc_mean_s: mean(&lc.lats),
            lc_completed: lc.lats.len(),
            lc_shed: lc.shed,
            be_completed: be.lats.len(),
            be_shed: be.shed,
            share_measured: 0.0,
            share_expected: 0.0,
            attempt,
        };
        println!(
            "  {variant:<12} lc p99 {:>8.2} ms mean {:>8.2} ms done {:>5} shed {:>4} | \
             be done {:>5} shed {:>4}",
            r.lc_p99_s * 1e3,
            r.lc_mean_s * 1e3,
            r.lc_completed,
            r.lc_shed,
            r.be_completed,
            r.be_shed,
        );
        let out = r.lc_p99_s;
        records.push(r);
        out
    };

    // Solo: the LC tenant alone on a fresh single-lane server.
    let solo_srv = LiveServer::start(tiny_model(), live_opts(Vec::new()));
    warm(&solo_srv, &[0]);
    let solo = pace_lane(&solo_srv, 0, lc_rate, dur);
    let none = SideStats {
        lats: Vec::new(),
        shed: 0,
    };
    let solo_p99 = push("solo", &solo, &none);
    drop(solo_srv);

    // Single lane: both workloads share one unbounded FIFO — the BE flood
    // queues ahead of LC requests and drags its tail out.
    let single_srv = LiveServer::start(tiny_model(), live_opts(Vec::new()));
    warm(&single_srv, &[0]);
    let single = run_flood(&single_srv, 0, 0, lc_rate, be_rate, dur);
    let single_p99 = push("single-lane", &single.lc, &single.be);
    drop(single_srv);

    // Multi-lane: per-tenant lanes, LC strictly above BE.
    let multi_srv = LiveServer::start(
        tiny_model(),
        live_opts(vec![
            TenantSpec::new("lc", "default")
                .priority(Priority::High)
                .weight(4.0),
            TenantSpec::new("be", "default").priority(Priority::Low),
        ]),
    );
    let lc_lane = multi_srv.lane_of("lc").expect("lc lane");
    let be_lane = multi_srv.lane_of("be").expect("be lane");
    warm(&multi_srv, &[lc_lane, be_lane]);
    let multi = run_flood(&multi_srv, lc_lane, be_lane, lc_rate, be_rate, dur);
    let multi_p99 = push("multi-lane", &multi.lc, &multi.be);
    let lanes = multi_srv.metrics().lanes;
    println!(
        "  lanes: {} completed {} shed {} | {} completed {} shed {}",
        lanes[0].name,
        lanes[0].completed,
        lanes[0].shed,
        lanes[1].name,
        lanes[1].completed,
        lanes[1].shed
    );

    LiveOutcome {
        solo_p99,
        single_p99,
        multi_p99,
    }
}

/// Deterministic DRR share sweep: always-ready lanes dispatched until the
/// total cost passes a fixed budget; shares must track weights.
fn drr_section(records: &mut Vec<Record>) -> Vec<(String, f64, f64)> {
    println!("\n--- drr: weighted-fair share sweep (deterministic) ---");
    let cases: Vec<(String, Vec<f64>)> = vec![
        ("1:1".into(), vec![1.0, 1.0]),
        ("2:1".into(), vec![2.0, 1.0]),
        ("4:1".into(), vec![4.0, 1.0]),
        ("4:2:1".into(), vec![4.0, 2.0, 1.0]),
    ];
    let mut outcomes = Vec::new();
    for (name, weights) in cases {
        let views: Vec<LaneView> = weights
            .iter()
            .map(|&w| LaneView {
                priority: Priority::Normal,
                weight: w,
                cost: 8.0,
                ready: true,
            })
            .collect();
        let mut picker = DrrPicker::new(1.0);
        let mut dispatched = vec![0.0f64; views.len()];
        while dispatched.iter().sum::<f64>() < 20_000.0 {
            let lane = picker.pick(&views).expect("ready lane");
            dispatched[lane] += views[lane].cost;
        }
        let total: f64 = dispatched.iter().sum();
        let wsum: f64 = weights.iter().sum();
        let measured = dispatched[0] / total;
        let expected = weights[0] / wsum;
        println!(
            "  weights {name:<6} lane-0 share {measured:.4} (expected {expected:.4}), \
             dispatched {dispatched:?}"
        );
        records.push(Record {
            section: "drr",
            variant: name.clone(),
            rate: 0.0,
            lc_p99_s: 0.0,
            lc_mean_s: 0.0,
            lc_completed: dispatched[0] as usize,
            lc_shed: 0,
            be_completed: (total - dispatched[0]) as usize,
            be_shed: 0,
            share_measured: measured,
            share_expected: expected,
            attempt: 0,
        });
        outcomes.push((name, measured, expected));
    }
    outcomes
}

struct SimOutcome {
    deterministic: bool,
    lc_queue_solo: f64,
    lc_queue_coloc: f64,
}

/// The sim mirror: two-lane replay determinism plus the interference
/// signal (co-located BE inflates LC queueing vs solo).
fn sim_section(records: &mut Vec<Record>, smoke: bool) -> SimOutcome {
    println!("\n--- sim: two-lane replay (deterministic) ---");
    let exp = |tenants: Vec<TenantSpec>, concurrency: usize| Experiment {
        node: NodeConfig::paper_testbed(),
        config: ServerConfig {
            tenants,
            ..ServerConfig::optimized()
        },
        model: ModelProfile::vit_base(),
        mix: ImageMix::fixed(ImageSpec::small()),
        concurrency,
        warmup_s: if smoke { 0.2 } else { 0.5 },
        measure_s: if smoke { 0.5 } else { 2.0 },
        seed: 31,
    };
    let two_lanes = || {
        vec![
            TenantSpec::new("lc", "vit-base")
                .priority(Priority::High)
                .weight(4.0),
            TenantSpec::new("be", "vit-base").priority(Priority::Low),
        ]
    };
    let solo = exp(Vec::new(), 32).run();
    let a = exp(two_lanes(), 64).run();
    let b = exp(two_lanes(), 64).run();
    let deterministic = a.lanes == b.lanes && a.completed == b.completed;
    for (replay, r) in [(0usize, &a), (1, &b)] {
        for lane in &r.lanes {
            println!(
                "  replay {replay} lane {:<3} completed {:>6} queue {:>9.6} s latency {:>9.6} s",
                lane.name, lane.completed, lane.mean_queue_s, lane.mean_latency_s
            );
            records.push(Record {
                section: "sim",
                variant: format!("replay{replay}:{}", lane.name),
                rate: replay as f64,
                lc_p99_s: 0.0,
                lc_mean_s: lane.mean_latency_s,
                lc_completed: lane.completed as usize,
                lc_shed: 0,
                be_completed: 0,
                be_shed: 0,
                share_measured: lane.mean_queue_s,
                share_expected: 0.0,
                attempt: 0,
            });
        }
    }
    let lc_queue_solo = solo.queue_time();
    let lc_queue_coloc = a.lanes[0].mean_queue_s;
    println!(
        "  deterministic: {deterministic} | lc queue solo {:.6} s vs co-located {:.6} s",
        lc_queue_solo, lc_queue_coloc
    );
    SimOutcome {
        deterministic,
        lc_queue_solo,
        lc_queue_coloc,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sched.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let dur = if smoke {
        Duration::from_millis(1500)
    } else {
        Duration::from_secs(8)
    };
    let jpegs: Vec<Vec<u8>> = (0..4)
        .map(|seed| synthetic_jpeg(&ImageSpec::new(224, 224, 0), seed))
        .collect();
    let capacity = calibrate_capacity(&jpegs, smoke);
    println!("calibrated closed-loop capacity: {capacity:.1} img/s (host_cores={host_cores})");

    let mut records = Vec::new();

    // Live bar: multi-lane LC p99 within 2× solo despite the ≥2× flood.
    // Retried on fresh servers when a host stall lands on an attempt.
    let max_attempts = if smoke { 1 } else { 3 };
    let mut live_pass: Result<(), String> = Err("live section never ran".into());
    for attempt in 0..max_attempts {
        let o = live_section(&mut records, capacity, dur, attempt);
        if smoke {
            live_pass = Ok(());
            break;
        }
        live_pass = if o.multi_p99 <= 2.0 * o.solo_p99 {
            Ok(())
        } else {
            Err(format!(
                "multi-lane lc p99 {:.2} ms not within 2x solo {:.2} ms (single-lane {:.2} ms)",
                o.multi_p99 * 1e3,
                o.solo_p99 * 1e3,
                o.single_p99 * 1e3
            ))
        };
        match &live_pass {
            Ok(()) => break,
            Err(e) if attempt + 1 < max_attempts => {
                println!("live attempt {attempt} missed acceptance ({e}); fresh servers, retrying")
            }
            Err(e) => println!("live attempt {attempt} missed acceptance ({e}); out of attempts"),
        }
    }

    let drr_outcome = drr_section(&mut records);
    let sim_outcome = sim_section(&mut records, smoke);

    let mut table = String::new();
    let _ = writeln!(
        table,
        "\n{:<7} {:<16} {:>9} {:>11} {:>11} {:>9} {:>7} {:>9} {:>7} {:>8} {:>8}",
        "section",
        "variant",
        "offered/s",
        "lc_p99_ms",
        "lc_mean_ms",
        "lc_done",
        "lc_shed",
        "be_done",
        "be_shed",
        "share",
        "expected"
    );
    for r in &records {
        let _ = writeln!(
            table,
            "{:<7} {:<16} {:>9.1} {:>11.2} {:>11.2} {:>9} {:>7} {:>9} {:>7} {:>8.4} {:>8.4}",
            r.section,
            r.variant,
            r.rate,
            r.lc_p99_s * 1e3,
            r.lc_mean_s * 1e3,
            r.lc_completed,
            r.lc_shed,
            r.be_completed,
            r.be_shed,
            r.share_measured,
            r.share_expected
        );
    }
    print!("{table}");

    // The artifact is written before the acceptance bars run, so a failed
    // run still leaves its records for diagnosis.
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open bench output");
    for r in &records {
        writeln!(file, "{}", r.json(host_cores, smoke)).expect("write bench output");
    }
    println!("appended {} records to {out_path}", records.len());

    // Deterministic bars hold in every mode.
    for (name, measured, expected) in &drr_outcome {
        assert!(
            (measured - expected).abs() / expected <= 0.10,
            "drr {name}: lane-0 share {measured:.4} more than 10% off expected {expected:.4}"
        );
    }
    assert!(
        sim_outcome.deterministic,
        "sim two-lane replay diverged across identical runs"
    );
    if !smoke {
        assert!(
            sim_outcome.lc_queue_coloc > sim_outcome.lc_queue_solo,
            "sim co-located lc queue {:.6}s not above solo {:.6}s",
            sim_outcome.lc_queue_coloc,
            sim_outcome.lc_queue_solo
        );
        if let Err(e) = live_pass {
            panic!("live acceptance failed after {max_attempts} attempts: {e}");
        }
        println!(
            "acceptance: lc p99 within 2x solo under the flood, drr shares within 10%, \
             sim replay deterministic"
        );
    } else {
        println!("acceptance (smoke): drr shares within 10%, sim replay deterministic");
    }
}
