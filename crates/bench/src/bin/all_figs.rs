//! Regenerates every figure in one run (the EXPERIMENTS.md source).
fn main() {
    use vserve_bench::figs::{self, Windows};
    let w = Windows::default();
    for report in [
        figs::fig3_report(w),
        figs::fig4_report(w),
        figs::fig5_report(w),
        figs::fig6_report(w),
        figs::fig7_report(w),
        figs::fig8_report(w),
        figs::fig9_report(w),
        figs::fig11_report(w),
    ] {
        println!("{report}");
    }
}
