//! Tracing benchmark: recording overhead and a committed example trace.
//!
//! Two deliverables from one seeded run of the live server:
//!
//! * **Overhead** — pipelined live-server throughput with the span ring
//!   enabled vs `Tracer::disabled()` (the runtime no-op), interleaved
//!   best-of-N rounds, appended as JSON lines to `BENCH_trace.json`
//!   (override with `--out PATH`). The `noop_build` row is the
//!   `vserve-trace` `off` feature, which compiles every recording call to
//!   nothing — its overhead is 0% by construction and is recorded as such.
//! * **Example trace** — a chrome://tracing-loadable JSON timeline of a
//!   seeded traced run, validated with the crate's strict JSON parser
//!   before it is written to `TRACE_example.json` (override with
//!   `--trace-out PATH`), plus a printed reconciliation table showing the
//!   per-stage span sums against the server's bookkept `StageBreakdown`.
//!
//! `--smoke` shrinks request counts/rounds to CI-wiring size.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use vserve_device::ImageSpec;
use vserve_dnn::{models, Model};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_server::stages;
use vserve_trace::{chrome, Tracer};
use vserve_workload::synthetic_jpeg;

const SIDE: usize = 32;

/// One timed variant, serialized as a JSON line.
struct Record {
    bench: &'static str,
    variant: &'static str,
    shape: String,
    threads: usize,
    secs: f64,
    rate: f64,
    rate_unit: &'static str,
    overhead_pct: f64,
}

impl Record {
    fn json(&self, host_cores: usize, smoke: bool) -> String {
        format!(
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"shape\":\"{}\",\"threads\":{},\
             \"secs\":{:.6},\"{}\":{:.3},\"overhead_pct\":{:.3},\
             \"host_cores\":{},\"smoke\":{}}}",
            self.bench,
            self.variant,
            self.shape,
            self.threads,
            self.secs,
            self.rate_unit,
            self.rate,
            self.overhead_pct,
            host_cores,
            smoke
        )
    }
}

fn model() -> Model {
    Model::from_graph(models::micro_cnn(SIDE, 10).expect("graph"), 13)
}

fn live_opts(trace: Tracer) -> LiveOptions {
    LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch: 4,
        max_queue_delay: Duration::from_micros(500),
        input_side: SIDE,
        backend_threads: 1,
        preproc_cache_mb: Some(0),
        coalesce: false,
        trace,
        ..LiveOptions::default()
    }
}

/// Pipelined throughput (requests/s) of one fresh server over `payloads`.
fn throughput_run(trace: Tracer, payloads: &[Vec<u8>]) -> f64 {
    let server = LiveServer::start(model(), live_opts(trace));
    for p in payloads.iter().take(8) {
        server.infer(p.clone()).expect("warm-up");
    }
    let t0 = Instant::now();
    let pending: Vec<_> = payloads
        .iter()
        .map(|p| server.submit_with_deadline(p.clone(), None))
        .collect();
    for rx in pending {
        rx.recv().expect("reply").expect("infer");
    }
    payloads.len() as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_trace.json".to_string());
    let trace_out = arg_after("--trace-out").unwrap_or_else(|| "TRACE_example.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (n_requests, rounds) = if smoke { (40usize, 2usize) } else { (160, 5) };
    let (w, h) = (256usize, 192usize);
    let payloads: Vec<Vec<u8>> = (0..n_requests as u64)
        .map(|i| synthetic_jpeg(&ImageSpec::new(w, h, 0), i))
        .collect();
    let shape = format!("{w}x{h}x{n_requests}");

    // --- Overhead: interleaved best-of-`rounds` enabled vs disabled. ---
    let mut best_off: f64 = 0.0;
    let mut best_on: f64 = 0.0;
    for _ in 0..rounds {
        best_off = best_off.max(throughput_run(Tracer::disabled(), &payloads));
        best_on = best_on.max(throughput_run(Tracer::with_capacity(1 << 16), &payloads));
    }
    let overhead_pct = (1.0 - best_on / best_off) * 100.0;
    let records = vec![
        Record {
            bench: "trace",
            variant: "disabled",
            shape: shape.clone(),
            threads: 4,
            secs: n_requests as f64 / best_off,
            rate: best_off,
            rate_unit: "rps",
            overhead_pct: 0.0,
        },
        Record {
            bench: "trace",
            variant: "enabled",
            shape: shape.clone(),
            threads: 4,
            secs: n_requests as f64 / best_on,
            rate: best_on,
            rate_unit: "rps",
            overhead_pct,
        },
        // The `off` feature removes recording at compile time; by
        // construction it costs exactly what `disabled` costs minus the
        // (already unmeasurable) branch, so its overhead is definitionally
        // zero.
        Record {
            bench: "trace",
            variant: "noop_build",
            shape: shape.clone(),
            threads: 4,
            secs: n_requests as f64 / best_off,
            rate: best_off,
            rate_unit: "rps",
            overhead_pct: 0.0,
        },
    ];

    // --- Example trace: a small seeded traced run, exported + validated. ---
    let tracer = Tracer::with_capacity(1 << 16);
    let server = LiveServer::start(model(), live_opts(tracer.clone()));
    let trace_n = if smoke { 12u64 } else { 24 };
    for i in 0..trace_n {
        server
            .infer(synthetic_jpeg(&ImageSpec::new(400, 300, 0), 1000 + i))
            .expect("traced infer");
    }
    let metrics = server.metrics();
    drop(server); // join workers so the snapshot holds the complete run
    let snap = tracer.snapshot();
    let json = chrome::chrome_trace_json(&snap);
    chrome::validate_json(&json).expect("chrome trace must be valid JSON");
    std::fs::write(&trace_out, &json).expect("write example trace");

    // Reconciliation: span sums vs the server's own breakdown.
    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:<14} {:>12} {:>12} {:>10}",
        "stage", "span_sum_s", "breakdown_s", "delta"
    );
    for stage in [stages::QUEUE, stages::PREPROC, stages::INFERENCE] {
        let spans = snap.stage_total(stage);
        let book = metrics.breakdown.total(stage);
        assert!(
            (spans - book).abs() <= 1e-6 * book.max(1e-9) + 1e-9,
            "{stage}: span sum {spans} != breakdown {book}"
        );
        let _ = writeln!(
            table,
            "{:<14} {:>12.6} {:>12.6} {:>10.2e}",
            stage,
            spans,
            book,
            spans - book
        );
    }
    print!("{table}");
    println!(
        "trace: {} spans / {} threads, dropped={}, wrote {trace_out}",
        snap.spans.len(),
        snap.threads.len(),
        snap.dropped
    );

    println!(
        "throughput: disabled {best_off:.1} rps, enabled {best_on:.1} rps \
         (overhead {overhead_pct:.2}%)"
    );
    if !smoke {
        assert!(
            overhead_pct <= 3.0,
            "tracing overhead over budget: {overhead_pct:.2}%"
        );
    }

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open bench output");
    for r in &records {
        writeln!(file, "{}", r.json(host_cores, smoke)).expect("write bench output");
    }
    println!(
        "appended {} records to {out_path} (host_cores={host_cores} smoke={smoke})",
        records.len()
    );
}
