//! Regenerates the paper's Fig 8; see `vserve_bench::figs`.
fn main() {
    println!(
        "{}",
        vserve_bench::figs::fig8_report(vserve_bench::figs::Windows::default())
    );
}
