//! Regenerates the paper's Fig 11; see `vserve_bench::figs`.
fn main() {
    println!(
        "{}",
        vserve_bench::figs::fig11_report(vserve_bench::figs::Windows::default())
    );
}
