//! Regenerates the paper's Fig 3; see `vserve_bench::figs`.
fn main() {
    println!(
        "{}",
        vserve_bench::figs::fig3_report(vserve_bench::figs::Windows::default())
    );
}
