//! Network front-end benchmarks: loopback RPC vs in-process serving.
//!
//! The paper's end-to-end breakdown charges every request a client→server
//! data-transfer and a serialization leg. This harness measures those legs
//! on this machine by running the *same* model behind two front doors:
//!
//! * `inproc` — closed-loop clients calling `LiveServer::infer` directly
//!   (no wire, the baseline every other figure uses),
//! * `rpc` — the same closed-loop clients going through `vserve-net`'s
//!   framed TCP protocol over loopback (pooled, pipelining client),
//! * `rpc_open` — an open-loop Poisson load over the same socket pool at
//!   roughly half the measured closed-loop capacity, the paper's
//!   load-sweep methodology,
//! * `sim_tcp` — the simulator replaying the RPC path
//!   (`ServerConfig::with_rpc(RpcPath::Tcp)`) with `CpuModel` rpc knobs
//!   calibrated from the loopback measurement, printed paper-vs-measured.
//!
//! The payload sweep (224/448/896 px sources) shows the transfer leg
//! growing with compressed size while deserialize stays fixed — the same
//! shape as the paper's data-transfer vs serialization rows.
//!
//! Two architecture sweeps ride along:
//!
//! * `rpc` vs `rpc_threaded` — the evented (readiness-driven) front-end
//!   against the thread-per-connection baseline on the same payloads, so
//!   the single-connection latency cost of the event loop is a measured
//!   number, not a claim,
//! * `conn_sweep` — the evented server holding 1/64/1k/10k *idle*
//!   connections (capped by the fd soft limit) while a small active
//!   subset keeps inferring: per-connection memory and the p50 under
//!   flood are the capacity story,
//! * `sim_shards` — the simulator's router tier (`ServerConfig::shards`)
//!   at 10k closed-loop clients, showing front-end sharding scaling a
//!   CPU-preprocessing-bound deployment.
//!
//! Results are printed as a table and appended as JSON lines to
//! `BENCH_net.json` (override with `--out PATH`). `--smoke` shrinks
//! shapes and repetitions to a few hundred milliseconds for CI checks.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use vserve_device::{ImageSpec, NodeConfig};
use vserve_dnn::{models, Model};
use vserve_net::{ClientOptions, NetClient, NetError, NetOptions, NetServer};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_server::{Experiment, ModelProfile, RpcPath, ServerConfig};
use vserve_sim::rng::RngStream;
use vserve_workload::{synthetic_jpeg, Arrivals, ImageMix};

/// One measured variant at one payload size, serialized as a JSON line.
struct Record {
    bench: &'static str,
    variant: &'static str,
    shape: String,
    clients: usize,
    /// Mean request latency, seconds.
    mean_latency_s: f64,
    /// Median request latency, seconds (0 when not measured).
    p50_latency_s: f64,
    /// Completed images per second.
    rate: f64,
    /// Mean server-measured transfer + deserialize, seconds (0 for the
    /// in-process variant — the rows do not exist there).
    rpc_time_s: f64,
    /// RPC overhead share of mean latency (variant-specific; see table).
    rpc_share: f64,
    completed: usize,
    shed: usize,
    /// Idle connections held open during the measurement (conn sweep).
    idle_conns: usize,
    /// Resident-set growth attributable to the held connections, MiB
    /// (conn sweep; 0 elsewhere).
    rss_mb: f64,
}

impl Record {
    fn json(&self, host_cores: usize, smoke: bool) -> String {
        format!(
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"shape\":\"{}\",\"clients\":{},\
             \"mean_latency_s\":{:.6},\"p50_latency_s\":{:.6},\"img_per_s\":{:.1},\
             \"rpc_time_s\":{:.6},\"rpc_share\":{:.4},\"completed\":{},\"shed\":{},\
             \"idle_conns\":{},\"rss_mb\":{:.2},\"host_cores\":{},\"smoke\":{}}}",
            self.bench,
            self.variant,
            self.shape,
            self.clients,
            self.mean_latency_s,
            self.p50_latency_s,
            self.rate,
            self.rpc_time_s,
            self.rpc_share,
            self.completed,
            self.shed,
            self.idle_conns,
            self.rss_mb,
            host_cores,
            smoke
        )
    }
}

/// Benchmark scale knobs (shrunk by `--smoke`).
struct Scale {
    sources: Vec<usize>,
    model_side: usize,
    clients: usize,
    reqs_per_client: usize,
    /// Idle-connection levels for the connection-scaling sweep.
    idle_levels: Vec<usize>,
    /// Closed-loop clients for the sim shard sweep.
    sim_clients: usize,
}

fn tiny_model(side: usize) -> Model {
    Model::from_graph(models::micro_cnn(side, 10).expect("micro_cnn graph"), 7)
}

fn live_opts(side: usize) -> LiveOptions {
    LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch: 8,
        max_queue_delay: Duration::from_millis(1),
        input_side: side,
        backend_threads: 1,
        ..LiveOptions::default()
    }
}

/// Median of a sample set (by sorting; fine at bench sizes).
fn p50(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Mean + median latency and throughput of `clients` closed-loop threads
/// each doing `reqs` calls of `f` (one warmup call per thread first).
fn closed_loop<F>(clients: usize, reqs: usize, f: F) -> (f64, f64, f64, usize)
where
    F: Fn(usize) + Send + Sync,
{
    let f = &f;
    let t0 = Instant::now();
    let per_thread: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    f(c); // warmup: first call pays cold caches
                    let mut lats = Vec::with_capacity(reqs);
                    for _ in 0..reqs {
                        let t = Instant::now();
                        f(c);
                        lats.push(t.elapsed().as_secs_f64());
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let lats: Vec<f64> = per_thread.into_iter().flatten().collect();
    let n = lats.len();
    let mean = lats.iter().sum::<f64>() / n.max(1) as f64;
    (mean, p50(lats), n as f64 / wall, n)
}

fn bench_source(records: &mut Vec<Record>, src: usize, sc: &Scale, smoke: bool) -> (f64, f64) {
    let jpeg = synthetic_jpeg(&ImageSpec::new(src, src, 0), 17);
    let shape = format!("{src}px");
    println!(
        "--- payload {shape} ({:.1} kB compressed) ---",
        jpeg.len() as f64 / 1024.0
    );

    // In-process baseline: same model, same live options, no wire.
    let inproc_server = LiveServer::start(tiny_model(sc.model_side), live_opts(sc.model_side));
    let (inproc_mean, inproc_p50, inproc_rate, inproc_n) =
        closed_loop(sc.clients, sc.reqs_per_client, |_| {
            inproc_server.infer(jpeg.clone()).expect("in-process infer");
        });
    drop(inproc_server);
    records.push(Record {
        bench: "net",
        variant: "inproc",
        shape: shape.clone(),
        clients: sc.clients,
        mean_latency_s: inproc_mean,
        p50_latency_s: inproc_p50,
        rate: inproc_rate,
        rpc_time_s: 0.0,
        rpc_share: 0.0,
        completed: inproc_n,
        shed: 0,
        idle_conns: 0,
        rss_mb: 0.0,
    });

    // Loopback RPC: identical server behind the framed TCP front-end.
    let net_server = NetServer::bind(
        tiny_model(sc.model_side),
        NetOptions {
            live: live_opts(sc.model_side),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let client = NetClient::connect(
        net_server.local_addr(),
        ClientOptions {
            pool: sc.clients.min(4),
            ..ClientOptions::default()
        },
    )
    .expect("connect loopback");
    let rpc_times = std::sync::Mutex::new((0.0f64, 0usize));
    let (rpc_mean, rpc_p50, rpc_rate, rpc_n) = closed_loop(sc.clients, sc.reqs_per_client, |_| {
        let r = client.infer(&jpeg).expect("rpc infer");
        let leg = (r.transfer + r.deserialize).as_secs_f64();
        let mut acc = rpc_times.lock().unwrap_or_else(|e| e.into_inner());
        acc.0 += leg;
        acc.1 += 1;
    });
    let (leg_sum, leg_n) = *rpc_times.lock().unwrap_or_else(|e| e.into_inner());
    let rpc_leg = leg_sum / leg_n.max(1) as f64;
    // The honest overhead number: how much slower the same work is once a
    // real socket, framing, and a second copy of the bytes are in the path.
    let overhead_share = ((rpc_mean - inproc_mean) / rpc_mean).max(0.0);
    records.push(Record {
        bench: "net",
        variant: "rpc",
        shape: shape.clone(),
        clients: sc.clients,
        mean_latency_s: rpc_mean,
        p50_latency_s: rpc_p50,
        rate: rpc_rate,
        rpc_time_s: rpc_leg,
        rpc_share: overhead_share,
        completed: rpc_n,
        shed: 0,
        idle_conns: 0,
        rss_mb: 0.0,
    });

    // Thread-per-connection baseline: the same wire behind the blocking
    // architecture, so the event loop's single-connection latency cost is
    // a measured delta.
    #[cfg(unix)]
    {
        let threaded_server = NetServer::bind(
            tiny_model(sc.model_side),
            NetOptions {
                evented: false,
                live: live_opts(sc.model_side),
                ..NetOptions::default()
            },
        )
        .expect("bind threaded loopback");
        let threaded_client = NetClient::connect(
            threaded_server.local_addr(),
            ClientOptions {
                pool: sc.clients.min(4),
                ..ClientOptions::default()
            },
        )
        .expect("connect threaded loopback");
        let (th_mean, th_p50, th_rate, th_n) = closed_loop(sc.clients, sc.reqs_per_client, |_| {
            threaded_client.infer(&jpeg).expect("threaded rpc infer");
        });
        println!(
            "threaded baseline: p50 {:>8.1} us mean {:>8.1} us (evented p50 {:>8.1} us)",
            th_p50 * 1e6,
            th_mean * 1e6,
            rpc_p50 * 1e6,
        );
        records.push(Record {
            bench: "net",
            variant: "rpc_threaded",
            shape: shape.clone(),
            clients: sc.clients,
            mean_latency_s: th_mean,
            p50_latency_s: th_p50,
            rate: th_rate,
            rpc_time_s: 0.0,
            rpc_share: ((th_mean - inproc_mean) / th_mean).max(0.0),
            completed: th_n,
            shed: 0,
            idle_conns: 0,
            rss_mb: 0.0,
        });
    }

    // Open-loop Poisson at ~50% of the measured closed-loop capacity:
    // below saturation, latency should stay near the closed-loop value
    // and nothing should shed.
    let rate = (rpc_rate * 0.5).max(5.0);
    let n_open = (sc.reqs_per_client * sc.clients).max(8);
    let mut rng = RngStream::derive(11, "net-open-loop");
    let mut arrivals = Arrivals::poisson(rate);
    let t0 = Instant::now();
    let mut pending = Vec::with_capacity(n_open);
    let mut next_at = 0.0f64;
    for _ in 0..n_open {
        next_at += arrivals.next_gap(&mut rng);
        let until = Duration::from_secs_f64(next_at).saturating_sub(t0.elapsed());
        if !until.is_zero() {
            std::thread::sleep(until);
        }
        let sent = Instant::now();
        pending.push((sent, client.submit(&jpeg)));
    }
    let mut open_lats = Vec::with_capacity(n_open);
    let mut open_shed = 0usize;
    let mut open_leg = 0.0;
    for (sent, p) in pending {
        match p.and_then(|p| p.wait()) {
            Ok(r) => {
                open_lats.push(sent.elapsed().as_secs_f64());
                open_leg += (r.transfer + r.deserialize).as_secs_f64();
            }
            Err(NetError::Server { .. }) => open_shed += 1,
            Err(e) => panic!("open-loop transport failure: {e}"),
        }
    }
    let open_wall = t0.elapsed().as_secs_f64();
    let open_ok = open_lats.len();
    let open_mean = open_lats.iter().sum::<f64>() / open_ok.max(1) as f64;
    let open_leg = open_leg / open_ok.max(1) as f64;
    records.push(Record {
        bench: "net",
        variant: "rpc_open",
        shape: shape.clone(),
        clients: 1,
        mean_latency_s: open_mean,
        p50_latency_s: p50(open_lats),
        rate: open_ok as f64 / open_wall,
        rpc_time_s: open_leg,
        rpc_share: if open_mean > 0.0 {
            open_leg / open_mean
        } else {
            0.0
        },
        completed: open_ok,
        shed: open_shed,
        idle_conns: 0,
        rss_mb: 0.0,
    });

    println!(
        "inproc {:>8.1} us | rpc {:>8.1} us (leg {:>6.1} us, overhead {:>4.1}%) | open-loop @{rate:.0}/s mean {:>8.1} us, {open_shed} shed",
        inproc_mean * 1e6,
        rpc_mean * 1e6,
        rpc_leg * 1e6,
        overhead_share * 100.0,
        open_mean * 1e6,
    );

    if !smoke {
        // The wire must cost something, but must not dominate a pipeline
        // that still decodes JPEGs and runs a CNN.
        assert!(rpc_leg > 0.0, "rpc leg unmeasured at {shape}");
        assert!(
            overhead_share < 0.8,
            "rpc overhead {overhead_share:.2} implausibly dominant at {shape}"
        );
    }
    (rpc_leg, jpeg.len() as f64)
}

/// Replay the measured loopback legs through the simulator and print the
/// paper-style share next to the measured one.
fn sim_replay(records: &mut Vec<Record>, measured: &[(f64, f64)], smoke: bool) {
    // Calibrate the CpuModel rpc knobs from the loopback sweep: the fixed
    // part is the intercept (smallest payload's leg), the bandwidth comes
    // from the growth between the smallest and largest payloads.
    let mut node = NodeConfig::paper_testbed();
    if let (Some((leg_a, bytes_a)), Some((leg_b, bytes_b))) = (measured.first(), measured.last()) {
        if leg_b > leg_a && bytes_b > bytes_a {
            node.cpu.serialize_bytes_per_s = (bytes_b - bytes_a) / (leg_b - leg_a);
            node.cpu.rpc_fixed_s = (leg_a - bytes_a / node.cpu.serialize_bytes_per_s).max(5e-6);
        } else {
            node.cpu.rpc_fixed_s = *leg_a;
        }
    }

    let exp = |rpc: RpcPath| Experiment {
        node: node.clone(),
        config: ServerConfig::optimized_cpu_preproc().with_rpc(rpc),
        model: ModelProfile::vit_base(),
        mix: ImageMix::fixed(ImageSpec::medium()),
        concurrency: 8,
        warmup_s: if smoke { 0.1 } else { 0.3 },
        measure_s: if smoke { 0.3 } else { 1.5 },
        seed: 7,
    };
    let base = exp(RpcPath::InProcess).run();
    let tcp = exp(RpcPath::Tcp).run();
    let sim_share = tcp.rpc_share();
    println!(
        "\nsim replay (ViT-Base, medium images, CPU preproc, concurrency 8):\n\
         in-process mean {:.2} ms | tcp mean {:.2} ms | modeled rpc leg {:.1} us | rpc share {:.1}%",
        base.latency.mean * 1e3,
        tcp.latency.mean * 1e3,
        tcp.rpc_time() * 1e6,
        sim_share * 100.0,
    );
    println!(
        "paper-vs-measured: the paper reports the RPC/serialization rows as a\n\
         few percent of end-to-end latency for medium images; modeled share\n\
         here is {:.1}% with knobs calibrated from the loopback run\n\
         (rpc_fixed={:.1} us, serialize_bw={:.2} GB/s).",
        sim_share * 100.0,
        node.cpu.rpc_fixed_s * 1e6,
        node.cpu.serialize_bytes_per_s / 1e9,
    );
    if !smoke {
        assert!(
            sim_share > 0.0 && sim_share < 0.25,
            "modeled rpc share {sim_share} out of the paper's small-slice range"
        );
        assert!(
            base.rpc_time() == 0.0,
            "in-process replay must not charge rpc rows"
        );
    }
    records.push(Record {
        bench: "net",
        variant: "sim_tcp",
        shape: "medium".to_string(),
        clients: 8,
        mean_latency_s: tcp.latency.mean,
        p50_latency_s: tcp.latency.p50,
        rate: tcp.throughput,
        rpc_time_s: tcp.rpc_time(),
        rpc_share: sim_share,
        completed: tcp.completed as usize,
        shed: 0,
        idle_conns: 0,
        rss_mb: 0.0,
    });
}

/// Resident-set size of this process in MiB (`/proc/self/status` VmRSS;
/// 0 where unavailable).
fn rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmRSS:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<f64>().ok())
            })
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// Whether the evented front-end is active (mirrors `NetOptions::default`).
fn evented_mode() -> bool {
    match std::env::var("VSERVE_NET_EVENTED") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "yes" | "on"
        ),
        Err(_) => cfg!(unix),
    }
}

/// Connection-scaling sweep: hold N idle connections open on the evented
/// server while a 4-client subset keeps inferring; record the p50 under
/// flood and the resident-set growth the idle connections cost.
fn bench_conn_scaling(records: &mut Vec<Record>, sc: &Scale, smoke: bool) {
    let fd_budget = vserve_net::fd_soft_limit()
        .map(|l| (l.saturating_sub(512)) / 2)
        .unwrap_or(1024) as usize;
    let evented = evented_mode();
    println!("\n--- connection scaling (fd budget {fd_budget}, evented={evented}) ---");

    let side = sc.model_side;
    let jpeg = synthetic_jpeg(&ImageSpec::new(side * 2, side * 2, 0), 23);
    let active_clients = 4usize.min(sc.clients.max(1));
    let reqs = sc.reqs_per_client;

    for &want in &sc.idle_levels {
        let n = want.min(fd_budget);
        if !evented && n > 64 {
            // Thread-per-connection burns a thread per idle socket; the
            // high levels are exactly what that architecture cannot do.
            println!("{want:>6} idle: skipped (threaded mode)");
            continue;
        }
        let server = NetServer::bind(
            tiny_model(side),
            NetOptions {
                max_conns: n + 64,
                live: live_opts(side),
                ..NetOptions::default()
            },
        )
        .expect("bind conn-sweep server");
        let addr = server.local_addr();
        let rss_before = rss_mb();
        let mut idle = Vec::with_capacity(n);
        for i in 0..n {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => idle.push(s),
                Err(e) => panic!("idle conn {i}/{n} failed: {e}"),
            }
        }
        // Wait for the server to register every idle connection before
        // measuring, so the sweep really runs *with* them resident.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.metrics().active < n {
            assert!(
                Instant::now() < deadline,
                "server saw {}/{} conns",
                server.metrics().active,
                n
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let rss_after = rss_mb();

        let client = NetClient::connect(
            addr,
            ClientOptions {
                pool: active_clients,
                ..ClientOptions::default()
            },
        )
        .expect("connect conn-sweep client");
        let (mean, med, rate, done) = closed_loop(active_clients, reqs, |_| {
            client.infer(&jpeg).expect("conn-sweep infer");
        });
        let grew = (rss_after - rss_before).max(0.0);
        println!(
            "{n:>6} idle: p50 {:>8.1} us mean {:>8.1} us {:>8.1} img/s rss +{grew:.2} MiB",
            med * 1e6,
            mean * 1e6,
            rate,
        );
        records.push(Record {
            bench: "net",
            variant: "conn_sweep",
            shape: format!("{n}idle"),
            clients: active_clients,
            mean_latency_s: mean,
            p50_latency_s: med,
            rate,
            rpc_time_s: 0.0,
            rpc_share: 0.0,
            completed: done,
            shed: 0,
            idle_conns: n,
            rss_mb: grew,
        });
        drop(idle);
        drop(client);
        if !smoke {
            assert!(done > 0, "no completions with {n} idle conns");
        }
    }
}

/// Simulator shard sweep: the router tier (`ServerConfig::shards`) at high
/// closed-loop concurrency on a CPU-preprocessing-bound deployment.
fn sim_shard_sweep(records: &mut Vec<Record>, sc: &Scale, smoke: bool) {
    println!(
        "\n--- sim shard sweep ({} closed-loop clients) ---",
        sc.sim_clients
    );
    let node = NodeConfig::paper_testbed();
    let mut base_rate = 0.0;
    for &shards in &[1usize, 2, 4] {
        let report = Experiment {
            node: node.clone(),
            config: ServerConfig::optimized_cpu_preproc()
                .with_rpc(RpcPath::Tcp)
                .with_shards(shards),
            model: ModelProfile::vit_base(),
            // Large images make CPU preprocessing the binding stage — the
            // deployment sharding actually helps (each shard brings its
            // own preproc pool, like the live router's per-shard stacks).
            mix: ImageMix::fixed(ImageSpec::large()),
            concurrency: sc.sim_clients,
            warmup_s: if smoke { 0.1 } else { 0.5 },
            measure_s: if smoke { 0.3 } else { 2.0 },
            seed: 19,
        }
        .run();
        if shards == 1 {
            base_rate = report.throughput;
        }
        println!(
            "{shards} shard(s): {:>10.1} img/s p50 {:>8.2} ms ({:.2}x of 1 shard)",
            report.throughput,
            report.latency.p50 * 1e3,
            report.throughput / base_rate.max(1e-9),
        );
        records.push(Record {
            bench: "net",
            variant: "sim_shards",
            shape: format!("{shards}shards"),
            clients: sc.sim_clients,
            mean_latency_s: report.latency.mean,
            p50_latency_s: report.latency.p50,
            rate: report.throughput,
            rpc_time_s: report.rpc_time(),
            rpc_share: report.rpc_share(),
            completed: report.completed as usize,
            shed: 0,
            idle_conns: 0,
            rss_mb: 0.0,
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let sc = if smoke {
        Scale {
            sources: vec![96, 192],
            model_side: 32,
            clients: 2,
            reqs_per_client: 4,
            idle_levels: vec![1, 64, 256],
            sim_clients: 256,
        }
    } else {
        Scale {
            sources: vec![224, 448, 896],
            model_side: 64,
            clients: 4,
            reqs_per_client: 40,
            idle_levels: vec![1, 64, 1000, 10_000],
            sim_clients: 10_000,
        }
    };

    let mut records = Vec::new();
    let mut measured = Vec::new();
    for &src in &sc.sources {
        measured.push(bench_source(&mut records, src, &sc, smoke));
    }
    bench_conn_scaling(&mut records, &sc, smoke);
    sim_replay(&mut records, &measured, smoke);
    sim_shard_sweep(&mut records, &sc, smoke);

    let mut table = String::new();
    let _ = writeln!(
        table,
        "\n{:<6} {:<13} {:<10} {:>7} {:>12} {:>12} {:>10} {:>11} {:>9} {:>9} {:>6} {:>7} {:>7}",
        "bench",
        "variant",
        "shape",
        "clients",
        "mean_lat_s",
        "p50_lat_s",
        "img/s",
        "rpc_time_s",
        "rpc_share",
        "completed",
        "shed",
        "idle",
        "rss_mb"
    );
    for r in &records {
        let _ = writeln!(
            table,
            "{:<6} {:<13} {:<10} {:>7} {:>12.6} {:>12.6} {:>10.1} {:>11.6} {:>8.1}% {:>9} {:>6} {:>7} {:>7.2}",
            r.bench,
            r.variant,
            r.shape,
            r.clients,
            r.mean_latency_s,
            r.p50_latency_s,
            r.rate,
            r.rpc_time_s,
            r.rpc_share * 100.0,
            r.completed,
            r.shed,
            r.idle_conns,
            r.rss_mb
        );
    }
    print!("{table}");
    println!("host_cores={host_cores} smoke={smoke}");

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open bench output");
    for r in &records {
        writeln!(file, "{}", r.json(host_cores, smoke)).expect("write bench output");
    }
    println!("appended {} records to {out_path}", records.len());
}
