//! Network front-end benchmarks: loopback RPC vs in-process serving.
//!
//! The paper's end-to-end breakdown charges every request a client→server
//! data-transfer and a serialization leg. This harness measures those legs
//! on this machine by running the *same* model behind two front doors:
//!
//! * `inproc` — closed-loop clients calling `LiveServer::infer` directly
//!   (no wire, the baseline every other figure uses),
//! * `rpc` — the same closed-loop clients going through `vserve-net`'s
//!   framed TCP protocol over loopback (pooled, pipelining client),
//! * `rpc_open` — an open-loop Poisson load over the same socket pool at
//!   roughly half the measured closed-loop capacity, the paper's
//!   load-sweep methodology,
//! * `sim_tcp` — the simulator replaying the RPC path
//!   (`ServerConfig::with_rpc(RpcPath::Tcp)`) with `CpuModel` rpc knobs
//!   calibrated from the loopback measurement, printed paper-vs-measured.
//!
//! The payload sweep (224/448/896 px sources) shows the transfer leg
//! growing with compressed size while deserialize stays fixed — the same
//! shape as the paper's data-transfer vs serialization rows.
//!
//! Results are printed as a table and appended as JSON lines to
//! `BENCH_net.json` (override with `--out PATH`). `--smoke` shrinks
//! shapes and repetitions to a few hundred milliseconds for CI checks.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use vserve_device::{ImageSpec, NodeConfig};
use vserve_dnn::{models, Model};
use vserve_net::{ClientOptions, NetClient, NetError, NetOptions, NetServer};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_server::{Experiment, ModelProfile, RpcPath, ServerConfig};
use vserve_sim::rng::RngStream;
use vserve_workload::{synthetic_jpeg, Arrivals, ImageMix};

/// One measured variant at one payload size, serialized as a JSON line.
struct Record {
    bench: &'static str,
    variant: &'static str,
    shape: String,
    clients: usize,
    /// Mean request latency, seconds.
    mean_latency_s: f64,
    /// Completed images per second.
    rate: f64,
    /// Mean server-measured transfer + deserialize, seconds (0 for the
    /// in-process variant — the rows do not exist there).
    rpc_time_s: f64,
    /// RPC overhead share of mean latency (variant-specific; see table).
    rpc_share: f64,
    completed: usize,
    shed: usize,
}

impl Record {
    fn json(&self, host_cores: usize, smoke: bool) -> String {
        format!(
            "{{\"bench\":\"{}\",\"variant\":\"{}\",\"shape\":\"{}\",\"clients\":{},\
             \"mean_latency_s\":{:.6},\"img_per_s\":{:.1},\"rpc_time_s\":{:.6},\
             \"rpc_share\":{:.4},\"completed\":{},\"shed\":{},\
             \"host_cores\":{},\"smoke\":{}}}",
            self.bench,
            self.variant,
            self.shape,
            self.clients,
            self.mean_latency_s,
            self.rate,
            self.rpc_time_s,
            self.rpc_share,
            self.completed,
            self.shed,
            host_cores,
            smoke
        )
    }
}

/// Benchmark scale knobs (shrunk by `--smoke`).
struct Scale {
    sources: Vec<usize>,
    model_side: usize,
    clients: usize,
    reqs_per_client: usize,
}

fn tiny_model(side: usize) -> Model {
    Model::from_graph(models::micro_cnn(side, 10).expect("micro_cnn graph"), 7)
}

fn live_opts(side: usize) -> LiveOptions {
    LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch: 8,
        max_queue_delay: Duration::from_millis(1),
        input_side: side,
        backend_threads: 1,
        ..LiveOptions::default()
    }
}

/// Mean latency + throughput of `clients` closed-loop threads each doing
/// `reqs` calls of `f` (one warmup call per thread first).
fn closed_loop<F>(clients: usize, reqs: usize, f: F) -> (f64, f64, usize)
where
    F: Fn(usize) + Send + Sync,
{
    let f = &f;
    let t0 = Instant::now();
    let lat_sums: Vec<(f64, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    f(c); // warmup: first call pays cold caches
                    let mut sum = 0.0;
                    for _ in 0..reqs {
                        let t = Instant::now();
                        f(c);
                        sum += t.elapsed().as_secs_f64();
                    }
                    (sum, reqs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let total: f64 = lat_sums.iter().map(|(s, _)| s).sum();
    let n: usize = lat_sums.iter().map(|(_, n)| n).sum();
    let wall = t0.elapsed().as_secs_f64();
    (total / n as f64, n as f64 / wall, n)
}

fn bench_source(records: &mut Vec<Record>, src: usize, sc: &Scale, smoke: bool) -> (f64, f64) {
    let jpeg = synthetic_jpeg(&ImageSpec::new(src, src, 0), 17);
    let shape = format!("{src}px");
    println!(
        "--- payload {shape} ({:.1} kB compressed) ---",
        jpeg.len() as f64 / 1024.0
    );

    // In-process baseline: same model, same live options, no wire.
    let inproc_server = LiveServer::start(tiny_model(sc.model_side), live_opts(sc.model_side));
    let (inproc_mean, inproc_rate, inproc_n) = closed_loop(sc.clients, sc.reqs_per_client, |_| {
        inproc_server.infer(jpeg.clone()).expect("in-process infer");
    });
    drop(inproc_server);
    records.push(Record {
        bench: "net",
        variant: "inproc",
        shape: shape.clone(),
        clients: sc.clients,
        mean_latency_s: inproc_mean,
        rate: inproc_rate,
        rpc_time_s: 0.0,
        rpc_share: 0.0,
        completed: inproc_n,
        shed: 0,
    });

    // Loopback RPC: identical server behind the framed TCP front-end.
    let net_server = NetServer::bind(
        tiny_model(sc.model_side),
        NetOptions {
            live: live_opts(sc.model_side),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let client = NetClient::connect(
        net_server.local_addr(),
        ClientOptions {
            pool: sc.clients.min(4),
            ..ClientOptions::default()
        },
    )
    .expect("connect loopback");
    let rpc_times = std::sync::Mutex::new((0.0f64, 0usize));
    let (rpc_mean, rpc_rate, rpc_n) = closed_loop(sc.clients, sc.reqs_per_client, |_| {
        let r = client.infer(&jpeg).expect("rpc infer");
        let leg = (r.transfer + r.deserialize).as_secs_f64();
        let mut acc = rpc_times.lock().unwrap_or_else(|e| e.into_inner());
        acc.0 += leg;
        acc.1 += 1;
    });
    let (leg_sum, leg_n) = *rpc_times.lock().unwrap_or_else(|e| e.into_inner());
    let rpc_leg = leg_sum / leg_n.max(1) as f64;
    // The honest overhead number: how much slower the same work is once a
    // real socket, framing, and a second copy of the bytes are in the path.
    let overhead_share = ((rpc_mean - inproc_mean) / rpc_mean).max(0.0);
    records.push(Record {
        bench: "net",
        variant: "rpc",
        shape: shape.clone(),
        clients: sc.clients,
        mean_latency_s: rpc_mean,
        rate: rpc_rate,
        rpc_time_s: rpc_leg,
        rpc_share: overhead_share,
        completed: rpc_n,
        shed: 0,
    });

    // Open-loop Poisson at ~50% of the measured closed-loop capacity:
    // below saturation, latency should stay near the closed-loop value
    // and nothing should shed.
    let rate = (rpc_rate * 0.5).max(5.0);
    let n_open = (sc.reqs_per_client * sc.clients).max(8);
    let mut rng = RngStream::derive(11, "net-open-loop");
    let mut arrivals = Arrivals::poisson(rate);
    let t0 = Instant::now();
    let mut pending = Vec::with_capacity(n_open);
    let mut next_at = 0.0f64;
    for _ in 0..n_open {
        next_at += arrivals.next_gap(&mut rng);
        let until = Duration::from_secs_f64(next_at).saturating_sub(t0.elapsed());
        if !until.is_zero() {
            std::thread::sleep(until);
        }
        let sent = Instant::now();
        pending.push((sent, client.submit(&jpeg)));
    }
    let mut open_sum = 0.0;
    let mut open_ok = 0usize;
    let mut open_shed = 0usize;
    let mut open_leg = 0.0;
    for (sent, p) in pending {
        match p.and_then(|p| p.wait()) {
            Ok(r) => {
                open_sum += sent.elapsed().as_secs_f64();
                open_leg += (r.transfer + r.deserialize).as_secs_f64();
                open_ok += 1;
            }
            Err(NetError::Server { .. }) => open_shed += 1,
            Err(e) => panic!("open-loop transport failure: {e}"),
        }
    }
    let open_wall = t0.elapsed().as_secs_f64();
    let open_mean = open_sum / open_ok.max(1) as f64;
    let open_leg = open_leg / open_ok.max(1) as f64;
    records.push(Record {
        bench: "net",
        variant: "rpc_open",
        shape: shape.clone(),
        clients: 1,
        mean_latency_s: open_mean,
        rate: open_ok as f64 / open_wall,
        rpc_time_s: open_leg,
        rpc_share: if open_mean > 0.0 {
            open_leg / open_mean
        } else {
            0.0
        },
        completed: open_ok,
        shed: open_shed,
    });

    println!(
        "inproc {:>8.1} us | rpc {:>8.1} us (leg {:>6.1} us, overhead {:>4.1}%) | open-loop @{rate:.0}/s mean {:>8.1} us, {open_shed} shed",
        inproc_mean * 1e6,
        rpc_mean * 1e6,
        rpc_leg * 1e6,
        overhead_share * 100.0,
        open_mean * 1e6,
    );

    if !smoke {
        // The wire must cost something, but must not dominate a pipeline
        // that still decodes JPEGs and runs a CNN.
        assert!(rpc_leg > 0.0, "rpc leg unmeasured at {shape}");
        assert!(
            overhead_share < 0.8,
            "rpc overhead {overhead_share:.2} implausibly dominant at {shape}"
        );
    }
    (rpc_leg, jpeg.len() as f64)
}

/// Replay the measured loopback legs through the simulator and print the
/// paper-style share next to the measured one.
fn sim_replay(records: &mut Vec<Record>, measured: &[(f64, f64)], smoke: bool) {
    // Calibrate the CpuModel rpc knobs from the loopback sweep: the fixed
    // part is the intercept (smallest payload's leg), the bandwidth comes
    // from the growth between the smallest and largest payloads.
    let mut node = NodeConfig::paper_testbed();
    if let (Some((leg_a, bytes_a)), Some((leg_b, bytes_b))) = (measured.first(), measured.last()) {
        if leg_b > leg_a && bytes_b > bytes_a {
            node.cpu.serialize_bytes_per_s = (bytes_b - bytes_a) / (leg_b - leg_a);
            node.cpu.rpc_fixed_s = (leg_a - bytes_a / node.cpu.serialize_bytes_per_s).max(5e-6);
        } else {
            node.cpu.rpc_fixed_s = *leg_a;
        }
    }

    let exp = |rpc: RpcPath| Experiment {
        node: node.clone(),
        config: ServerConfig::optimized_cpu_preproc().with_rpc(rpc),
        model: ModelProfile::vit_base(),
        mix: ImageMix::fixed(ImageSpec::medium()),
        concurrency: 8,
        warmup_s: if smoke { 0.1 } else { 0.3 },
        measure_s: if smoke { 0.3 } else { 1.5 },
        seed: 7,
    };
    let base = exp(RpcPath::InProcess).run();
    let tcp = exp(RpcPath::Tcp).run();
    let sim_share = tcp.rpc_share();
    println!(
        "\nsim replay (ViT-Base, medium images, CPU preproc, concurrency 8):\n\
         in-process mean {:.2} ms | tcp mean {:.2} ms | modeled rpc leg {:.1} us | rpc share {:.1}%",
        base.latency.mean * 1e3,
        tcp.latency.mean * 1e3,
        tcp.rpc_time() * 1e6,
        sim_share * 100.0,
    );
    println!(
        "paper-vs-measured: the paper reports the RPC/serialization rows as a\n\
         few percent of end-to-end latency for medium images; modeled share\n\
         here is {:.1}% with knobs calibrated from the loopback run\n\
         (rpc_fixed={:.1} us, serialize_bw={:.2} GB/s).",
        sim_share * 100.0,
        node.cpu.rpc_fixed_s * 1e6,
        node.cpu.serialize_bytes_per_s / 1e9,
    );
    if !smoke {
        assert!(
            sim_share > 0.0 && sim_share < 0.25,
            "modeled rpc share {sim_share} out of the paper's small-slice range"
        );
        assert!(
            base.rpc_time() == 0.0,
            "in-process replay must not charge rpc rows"
        );
    }
    records.push(Record {
        bench: "net",
        variant: "sim_tcp",
        shape: "medium".to_string(),
        clients: 8,
        mean_latency_s: tcp.latency.mean,
        rate: tcp.throughput,
        rpc_time_s: tcp.rpc_time(),
        rpc_share: sim_share,
        completed: tcp.completed as usize,
        shed: 0,
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let sc = if smoke {
        Scale {
            sources: vec![96, 192],
            model_side: 32,
            clients: 2,
            reqs_per_client: 4,
        }
    } else {
        Scale {
            sources: vec![224, 448, 896],
            model_side: 64,
            clients: 4,
            reqs_per_client: 40,
        }
    };

    let mut records = Vec::new();
    let mut measured = Vec::new();
    for &src in &sc.sources {
        measured.push(bench_source(&mut records, src, &sc, smoke));
    }
    sim_replay(&mut records, &measured, smoke);

    let mut table = String::new();
    let _ = writeln!(
        table,
        "\n{:<6} {:<9} {:<8} {:>7} {:>12} {:>10} {:>11} {:>9} {:>9} {:>6}",
        "bench",
        "variant",
        "shape",
        "clients",
        "mean_lat_s",
        "img/s",
        "rpc_time_s",
        "rpc_share",
        "completed",
        "shed"
    );
    for r in &records {
        let _ = writeln!(
            table,
            "{:<6} {:<9} {:<8} {:>7} {:>12.6} {:>10.1} {:>11.6} {:>8.1}% {:>9} {:>6}",
            r.bench,
            r.variant,
            r.shape,
            r.clients,
            r.mean_latency_s,
            r.rate,
            r.rpc_time_s,
            r.rpc_share * 100.0,
            r.completed,
            r.shed
        );
    }
    print!("{table}");
    println!("host_cores={host_cores} smoke={smoke}");

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open bench output");
    for r in &records {
        writeln!(file, "{}", r.json(host_cores, smoke)).expect("write bench output");
    }
    println!("appended {} records to {out_path}", records.len());
}
