//! Cascade pipeline benchmark: live fan-out sweep × frame-reuse sweep,
//! with the discrete-event replay alongside.
//!
//! Two sections:
//!
//! * `live` — a detect→identify cascade on a real zoo server, swept over
//!   fan-out K ∈ {1, 4, 8} × video hold ∈ {1, 8} frames/scene. Each cell
//!   measures frame throughput, mean joined latency, per-stage shares
//!   (detect / identify / hand-off / queue) from the runner breakdown,
//!   and the preproc-cache hit rate over the measured window. Scene-held
//!   streams reuse cached tensors for the root frame *and* its crop
//!   children, so the hold=8 cells must land at ≥ 0.8 hit rate while the
//!   hold=1 cells stay at exactly zero.
//! * `sim` — the pipeline model replayed at the same fan-outs with
//!   `PipeCosts` calibrated from the cold (hold=1) live cells, reporting
//!   the same share rows for side-by-side comparison.
//!
//! Results are printed as a table and appended as JSON lines to
//! `BENCH_pipeline.json` (override with `--out PATH`). `--smoke` shrinks
//! the per-cell frame count to a CI pulse-check; the cache-rate bars are
//! deterministic and enforced in every mode, while the share-monotonicity
//! bars (identify share grows with K, live and sim) run only in full mode.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use vserve_broker::BrokerKind;
use vserve_device::{ImageSpec, NodeConfig};
use vserve_dnn::{models, Model};
use vserve_pipeline::{
    pipeline_stages, PipeCosts, PipelineExperiment, PipelineRunner, PipelineSpec,
};
use vserve_server::live::{LiveOptions, LiveServer, ZooModel};
use vserve_workload::{FacesPerFrame, VideoStream};

const SIDE: usize = 32;
const KS: [u32; 3] = [1, 4, 8];
const HOLDS: [usize; 2] = [1, 8];

struct Record {
    section: &'static str,
    k: u32,
    hold: usize,
    frames: usize,
    fps: f64,
    mean_latency_s: f64,
    det_share: f64,
    id_share: f64,
    handoff_share: f64,
    queue_share: f64,
    cache_hit_rate: f64,
}

impl Record {
    fn json(&self, host_cores: usize, smoke: bool) -> String {
        format!(
            "{{\"bench\":\"pipeline\",\"section\":\"{}\",\"k\":{},\"hold\":{},\
             \"frames\":{},\"fps\":{:.2},\"mean_latency_s\":{:.6},\
             \"det_share\":{:.4},\"id_share\":{:.4},\"handoff_share\":{:.4},\
             \"queue_share\":{:.4},\"cache_hit_rate\":{:.4},\
             \"host_cores\":{},\"smoke\":{}}}",
            self.section,
            self.k,
            self.hold,
            self.frames,
            self.fps,
            self.mean_latency_s,
            self.det_share,
            self.id_share,
            self.handoff_share,
            self.queue_share,
            self.cache_hit_rate,
            host_cores,
            smoke
        )
    }
}

fn zoo() -> LiveServer {
    let model = |seed| Model::from_graph(models::micro_cnn(SIDE, 4).expect("valid graph"), seed);
    LiveServer::start_zoo(
        vec![
            ZooModel {
                name: "det".to_owned(),
                model: model(11),
                input_side: SIDE,
            },
            ZooModel {
                name: "id".to_owned(),
                model: model(22),
                input_side: SIDE,
            },
        ],
        LiveOptions {
            preproc_workers: 4,
            inference_workers: 2,
            max_batch: 8,
            max_queue_delay: Duration::ZERO,
            input_side: SIDE,
            backend_threads: 1,
            preproc_cache_mb: Some(16),
            coalesce: false,
            ..LiveOptions::default()
        },
    )
    .expect("zoo server")
}

/// Raw per-pipeline stage service means of one live cell, kept for sim
/// calibration.
#[derive(Clone, Copy, Default)]
struct StageMeans {
    det: f64,
    id: f64,
    handoff: f64,
    queue: f64,
}

impl StageMeans {
    fn total(&self) -> f64 {
        self.det + self.id + self.handoff + self.queue
    }
}

struct LiveCell {
    record: Record,
    means: StageMeans,
    /// Identify share of service time only (det + id) — immune to
    /// queue-noise, used for the monotonicity bar.
    id_service_share: f64,
}

/// One live cell: `frames` video frames at the given hold through a
/// fresh cascade runner at fan-out `k`. The preproc-cache hit rate is a
/// delta over the measured window, so warmup lookups do not count.
fn live_cell(k: u32, hold: usize, frames: usize) -> LiveCell {
    let server = zoo();
    // Warm codec, model, and thread-pool paths on a throwaway runner fed
    // from a disjoint stream (its scenes never collide with the measured
    // stream, so the cache-rate delta below stays exact).
    let warm_stream = VideoStream::new(ImageSpec::new(96, 72, 0), 9000 + k as u64, hold);
    let warm = PipelineRunner::new(
        server.pipeline_handle(),
        PipelineSpec::chain("faces", "det", "id", k),
    )
    .expect("warm runner");
    for i in 0..3 {
        warm.infer(warm_stream.frame(i)).expect("warm cascade");
    }
    drop(warm);

    let runner = PipelineRunner::new(
        server.pipeline_handle(),
        PipelineSpec::chain("faces", "det", "id", k),
    )
    .expect("runner");
    let stream = VideoStream::new(ImageSpec::new(96, 72, 0), 100 + k as u64, hold);
    let c0 = server.metrics().preproc_cache;
    let t0 = Instant::now();
    let mut lat_sum = 0.0f64;
    for i in 0..frames {
        let r = runner.infer(stream.frame(i)).expect("cascade");
        lat_sum += r.total.as_secs_f64();
    }
    let wall = t0.elapsed().as_secs_f64();
    let c1 = server.metrics().preproc_cache;
    let (hits, misses) = (c1.hits - c0.hits, c1.misses - c0.misses);
    let s = runner.stats();
    assert_eq!(s.completed, frames as u64, "every frame must complete");
    assert_eq!(s.spawned, s.retired, "lost sub-request in bench cell");
    let b = &s.breakdown;
    let means = StageMeans {
        det: b.mean("det"),
        id: b.mean("id"),
        handoff: b.mean("fanout") + b.mean("join"),
        queue: b.mean("queue"),
    };
    let total = means.total();
    LiveCell {
        record: Record {
            section: "live",
            k,
            hold,
            frames,
            fps: frames as f64 / wall,
            mean_latency_s: lat_sum / frames as f64,
            det_share: means.det / total,
            id_share: means.id / total,
            handoff_share: means.handoff / total,
            queue_share: means.queue / total,
            cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        },
        means,
        id_service_share: means.id / (means.det + means.id),
    }
}

/// The sim replay at fan-out `k`, calibrated from the cold live cell's
/// measured stage means (fused coupling — the in-process executor has no
/// broker hop).
fn sim_cell(k: u32, cold: StageMeans) -> Record {
    let r = PipelineExperiment {
        node: NodeConfig::paper_testbed(),
        broker: BrokerKind::Fused,
        faces: FacesPerFrame::fixed(k as u64),
        concurrency: 1,
        warmup_s: 0.2,
        measure_s: 1.0,
        seed: 7,
    }
    .run_with_costs(PipeCosts {
        det_s: cold.det,
        id_face_s: cold.id / k as f64,
        handoff_s: cold.handoff,
        exit_rate: 0.0,
    });
    let stage = |s: &str| r.breakdown.mean(s);
    let total: f64 = [
        pipeline_stages::DETECT,
        pipeline_stages::BROKER,
        pipeline_stages::IDENTIFY,
        pipeline_stages::QUEUE,
    ]
    .iter()
    .map(|s| stage(s))
    .sum();
    Record {
        section: "sim",
        k,
        hold: 0,
        frames: 0,
        fps: r.frame_throughput,
        mean_latency_s: r.latency.mean,
        det_share: stage(pipeline_stages::DETECT) / total,
        id_share: stage(pipeline_stages::IDENTIFY) / total,
        handoff_share: stage(pipeline_stages::BROKER) / total,
        queue_share: stage(pipeline_stages::QUEUE) / total,
        cache_hit_rate: 0.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let frames = if smoke { 10 } else { 40 };

    println!("--- live: fan-out K x frame-reuse sweep ({frames} frames/cell) ---");
    let mut records = Vec::new();
    // Cold (hold=1) stage means per K, feeding the sim calibration.
    let mut cold_means = Vec::new();
    let mut live_id_service = Vec::new();
    for &k in &KS {
        for &hold in &HOLDS {
            let cell = live_cell(k, hold, frames);
            println!(
                "  k={k} hold={hold}: {:>7.1} fps, mean {:>7.2} ms, \
                 shares det {:.3} id {:.3} handoff {:.3} queue {:.3}, cache hit {:.3}",
                cell.record.fps,
                cell.record.mean_latency_s * 1e3,
                cell.record.det_share,
                cell.record.id_share,
                cell.record.handoff_share,
                cell.record.queue_share,
                cell.record.cache_hit_rate
            );
            if hold == 1 {
                cold_means.push(cell.means);
                live_id_service.push(cell.id_service_share);
            }
            records.push(cell.record);
        }
    }

    println!("\n--- sim: calibrated replay at the same fan-outs ---");
    let mut sim_id_shares = Vec::new();
    for (i, &k) in KS.iter().enumerate() {
        let r = sim_cell(k, cold_means[i]);
        println!(
            "  k={k}: {:>9.1} fps, mean {:>7.2} ms, \
             shares det {:.3} id {:.3} handoff {:.3} queue {:.3}",
            r.fps,
            r.mean_latency_s * 1e3,
            r.det_share,
            r.id_share,
            r.handoff_share,
            r.queue_share
        );
        sim_id_shares.push(r.id_share);
        records.push(r);
    }

    let mut table = String::new();
    let _ = writeln!(
        table,
        "\n{:<7} {:>3} {:>5} {:>7} {:>9} {:>10} {:>6} {:>6} {:>8} {:>6} {:>9}",
        "section",
        "k",
        "hold",
        "frames",
        "fps",
        "mean_ms",
        "det",
        "id",
        "handoff",
        "queue",
        "cache_hit"
    );
    for r in &records {
        let _ = writeln!(
            table,
            "{:<7} {:>3} {:>5} {:>7} {:>9.1} {:>10.2} {:>6.3} {:>6.3} {:>8.3} {:>6.3} {:>9.3}",
            r.section,
            r.k,
            r.hold,
            r.frames,
            r.fps,
            r.mean_latency_s * 1e3,
            r.det_share,
            r.id_share,
            r.handoff_share,
            r.queue_share,
            r.cache_hit_rate
        );
    }
    print!("{table}");

    // The artifact is written before the acceptance bars run, so a failed
    // run still leaves its records for diagnosis.
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open bench output");
    for r in &records {
        writeln!(file, "{}", r.json(host_cores, smoke)).expect("write bench output");
    }
    println!("appended {} records to {out_path}", records.len());

    // Deterministic cache bars hold in every mode: scene-held streams hit,
    // fresh-scene streams never do (crop children included on both sides).
    for r in records.iter().filter(|r| r.section == "live") {
        if r.hold == 1 {
            assert_eq!(
                r.cache_hit_rate, 0.0,
                "k={}: fresh-scene stream must never hit the preproc cache",
                r.k
            );
        } else {
            assert!(
                r.cache_hit_rate >= 0.8,
                "k={} hold={}: cache hit rate {:.3} below the 0.8 bar",
                r.k,
                r.hold,
                r.cache_hit_rate
            );
        }
    }
    if !smoke {
        // Identify share grows with fan-out on both sides. The live bar
        // uses the service-only share (det vs id), which is monotone by
        // construction and immune to scheduler noise in the queue rows.
        assert!(
            live_id_service[0] < live_id_service[KS.len() - 1],
            "live identify service share must grow with fan-out: {live_id_service:?}"
        );
        assert!(
            sim_id_shares[0] < sim_id_shares[KS.len() - 1],
            "sim identify share must grow with fan-out: {sim_id_shares:?}"
        );
        println!(
            "acceptance: cache bars (hold=8 >= 0.8, hold=1 == 0) and identify-share \
             growth with fan-out, live and sim"
        );
    } else {
        println!("acceptance (smoke): cache bars (hold=8 >= 0.8, hold=1 == 0)");
    }
}
