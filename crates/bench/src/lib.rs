//! Benchmark harness: regenerates every figure in the paper's evaluation.
//!
//! * [`figs`] — one function per paper figure (3–9, 11), each returning
//!   structured rows plus a rendered paper-vs-measured table. Binaries
//!   `fig3`…`fig11` print them (`cargo run -p vserve-bench --bin fig6`).
//! * [`ablations`] — sweeps over the mechanisms behind each reproduced
//!   shape (batch delay, worker grid, staging bandwidth, memory
//!   watermark, broker costs).
//! * `benches/` — criterion benchmarks of the real substrates (codec,
//!   kernels, brokers, DES engine) and of each figure harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod figs;
pub mod table;
