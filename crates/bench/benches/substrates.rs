//! Criterion microbenchmarks of the real substrates: JPEG codec, DNN
//! kernels, message brokers, and the discrete-event engine. These ground
//! the calibrated cost models in measured per-operation costs on the host
//! machine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use vserve_broker::{Broker, FsyncPolicy, LogBroker, MemBroker};
use vserve_codec::{decode, encode, EncodeOptions};
use vserve_device::ImageSpec;
use vserve_dnn::kernels;
use vserve_sim::{Engine, SimDuration, SimTime};
use vserve_tensor::{ops, Image};
use vserve_workload::synthetic_jpeg;

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let img = Image::noise(500, 375, 7); // the paper's medium resolution
    let jpeg = encode(&img, &EncodeOptions::default());
    g.throughput(Throughput::Elements((img.pixel_count()) as u64));
    g.bench_function("encode_500x375", |b| {
        b.iter(|| encode(&img, &EncodeOptions::default()))
    });
    g.bench_function("decode_500x375", |b| b.iter(|| decode(&jpeg).unwrap()));
    let small = synthetic_jpeg(&ImageSpec::small(), 3);
    g.bench_function("decode_small_60x70", |b| b.iter(|| decode(&small).unwrap()));
    g.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    let mut g = c.benchmark_group("preprocess");
    let img = Image::noise(500, 375, 9);
    g.bench_function("resize_bilinear_to_224", |b| {
        b.iter(|| ops::resize_bilinear(&img, 224, 224))
    });
    g.bench_function("resize_area_to_224", |b| {
        b.iter(|| ops::resize_area(&img, 224, 224))
    });
    g.bench_function("standard_preprocess_224", |b| {
        b.iter(|| ops::standard_preprocess(&img, 224))
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    let m = 64;
    let a: Vec<f32> = (0..m * m).map(|i| (i % 13) as f32).collect();
    let b_mat: Vec<f32> = (0..m * m).map(|i| (i % 7) as f32).collect();
    g.bench_function("gemm_64", |bch| {
        bch.iter_batched(
            || vec![0.0f32; m * m],
            |mut out| kernels::gemm(&a, &b_mat, &mut out, m, m, m),
            BatchSize::SmallInput,
        )
    });
    let input: Vec<f32> = (0..3 * 64 * 64).map(|i| (i % 11) as f32).collect();
    let weight: Vec<f32> = (0..16 * 3 * 9).map(|i| (i % 5) as f32 * 0.1).collect();
    let bias = vec![0.0f32; 16];
    g.bench_function("conv2d_3x64x64_k3", |bch| {
        b_iter_conv(bch, &input, &weight, &bias)
    });
    g.finish();
}

fn b_iter_conv(b: &mut criterion::Bencher<'_>, input: &[f32], weight: &[f32], bias: &[f32]) {
    b.iter(|| kernels::conv2d(input, weight, bias, 3, 64, 64, 16, 3, 1, 1));
}

fn bench_brokers(c: &mut Criterion) {
    let mut g = c.benchmark_group("brokers");
    let payload = vec![0xabu8; 24 * 1024]; // one face crop
    let mem = MemBroker::new();
    g.bench_function("mem_publish_fetch_24k", |b| {
        b.iter(|| {
            mem.publish("bench", &payload).unwrap();
            mem.fetch("bench", "g", 1).unwrap()
        })
    });
    let dir = std::env::temp_dir().join(format!("vserve-bench-log-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let log_nosync = LogBroker::open(&dir, FsyncPolicy::Never).unwrap();
    g.bench_function("log_publish_fetch_24k_nosync", |b| {
        b.iter(|| {
            log_nosync.publish("bench", &payload).unwrap();
            log_nosync.fetch("bench", "g", 1).unwrap()
        })
    });
    let dir2 = std::env::temp_dir().join(format!("vserve-bench-log-sync-{}", std::process::id()));
    std::fs::remove_dir_all(&dir2).ok();
    let log_sync = LogBroker::open(&dir2, FsyncPolicy::PerMessage).unwrap();
    let mut gg = g;
    gg.sample_size(10);
    gg.bench_function("log_publish_fetch_24k_fsync", |b| {
        b.iter(|| {
            log_sync.publish("bench", &payload).unwrap();
            log_sync.fetch("bench", "g", 1).unwrap()
        })
    });
    gg.finish();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

fn bench_sim_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("engine_10k_events", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            let mut state = 0u64;
            for i in 0..10_000u64 {
                eng.schedule_at(
                    SimTime::from_nanos(i * 100),
                    Box::new(|s: &mut u64, e: &mut Engine<u64>| {
                        *s += 1;
                        if *s % 100 == 0 {
                            e.schedule_in(
                                SimDuration::from_nanos(1),
                                Box::new(|s: &mut u64, _| *s += 1),
                            );
                        }
                    }),
                );
            }
            eng.run(&mut state, SimTime::MAX);
            state
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_preprocess,
    bench_kernels,
    bench_brokers,
    bench_sim_engine
);
criterion_main!(benches);
