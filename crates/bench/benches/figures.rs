//! Criterion wrappers around the figure-regeneration harnesses — one
//! bench per paper figure, run with quick virtual-time windows. Besides
//! timing the harnesses, each iteration re-executes the complete
//! experiment, so `cargo bench` exercises every figure end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use vserve_bench::figs::{self, Windows};

fn quick() -> Windows {
    Windows::quick()
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_software_ladder", |b| b.iter(|| figs::fig3(quick())));
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4_model_zoo", |b| b.iter(|| figs::fig4(quick())));
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_concurrency_sweep", |b| b.iter(|| figs::fig5(quick())));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_zero_load_breakdown", |b| {
        b.iter(|| figs::fig6(quick()))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7_stage_isolation", |b| b.iter(|| figs::fig7(quick())));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig8_energy", |b| b.iter(|| figs::fig8(quick())));
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig9_multi_gpu", |b| b.iter(|| figs::fig9(quick())));
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig11_brokers", |b| b.iter(|| figs::fig11(quick())));
    g.finish();
}

criterion_group!(
    benches,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig11
);
criterion_main!(benches);
