//! Online self-tuning controller for the live serving stack.
//!
//! The paper's takeaway is that end-to-end serving latency is governed as
//! much by the configuration around the model — batch size, batch linger,
//! the CPU split between preprocessing and compute, cache budget — as by
//! the model itself, and that the best configuration shifts with offered
//! load and image mix. This crate closes the loop: a [`Tuner`] thread
//! scrapes the live server's windowed latency at a fixed cadence and
//! hill-climbs its runtime knobs against a latency objective, instead of
//! freezing a grid-swept configuration at deploy time.
//!
//! Three layers:
//!
//! * [`HillClimber`] — the pure policy: a gradient-free coordinate probe
//!   with hysteresis (a move must *clearly* improve the objective to
//!   stick), per-knob step limits and clamps, a rollback guardrail that
//!   reverts any move that regresses, and a load-shift detector that
//!   re-baselines when throughput steps. Deterministic and fully unit
//!   testable without a server.
//! * [`Tuner`] — the live harness: a background thread that drains
//!   `LiveServer::take_latency_window`, feeds the climber, and applies
//!   accepted moves through the server's runtime setters.
//! * [`replay_experiment`] — the sim mirror: runs the *same* policy inside
//!   `Experiment::run_open_controlled`, so a tuning strategy can be
//!   validated against calibrated step-load curves in milliseconds.
//!
//! # Examples
//!
//! Pure policy, synthetic world — the climber walks linger down when
//! lower linger means lower latency:
//!
//! ```
//! use vserve_tune::{HillClimber, Knobs, Observation, TuneOptions};
//!
//! let mut opts = TuneOptions::default();
//! opts.hysteresis = 0.0; // accept any improvement
//! let mut climber = HillClimber::new(opts);
//! let mut knobs = Knobs { max_batch: 8, linger_us: 20_000, preproc_workers: 2,
//!                         backend_threads: 0, cache_bytes: 0 };
//! for _ in 0..200 {
//!     let mean = 1e-6 * knobs.linger_us as f64 + 1.0 / (4.0 + knobs.max_batch as f64);
//!     let obs = Observation { completed: 500, mean_latency_s: mean, p50_s: mean,
//!                             p99_s: 2.0 * mean, throughput: 1000.0 };
//!     climber.tick(obs, &mut knobs);
//! }
//! assert!(knobs.linger_us < 1000, "linger {}", knobs.linger_us);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use vserve_server::live::LiveServer;
use vserve_server::{Experiment, ServerReport};
use vserve_workload::Arrivals;

/// Enables the controller in binaries that consult the environment
/// (`1`/`true`/`on`); see [`TuneOptions::enabled_from_env`].
///
/// Interaction with `VSERVE_TENANTS`: on a multi-tenant server (more
/// than one lane) the tuner starts **frozen** — the thread is never
/// spawned and no knob is ever written. The scheduler owns per-lane
/// batch/linger on such servers, and a global hill-climber stomping
/// every lane's assembly knobs each interval would oscillate against
/// the fairness policy (tuner widens linger → LC lane tail grows →
/// tuner narrows it back, forever). `VSERVE_TUNE=1` is therefore a
/// no-op alongside a multi-tenant `VSERVE_TENANTS`; use the per-lane
/// setters (`set_lane_max_batch` / `set_lane_batch_linger`) instead.
pub const TUNE_ENV: &str = "VSERVE_TUNE";
/// Overrides the control interval in milliseconds.
pub const TUNE_INTERVAL_MS_ENV: &str = "VSERVE_TUNE_INTERVAL_MS";
/// Sets the p99 latency target in milliseconds; over-target tails are
/// penalized in the objective.
pub const TUNE_P99_TARGET_MS_ENV: &str = "VSERVE_TUNE_P99_TARGET_MS";

/// Default control cadence.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(200);

// Per-knob clamps: the climber never proposes a value outside these, no
// matter what the objective says.
const MAX_BATCH_MIN: usize = 1;
const MAX_BATCH_MAX: usize = 64;
const LINGER_MIN_US: u64 = 50;
const LINGER_MAX_US: u64 = 50_000;
const PREPROC_MIN: usize = 1;
const PREPROC_MAX: usize = 16;
const CACHE_STEP_BYTES: usize = 8 << 20;

/// Weight of the p99-over-target hinge in the objective, in units of
/// "seconds of mean latency per second of excess tail".
const P99_PENALTY: f64 = 10.0;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneOptions {
    /// Control cadence: one observation window and at most one knob move
    /// per interval.
    pub interval: Duration,
    /// Optional p99 target; windows whose p99 exceeds it add a hinge
    /// penalty to the objective, steering the climber toward tail-safe
    /// configurations even when the mean alone would not.
    pub p99_target: Option<Duration>,
    /// Relative improvement a probe must show to be accepted
    /// (hysteresis). Below it the move is rolled back, so measurement
    /// noise cannot walk the knobs.
    pub hysteresis: f64,
    /// Relative throughput change treated as a load shift: the climber
    /// abandons the current probe baseline and re-explores.
    pub load_shift: f64,
    /// Observation windows to discard before the first probe.
    pub warmup_ticks: u32,
    /// Windows to hold (no probing) after two consecutive laps of the
    /// axes yield only rollbacks — the knobs sit at a local optimum, so
    /// continuous probing would just tax latency with futile excursions.
    /// Consecutive settles double the hold (capped at 8×), so a converged
    /// server is probed ever more rarely. `0` probes every window. A load
    /// shift or any kept move ends the hold / resets the backoff.
    pub settle_ticks: u32,
    /// Tune `max_batch` and batch linger.
    pub tune_batching: bool,
    /// Tune the preproc-worker / backend-thread split.
    pub tune_threads: bool,
    /// Tune the preproc cache byte budget.
    pub tune_cache: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            interval: DEFAULT_INTERVAL,
            p99_target: None,
            hysteresis: 0.03,
            load_shift: 0.25,
            warmup_ticks: 2,
            settle_ticks: 6,
            tune_batching: true,
            tune_threads: true,
            tune_cache: true,
        }
    }
}

impl TuneOptions {
    /// Reads [`TUNE_INTERVAL_MS_ENV`] and [`TUNE_P99_TARGET_MS_ENV`] over
    /// the defaults. Unset or unparsable values fall back silently, like
    /// the rest of the suite's env knobs.
    pub fn from_env() -> Self {
        let mut opts = TuneOptions::default();
        if let Some(ms) = read_env_u64(TUNE_INTERVAL_MS_ENV) {
            if ms > 0 {
                opts.interval = Duration::from_millis(ms);
            }
        }
        if let Some(ms) = read_env_u64(TUNE_P99_TARGET_MS_ENV) {
            if ms > 0 {
                opts.p99_target = Some(Duration::from_millis(ms));
            }
        }
        opts
    }

    /// Whether [`TUNE_ENV`] asks for the controller (`1`, `true`, `on`,
    /// case-insensitive). Off by default: self-reconfiguration is opt-in.
    pub fn enabled_from_env() -> bool {
        match std::env::var(TUNE_ENV) {
            Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on"),
            Err(_) => false,
        }
    }
}

fn read_env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// One control window's measurements, as seen by the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Requests completed in the window.
    pub completed: u64,
    /// Mean round-trip latency over the window, seconds.
    pub mean_latency_s: f64,
    /// Median round-trip latency over the window, seconds (`0.0` when the
    /// deployment cannot compute one; the objective then falls back to
    /// the mean).
    pub p50_s: f64,
    /// p99 round-trip latency over the window, seconds.
    pub p99_s: f64,
    /// Completions per second over the window.
    pub throughput: f64,
}

/// The knob vector the policy optimizes. Mirrors the live server's
/// runtime setters; a deployment without a given knob (e.g. the sim has
/// no compute backend or cache) sets it to `0` and the climber skips the
/// corresponding axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knobs {
    /// Batch size cap.
    pub max_batch: usize,
    /// Batch linger, microseconds.
    pub linger_us: u64,
    /// Preprocessing worker threads.
    pub preproc_workers: usize,
    /// Compute backend threads (`0` = not tunable here; the worker-split
    /// axis then steps `preproc_workers` alone).
    pub backend_threads: usize,
    /// Preproc cache budget in bytes (`0` = disabled / not tunable).
    pub cache_bytes: usize,
}

/// What the climber did with an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No knob change (warming up, empty window, or nothing movable).
    Hold,
    /// Applied a trial move; the next window judges it.
    Probe,
    /// The pending trial improved the objective and was kept.
    Accept,
    /// The pending trial left the objective flat but moved toward less
    /// speculative waiting (smaller linger or batch cap), so it was kept.
    /// Drift lets multiplicative steps compound across a flat region of
    /// the objective — e.g. any linger longer than the arrival spacing
    /// measures the same, and a single step cannot cross the whole band.
    Drift,
    /// The pending trial regressed (or was flat with no safe lean) and
    /// was reverted.
    Rollback,
    /// Throughput shifted; probe state discarded and re-baselined.
    Reset,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    MaxBatch,
    Linger,
    WorkerSplit,
    Cache,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Warmup(u32),
    Baseline,
    Probing {
        prev: Knobs,
        axis: usize,
        dir: i8,
        baseline_obj: f64,
    },
    /// At a local optimum (a whole lap of probes rolled back): hold for
    /// the remaining count of windows before probing again. Consecutive
    /// settles back off exponentially (see `nap_mult`).
    Settled(u32),
}

/// Baseline windows kept for the robust probe reference.
const BASE_HIST: usize = 3;
/// Cap on the settle-nap backoff multiplier.
const NAP_MULT_MAX: u32 = 8;

/// Gradient-free coordinate hill-climber over [`Knobs`].
///
/// Each accepted observation either *opens* a probe (apply one bounded
/// move on one axis, round-robin) or *judges* the pending probe against
/// the pre-move objective: kept if it improved by more than the
/// hysteresis margin, kept-as-[`Drift`](Decision::Drift) if it stayed
/// flat while shrinking linger or the batch cap, reverted otherwise. A
/// kept move gives its axis momentum — the same axis is probed again
/// next, so a monotone direction is walked at two ticks per step instead
/// of one step per round-robin lap. Probes are judged against the
/// *median of the last few baseline windows*, not the single pre-move
/// window: one noisy-fast baseline window would otherwise set an
/// unbeatable bar (vetoing a genuine improvement), and one noisy-slow
/// window would invite a spurious accept that walks the knobs. Two
/// consecutive laps of rollbacks settle the climber: it stops probing
/// for `settle_ticks` windows, and each consecutive settle doubles the
/// nap (capped at 8×) — once converged, the probe duty cycle and its
/// latency tax shrink toward zero, while any kept move or load shift
/// snaps the nap back to its base length. A throughput step larger than
/// `load_shift` discards the stale baseline (and ends any settle hold).
/// The objective is `p50 + 10·max(0, p99 − target)` — window-median
/// latency (robust against a host stall inflating a short window's
/// mean), tail-penalized.
#[derive(Debug)]
pub struct HillClimber {
    opts: TuneOptions,
    state: State,
    axes: Vec<Axis>,
    /// Preferred probe direction per axis; flipped on rollback so the
    /// next probe on that axis tries the other way.
    dirs: Vec<i8>,
    next_axis: usize,
    /// Consecutive rollbacks since the last kept move; a full lap of them
    /// means no axis has anywhere better to go right now.
    futile_lap: usize,
    /// Objectives of recent windows measured under the *kept* knobs
    /// (baseline and settled windows; never probe windows). Probes are
    /// judged against the median of these.
    base_hist: Vec<f64>,
    /// Settle-nap backoff: doubles on each consecutive settle (cap
    /// [`NAP_MULT_MAX`]), resets to 1 on any kept move or load shift.
    nap_mult: u32,
    last_throughput: f64,
    /// preproc + backend thread total, captured at the first tick;
    /// the worker-split axis conserves it.
    total_threads: Option<usize>,
    /// Cache budget ceiling (2× the starting budget), captured at the
    /// first tick with a non-zero budget.
    cache_cap: usize,
    initialized: bool,
}

impl HillClimber {
    /// Creates a climber; axes are bound to the knob vector on the first
    /// [`tick`](Self::tick).
    pub fn new(opts: TuneOptions) -> Self {
        HillClimber {
            opts,
            state: State::Warmup(opts.warmup_ticks),
            axes: Vec::new(),
            dirs: Vec::new(),
            next_axis: 0,
            futile_lap: 0,
            base_hist: Vec::new(),
            nap_mult: 1,
            last_throughput: 0.0,
            total_threads: None,
            cache_cap: 0,
            initialized: false,
        }
    }

    fn objective(&self, obs: &Observation) -> f64 {
        // Prefer the window median: control windows are short (tens of
        // samples), and a single host-level stall burst inflates such a
        // window's mean severalfold, which reads as a spurious probe
        // verdict. The median shrugs off the burst; the p99 hinge below
        // still charges for a genuinely degraded tail.
        let mut obj = if obs.p50_s > 0.0 {
            obs.p50_s
        } else {
            obs.mean_latency_s
        };
        if let Some(target) = self.opts.p99_target {
            obj += P99_PENALTY * (obs.p99_s - target.as_secs_f64()).max(0.0);
        }
        obj
    }

    fn bind_axes(&mut self, knobs: &Knobs) {
        if self.opts.tune_batching {
            self.axes.push(Axis::MaxBatch);
            self.axes.push(Axis::Linger);
        }
        if self.opts.tune_threads {
            if knobs.backend_threads > 0 {
                self.total_threads = Some(knobs.preproc_workers + knobs.backend_threads);
            }
            self.axes.push(Axis::WorkerSplit);
        }
        if self.opts.tune_cache && knobs.cache_bytes > 0 {
            self.cache_cap = (knobs.cache_bytes * 2).max(CACHE_STEP_BYTES);
            self.axes.push(Axis::Cache);
        }
        self.dirs = vec![1; self.axes.len()];
        self.initialized = true;
    }

    /// Applies one bounded move on `axis`; `false` if the knob is already
    /// at the clamp in that direction.
    fn step(&self, axis: Axis, dir: i8, knobs: &mut Knobs) -> bool {
        match axis {
            Axis::MaxBatch => {
                let step = (knobs.max_batch / 4).max(1);
                let next = if dir > 0 {
                    (knobs.max_batch + step).min(MAX_BATCH_MAX)
                } else {
                    knobs.max_batch.saturating_sub(step).max(MAX_BATCH_MIN)
                };
                let moved = next != knobs.max_batch;
                knobs.max_batch = next;
                moved
            }
            Axis::Linger => {
                let next = if dir > 0 {
                    knobs.linger_us.saturating_mul(3) / 2
                } else {
                    knobs.linger_us * 2 / 3
                }
                .clamp(LINGER_MIN_US, LINGER_MAX_US);
                let moved = next != knobs.linger_us;
                knobs.linger_us = next;
                moved
            }
            Axis::WorkerSplit => match self.total_threads {
                // Conserved split: a worker moves between the pools.
                Some(total) => {
                    if dir > 0 && knobs.backend_threads > 1 {
                        knobs.preproc_workers += 1;
                        knobs.backend_threads = total - knobs.preproc_workers;
                        true
                    } else if dir < 0 && knobs.preproc_workers > 1 {
                        knobs.preproc_workers -= 1;
                        knobs.backend_threads = total - knobs.preproc_workers;
                        true
                    } else {
                        false
                    }
                }
                // No backend knob (sim replay): step the pool alone.
                None => {
                    let next = if dir > 0 {
                        (knobs.preproc_workers + 1).min(PREPROC_MAX)
                    } else {
                        knobs.preproc_workers.saturating_sub(1).max(PREPROC_MIN)
                    };
                    let moved = next != knobs.preproc_workers;
                    knobs.preproc_workers = next;
                    moved
                }
            },
            Axis::Cache => {
                let next = if dir > 0 {
                    (knobs.cache_bytes + CACHE_STEP_BYTES).min(self.cache_cap)
                } else {
                    knobs.cache_bytes.saturating_sub(CACHE_STEP_BYTES)
                };
                let moved = next != knobs.cache_bytes;
                knobs.cache_bytes = next;
                moved
            }
        }
    }

    /// The direction on `axis` that is cost-free when the objective is
    /// flat: less speculative waiting. Splitting threads or sizing the
    /// cache has no such lean — a flat move there is just wandering.
    fn lean(axis: Axis) -> Option<i8> {
        match axis {
            Axis::MaxBatch | Axis::Linger => Some(-1),
            Axis::WorkerSplit | Axis::Cache => None,
        }
    }

    /// Records one window measured under the kept knobs.
    fn push_baseline(&mut self, obj: f64) {
        self.base_hist.push(obj);
        if self.base_hist.len() > BASE_HIST {
            self.base_hist.remove(0);
        }
    }

    /// The probe reference: median of the recent kept-knob windows, so a
    /// single noisy window (fast or slow) cannot decide a probe alone.
    fn robust_baseline(&self) -> f64 {
        let mut v = self.base_hist.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }

    /// Opens a probe on the next movable axis (round-robin, preferred
    /// direction first, then the other).
    fn open_probe(&mut self, obs: &Observation, knobs: &mut Knobs) -> Decision {
        self.push_baseline(self.objective(obs));
        let baseline_obj = self.robust_baseline();
        for _ in 0..self.axes.len() {
            let i = self.next_axis;
            self.next_axis = (self.next_axis + 1) % self.axes.len();
            let axis = self.axes[i];
            let prev = *knobs;
            let preferred = self.dirs[i];
            if self.step(axis, preferred, knobs) {
                self.state = State::Probing {
                    prev,
                    axis: i,
                    dir: preferred,
                    baseline_obj,
                };
                return Decision::Probe;
            }
            // Clamped in the preferred direction: flip and try once.
            self.dirs[i] = -preferred;
            if self.step(axis, -preferred, knobs) {
                self.state = State::Probing {
                    prev,
                    axis: i,
                    dir: -preferred,
                    baseline_obj,
                };
                return Decision::Probe;
            }
            *knobs = prev;
        }
        Decision::Hold
    }

    /// Feeds one observation window; may mutate `knobs` (one bounded move
    /// or one revert). The caller applies whatever changed.
    pub fn tick(&mut self, obs: Observation, knobs: &mut Knobs) -> Decision {
        if !self.initialized {
            self.bind_axes(knobs);
        }
        // An empty window judges nothing: keep any pending probe open.
        if obs.completed == 0 {
            return Decision::Hold;
        }
        if let State::Warmup(n) = self.state {
            if n > 0 {
                self.state = State::Warmup(n - 1);
                self.last_throughput = obs.throughput;
                return Decision::Hold;
            }
            self.state = State::Baseline;
        }
        // Offered load stepped: the pre-move objective is stale, so keep
        // the current knobs (the environment changed, not the move) and
        // start a fresh baseline. The very first window has no reference
        // point, so it only records one.
        if self.last_throughput > 0.0 {
            let shift = (obs.throughput - self.last_throughput).abs()
                / self.last_throughput.max(obs.throughput);
            if shift > self.opts.load_shift {
                self.last_throughput = obs.throughput;
                self.state = State::Baseline;
                self.futile_lap = 0;
                self.base_hist.clear();
                self.nap_mult = 1;
                return Decision::Reset;
            }
        }
        self.last_throughput = obs.throughput;
        match self.state {
            State::Warmup(_) => unreachable!("cleared above"),
            State::Settled(n) => {
                // This window is one of the n held ones; it ran under the
                // kept knobs, so it also feeds the baseline history.
                let obj = self.objective(&obs);
                self.push_baseline(obj);
                self.state = if n > 1 {
                    State::Settled(n - 1)
                } else {
                    State::Baseline
                };
                Decision::Hold
            }
            State::Baseline => self.open_probe(&obs, knobs),
            State::Probing {
                prev,
                axis,
                dir,
                baseline_obj,
            } => {
                let obj = self.objective(&obs);
                self.state = State::Baseline;
                if obj < baseline_obj * (1.0 - self.opts.hysteresis) {
                    // Momentum: re-probe the winning axis immediately. The
                    // kept knobs changed, so the old baseline history no
                    // longer describes them.
                    self.next_axis = axis;
                    self.futile_lap = 0;
                    self.base_hist.clear();
                    self.nap_mult = 1;
                    Decision::Accept
                } else if obj <= baseline_obj * (1.0 + 2.0 * self.opts.hysteresis)
                    && Self::lean(self.axes[axis]) == Some(dir)
                {
                    // The drift band is twice the accept band: a lean move
                    // is cost-free when the objective is truly flat, so a
                    // window reading a few percent high is more likely
                    // measurement noise than a real knee — and a genuine
                    // overshoot past the knee regresses far beyond this
                    // band and still rolls back on the next probe. A flat
                    // drift keeps the baseline history (the objective did
                    // not change by definition) and this window joins it.
                    self.next_axis = axis;
                    self.dirs[axis] = dir;
                    self.futile_lap = 0;
                    self.nap_mult = 1;
                    self.push_baseline(obj);
                    Decision::Drift
                } else {
                    *knobs = prev;
                    self.dirs[axis] = -self.dirs[axis];
                    self.futile_lap += 1;
                    if self.opts.settle_ticks > 0 && self.futile_lap >= 2 * self.axes.len() {
                        // Two consecutive laps where every axis reverted:
                        // stop taxing the workload with excursions for a
                        // while. One lap is not enough evidence — on a
                        // noisy host, axes that are still productive lose
                        // the occasional window to a latency burst, and a
                        // single such loss must not complete a "futile"
                        // lap whose other members are axes parked at their
                        // clamps. Each consecutive settle doubles the nap:
                        // a genuinely converged server earns an ever-lower
                        // probe duty cycle, while any kept move or load
                        // shift resets the backoff.
                        self.futile_lap = 0;
                        self.state = State::Settled(self.opts.settle_ticks * self.nap_mult);
                        self.nap_mult = (self.nap_mult * 2).min(NAP_MULT_MAX);
                    }
                    Decision::Rollback
                }
            }
        }
    }
}

/// Background controller attached to a [`LiveServer`].
///
/// Every interval it drains the server's latency window, runs the
/// [`HillClimber`], and pushes accepted knob changes through the runtime
/// setters. Dropping the tuner stops and joins the thread; the server
/// keeps whatever configuration the controller last settled on.
#[derive(Debug)]
pub struct Tuner {
    stop: Arc<AtomicBool>,
    decisions: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
    frozen: bool,
}

impl Tuner {
    /// Starts the controller thread against `live`.
    ///
    /// Multi-tenant guard: if the server runs more than one lane the
    /// tuner comes up **frozen** — no thread, no knob writes, and
    /// [`Tuner::decisions`] stays at zero. The global setters this
    /// controller drives (`set_max_batch`, `set_batch_linger`) fan out
    /// to every lane, so on a multi-tenant server each accepted probe
    /// would overwrite the scheduler's per-lane assembly state and the
    /// two control loops would oscillate (see [`TUNE_ENV`]).
    pub fn start(live: Arc<LiveServer>, opts: TuneOptions) -> Tuner {
        let stop = Arc::new(AtomicBool::new(false));
        let decisions = Arc::new(AtomicU64::new(0));
        if live.lane_count() > 1 {
            return Tuner {
                stop,
                decisions,
                handle: None,
                frozen: true,
            };
        }
        let (stop_t, decisions_t) = (stop.clone(), decisions.clone());
        let handle = thread::Builder::new()
            .name("vserve-tune".into())
            .spawn(move || controller_loop(&live, opts, &stop_t, &decisions_t))
            .expect("spawn tuner thread");
        Tuner {
            stop,
            decisions,
            handle: Some(handle),
            frozen: false,
        }
    }

    /// True when the multi-tenant guard suppressed the controller.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Count of knob reconfigurations applied so far (probes, rollbacks
    /// — every actual change to the live server). Shared: clone it into
    /// a metrics exporter.
    pub fn decisions(&self) -> Arc<AtomicU64> {
        self.decisions.clone()
    }

    /// Stops and joins the controller thread. Idempotent; also runs on
    /// drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Tuner {
    fn drop(&mut self) {
        self.stop();
    }
}

fn controller_loop(live: &LiveServer, opts: TuneOptions, stop: &AtomicBool, decisions: &AtomicU64) {
    let mut climber = HillClimber::new(opts);
    let interval_s = opts.interval.as_secs_f64().max(1e-6);
    while !stop.load(Ordering::SeqCst) {
        // Sleep in short slices so drop never waits a full interval.
        let mut slept = Duration::ZERO;
        while slept < opts.interval && !stop.load(Ordering::SeqCst) {
            let nap = (opts.interval - slept).min(Duration::from_millis(10));
            thread::sleep(nap);
            slept += nap;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let window = live.take_latency_window();
        let snap = live.knobs();
        let obs = Observation {
            completed: window.count,
            mean_latency_s: window.mean,
            p50_s: window.p50,
            p99_s: window.p99,
            throughput: window.count as f64 / interval_s,
        };
        let mut knobs = Knobs {
            max_batch: snap.max_batch,
            linger_us: snap.linger.as_micros().min(u64::MAX as u128) as u64,
            preproc_workers: snap.preproc_workers,
            backend_threads: snap.backend_threads,
            cache_bytes: snap.preproc_cache_bytes,
        };
        let before = knobs;
        climber.tick(obs, &mut knobs);
        if knobs == before {
            continue;
        }
        if knobs.max_batch != before.max_batch {
            live.set_max_batch(knobs.max_batch);
        }
        if knobs.linger_us != before.linger_us {
            live.set_batch_linger(Duration::from_micros(knobs.linger_us));
        }
        if knobs.preproc_workers != before.preproc_workers {
            live.set_preproc_workers(knobs.preproc_workers);
        }
        if knobs.backend_threads != before.backend_threads {
            live.set_backend_threads(knobs.backend_threads);
        }
        if knobs.cache_bytes != before.cache_bytes {
            live.set_preproc_cache_bytes(knobs.cache_bytes);
        }
        decisions.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs `exp` open-loop with the hill-climber attached, mirroring what
/// [`Tuner`] does to a live server — the controller replay of the sim.
///
/// The sim exposes batching and the preproc pool but no compute backend
/// or cache, so those axes are disabled regardless of `opts`.
pub fn replay_experiment(exp: &Experiment, arrivals: Arrivals, opts: TuneOptions) -> ServerReport {
    let mut climber = HillClimber::new(TuneOptions {
        tune_cache: false,
        ..opts
    });
    exp.run_open_controlled(
        arrivals,
        opts.interval.as_secs_f64(),
        move |obs, sim_knobs| {
            let o = Observation {
                completed: obs.completed,
                mean_latency_s: obs.mean_latency_s,
                p50_s: obs.p50_s,
                p99_s: obs.p99_s,
                throughput: obs.throughput,
            };
            let mut knobs = Knobs {
                max_batch: sim_knobs.max_batch,
                linger_us: sim_knobs.linger_us,
                preproc_workers: sim_knobs.preproc_workers,
                backend_threads: 0,
                cache_bytes: 0,
            };
            climber.tick(o, &mut knobs);
            sim_knobs.max_batch = knobs.max_batch;
            sim_knobs.linger_us = knobs.linger_us;
            sim_knobs.preproc_workers = knobs.preproc_workers;
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(mean: f64, throughput: f64) -> Observation {
        Observation {
            completed: 500,
            mean_latency_s: mean,
            p50_s: mean,
            p99_s: 2.0 * mean,
            throughput,
        }
    }

    fn knobs() -> Knobs {
        Knobs {
            max_batch: 8,
            linger_us: 5_000,
            preproc_workers: 4,
            backend_threads: 4,
            cache_bytes: 64 << 20,
        }
    }

    fn eager() -> TuneOptions {
        TuneOptions {
            hysteresis: 0.0,
            warmup_ticks: 0,
            settle_ticks: 0,
            ..TuneOptions::default()
        }
    }

    #[test]
    fn converges_on_synthetic_objective() {
        // World: latency rises with linger and falls with batch size.
        // The climber must walk linger to its floor and batch to its cap.
        let mut opts = eager();
        opts.tune_threads = false;
        opts.tune_cache = false;
        let mut c = HillClimber::new(opts);
        let mut k = knobs();
        for _ in 0..200 {
            let mean = 1e-6 * k.linger_us as f64 + 1.0 / (4.0 + k.max_batch as f64);
            c.tick(obs(mean, 1000.0), &mut k);
        }
        assert!(k.linger_us <= 2 * LINGER_MIN_US, "linger {}", k.linger_us);
        assert!(k.max_batch >= 32, "max_batch {}", k.max_batch);
    }

    #[test]
    fn rollback_restores_knobs_when_every_move_regresses() {
        // World: the starting point is optimal; any move doubles latency.
        let start = knobs();
        let mut c = HillClimber::new(eager());
        let mut k = start;
        let mut rollbacks = 0;
        for _ in 0..60 {
            let mean = if k == start { 0.010 } else { 0.020 };
            match c.tick(obs(mean, 1000.0), &mut k) {
                Decision::Rollback => {
                    rollbacks += 1;
                    assert_eq!(k, start, "rollback must restore the pre-probe knobs");
                }
                Decision::Probe | Decision::Hold => {}
                d => panic!("unexpected decision {d:?}"),
            }
        }
        assert_eq!(k, start);
        assert!(rollbacks >= 20, "rollbacks {rollbacks}");
    }

    #[test]
    fn flat_objective_drifts_linger_and_batch_to_their_floors() {
        // World: the objective ignores the knobs entirely (e.g. linger
        // far above the arrival spacing — every value measures the same).
        // A pure accept/revert climber stalls on such a plateau; drift
        // must walk linger and the batch cap down to their floors, while
        // the no-lean axes (worker split, cache) stay where they started.
        let start = knobs();
        let mut c = HillClimber::new(eager());
        let mut k = start;
        let mut drifts = 0;
        for _ in 0..200 {
            if c.tick(obs(0.010, 1000.0), &mut k) == Decision::Drift {
                drifts += 1;
            }
        }
        assert!(drifts > 10, "drifts {drifts}");
        assert_eq!(k.linger_us, LINGER_MIN_US);
        assert_eq!(k.max_batch, MAX_BATCH_MIN);
        assert_eq!(k.preproc_workers, start.preproc_workers);
        assert_eq!(k.cache_bytes, start.cache_bytes);
    }

    #[test]
    fn step_limits_and_clamps_hold_under_runaway_acceptance() {
        // World: latency always improves, so every probe is accepted.
        // Knobs must still respect clamps and bounded per-tick steps.
        let mut c = HillClimber::new(eager());
        let mut k = knobs();
        let total = k.preproc_workers + k.backend_threads;
        let mut mean = 1.0;
        for _ in 0..300 {
            mean *= 0.9;
            let before = k;
            c.tick(obs(mean, 1000.0), &mut k);
            assert!((MAX_BATCH_MIN..=MAX_BATCH_MAX).contains(&k.max_batch));
            assert!((LINGER_MIN_US..=LINGER_MAX_US).contains(&k.linger_us));
            assert!(k.preproc_workers >= 1 && k.backend_threads >= 1);
            assert_eq!(
                k.preproc_workers + k.backend_threads,
                total,
                "split conserved"
            );
            assert!(k.cache_bytes <= (64 << 20) * 2);
            // One bounded move per tick.
            assert!(k.linger_us <= before.linger_us.saturating_mul(3) / 2 + 1);
            assert!(k.max_batch <= before.max_batch + before.max_batch / 4 + 1);
        }
    }

    #[test]
    fn settles_after_two_futile_probe_laps_and_rewakes_on_load_shift() {
        // World: the starting point is optimal. After two full laps of
        // reverted probes the climber must go quiet for settle_ticks
        // windows, and every consecutive settle must double the nap
        // (capped) — and a load shift must wake it immediately.
        let start = knobs();
        let mut opts = eager();
        opts.settle_ticks = 5;
        let mut c = HillClimber::new(opts);
        let mut k = start;
        let world = |k: &Knobs| if *k == start { 0.010 } else { 0.020 };
        let mut streak = 0;
        let mut naps = Vec::new();
        for _ in 0..200 {
            match c.tick(obs(world(&k), 1000.0), &mut k) {
                Decision::Hold => streak += 1,
                _ => {
                    if streak > 0 {
                        naps.push(streak);
                    }
                    streak = 0;
                }
            }
        }
        assert_eq!(&naps[..4], &[5, 10, 20, 40], "naps must back off: {naps:?}");
        // Run out any probe left open by the fixed-length loop, into the
        // next settle: every excursion must have been reverted.
        while c.tick(obs(world(&k), 1000.0), &mut k) != Decision::Hold {}
        assert_eq!(k, start);
        // Then shift the load: probing resumes at once.
        assert_eq!(c.tick(obs(world(&k), 2000.0), &mut k), Decision::Reset);
        assert_eq!(c.tick(obs(world(&k), 2000.0), &mut k), Decision::Probe);
    }

    #[test]
    fn load_shift_resets_probe_without_reverting() {
        let mut c = HillClimber::new(eager());
        let mut k = knobs();
        assert_eq!(c.tick(obs(0.010, 1000.0), &mut k), Decision::Probe);
        let probed = k;
        // Throughput steps 1000 → 2000: the probe baseline is stale.
        assert_eq!(c.tick(obs(0.012, 2000.0), &mut k), Decision::Reset);
        assert_eq!(k, probed, "reset keeps the knobs, only state is discarded");
        // Next tick opens a fresh probe against the new regime.
        assert_eq!(c.tick(obs(0.012, 2000.0), &mut k), Decision::Probe);
    }

    #[test]
    fn empty_windows_hold_probe_open() {
        let mut c = HillClimber::new(eager());
        let mut k = knobs();
        assert_eq!(c.tick(obs(0.010, 1000.0), &mut k), Decision::Probe);
        let probed = k;
        let idle = Observation {
            completed: 0,
            mean_latency_s: 0.0,
            p50_s: 0.0,
            p99_s: 0.0,
            throughput: 0.0,
        };
        assert_eq!(c.tick(idle, &mut k), Decision::Hold);
        assert_eq!(k, probed);
        // Traffic returns: the probe is finally judged.
        let d = c.tick(obs(0.005, 1000.0), &mut k);
        assert_eq!(d, Decision::Accept);
    }

    #[test]
    fn warmup_ticks_discard_initial_windows() {
        let mut opts = eager();
        opts.warmup_ticks = 3;
        let mut c = HillClimber::new(opts);
        let mut k = knobs();
        for _ in 0..3 {
            assert_eq!(c.tick(obs(0.010, 1000.0), &mut k), Decision::Hold);
        }
        assert_eq!(c.tick(obs(0.010, 1000.0), &mut k), Decision::Probe);
    }

    #[test]
    fn options_read_from_env() {
        // Serialized with other env tests via --test-threads=1.
        std::env::set_var(TUNE_INTERVAL_MS_ENV, "75");
        std::env::set_var(TUNE_P99_TARGET_MS_ENV, "40");
        std::env::set_var(TUNE_ENV, "on");
        let opts = TuneOptions::from_env();
        assert_eq!(opts.interval, Duration::from_millis(75));
        assert_eq!(opts.p99_target, Some(Duration::from_millis(40)));
        assert!(TuneOptions::enabled_from_env());
        std::env::set_var(TUNE_ENV, "0");
        assert!(!TuneOptions::enabled_from_env());
        std::env::remove_var(TUNE_ENV);
        assert!(!TuneOptions::enabled_from_env());
        std::env::remove_var(TUNE_INTERVAL_MS_ENV);
        std::env::remove_var(TUNE_P99_TARGET_MS_ENV);
        assert_eq!(TuneOptions::from_env(), TuneOptions::default());
    }

    #[test]
    fn p99_target_penalizes_tail() {
        let mut opts = TuneOptions::default();
        opts.p99_target = Some(Duration::from_millis(20));
        let c = HillClimber::new(opts);
        let calm = Observation {
            completed: 10,
            mean_latency_s: 0.010,
            p50_s: 0.010,
            p99_s: 0.015,
            throughput: 100.0,
        };
        let spiky = Observation {
            completed: 10,
            mean_latency_s: 0.010,
            p50_s: 0.010,
            p99_s: 0.030,
            throughput: 100.0,
        };
        assert!(c.objective(&spiky) > c.objective(&calm) + 0.05);
    }

    #[test]
    fn probes_are_judged_against_median_baseline_not_one_window() {
        let opts = TuneOptions {
            hysteresis: 0.05,
            warmup_ticks: 0,
            settle_ticks: 0,
            tune_batching: false,
            tune_cache: false,
            ..TuneOptions::default()
        };
        let mut c = HillClimber::new(opts);
        let mut k = knobs();
        // Baseline truth is 10 ms; the first probe direction regresses.
        assert_eq!(c.tick(obs(0.010, 1000.0), &mut k), Decision::Probe);
        assert_eq!(c.tick(obs(0.012, 1000.0), &mut k), Decision::Rollback);
        // A noisy-fast window (8 ms on the same 10 ms config) opens the
        // next probe, now in the flipped direction...
        assert_eq!(c.tick(obs(0.008, 1000.0), &mut k), Decision::Probe);
        assert_eq!(k.preproc_workers, 3);
        // ...which measures a genuine improvement over the true baseline
        // (9 ms < 10 ms − hysteresis). Judged against the single noisy
        // 8 ms window it would roll back; judged against the median of
        // the recent baseline windows it must stick.
        assert_eq!(c.tick(obs(0.009, 1000.0), &mut k), Decision::Accept);
        assert_eq!(k.preproc_workers, 3);
    }

    #[test]
    fn objective_uses_window_median_so_stall_bursts_do_not_skew_probes() {
        let c = HillClimber::new(TuneOptions::default());
        let calm = Observation {
            completed: 20,
            mean_latency_s: 0.0012,
            p50_s: 0.0012,
            p99_s: 0.002,
            throughput: 140.0,
        };
        // One 60 ms host stall in a 20-sample window quadruples the mean
        // but leaves the median at the typical request — the probe verdict
        // must not swing on it.
        let stalled = Observation {
            mean_latency_s: 0.0048,
            p99_s: 0.060,
            ..calm
        };
        assert_eq!(c.objective(&stalled), c.objective(&calm));
        // A deployment that cannot compute a median falls back to the mean.
        let no_p50 = Observation {
            p50_s: 0.0,
            ..stalled
        };
        assert!(c.objective(&no_p50) > c.objective(&calm));
    }
}

#[cfg(test)]
mod live_tests {
    use super::*;
    use vserve_device::ImageSpec;
    use vserve_dnn::{models, Model};
    use vserve_server::live::{LiveOptions, LiveServer};
    use vserve_workload::synthetic_jpeg;

    #[test]
    fn tuner_reconfigures_a_live_server_and_stops_cleanly() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let live = Arc::new(LiveServer::start(
            model,
            LiveOptions {
                preproc_workers: 2,
                inference_workers: 1,
                max_batch: 8,
                input_side: 32,
                backend_threads: 2,
                ..LiveOptions::default()
            },
        ));
        let opts = TuneOptions {
            interval: Duration::from_millis(15),
            hysteresis: 0.0,
            warmup_ticks: 0,
            ..TuneOptions::default()
        };
        let mut tuner = Tuner::start(live.clone(), opts);
        let decisions = tuner.decisions();
        // Keep traffic flowing while the controller probes.
        for wave in 0..6 {
            let rxs: Vec<_> = (0..8)
                .map(|i| live.submit(synthetic_jpeg(&ImageSpec::new(40, 40, 0), wave * 8 + i)))
                .collect();
            for rx in rxs {
                rx.recv().unwrap().unwrap();
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            decisions.load(Ordering::Relaxed) > 0,
            "controller made no decisions"
        );
        tuner.stop();
        let settled = live.knobs();
        assert!((1..=64).contains(&settled.max_batch));
        assert!(settled.preproc_workers >= 1 && settled.backend_threads >= 1);
        // The server still serves after the controller detaches.
        let r = live
            .infer(synthetic_jpeg(&ImageSpec::new(40, 40, 0), 99))
            .unwrap();
        assert_eq!(r.output.len(), 10);
    }

    /// Satellite guard: on a multi-tenant (two-lane) server the tuner
    /// freezes — zero decisions, zero knob writes — so the scheduler's
    /// per-lane assembly state never oscillates under the controller.
    #[test]
    fn tuner_freezes_on_multi_tenant_server_no_oscillation() {
        use vserve_server::TenantSpec;
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let live = Arc::new(LiveServer::start(
            model,
            LiveOptions {
                preproc_workers: 2,
                inference_workers: 1,
                max_batch: 4,
                input_side: 32,
                backend_threads: 1,
                tenants: vec![
                    TenantSpec::new("lc", "default").weight(4.0),
                    TenantSpec::new("be", "default"),
                ],
                ..LiveOptions::default()
            },
        ));
        assert_eq!(live.lane_count(), 2);
        let before = live.knobs();
        let opts = TuneOptions {
            interval: Duration::from_millis(5),
            hysteresis: 0.0,
            warmup_ticks: 0,
            settle_ticks: 0,
            ..TuneOptions::default()
        };
        let mut tuner = Tuner::start(live.clone(), opts);
        assert!(tuner.is_frozen(), "two lanes must freeze the controller");
        let decisions = tuner.decisions();
        // Drive both lanes through several would-be control intervals.
        for wave in 0..4 {
            let rxs: Vec<_> = (0..8)
                .map(|i| {
                    live.submit_lane(
                        (i % 2) as usize,
                        synthetic_jpeg(&ImageSpec::new(40, 40, 0), 500 + wave * 8 + i),
                    )
                })
                .collect();
            for rx in rxs {
                rx.recv().unwrap().unwrap();
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            decisions.load(Ordering::Relaxed),
            0,
            "frozen tuner must never reconfigure"
        );
        let after = live.knobs();
        assert_eq!(after.max_batch, before.max_batch);
        assert_eq!(after.linger, before.linger);
        assert_eq!(after.preproc_workers, before.preproc_workers);
        assert_eq!(after.backend_threads, before.backend_threads);
        tuner.stop();
        // Single-lane control is unaffected by the guard.
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let solo = Arc::new(LiveServer::start(
            model,
            LiveOptions {
                preproc_workers: 1,
                inference_workers: 1,
                input_side: 32,
                backend_threads: 1,
                ..LiveOptions::default()
            },
        ));
        let t = Tuner::start(solo, TuneOptions::default());
        assert!(!t.is_frozen());
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use vserve_device::{ImageSpec, NodeConfig};
    use vserve_server::{ModelProfile, ServerConfig};
    use vserve_workload::ImageMix;

    #[test]
    fn replay_recovers_starved_preproc_capacity() {
        // Same starved regime as the server crate's controller test, but
        // driven by the real HillClimber instead of a scripted hook.
        let mut config = ServerConfig::optimized_cpu_preproc();
        config.preproc_workers = 1;
        let exp = Experiment {
            node: NodeConfig::paper_testbed(),
            config,
            model: ModelProfile::vit_base(),
            mix: ImageMix::fixed(ImageSpec::medium()),
            concurrency: 1,
            warmup_s: 0.5,
            measure_s: 2.5,
            seed: 77,
        };
        let starved = exp.run_open(Arrivals::poisson(1200.0));
        let opts = TuneOptions {
            interval: Duration::from_millis(50),
            warmup_ticks: 1,
            ..TuneOptions::default()
        };
        let tuned = replay_experiment(&exp, Arrivals::poisson(1200.0), opts);
        assert!(
            tuned.throughput > starved.throughput * 1.2,
            "tuned {} vs starved {}",
            tuned.throughput,
            starved.throughput
        );
        assert!(
            tuned.latency.mean < starved.latency.mean * 0.6,
            "tuned {} vs starved {}",
            tuned.latency.mean,
            starved.latency.mean
        );
    }
}
