//! Content-addressed cache of preprocessed tensors.
//!
//! Serving workloads repeat payloads — the same thumbnail fanned out to
//! several models, retried uploads, hot images in a feed — and the paper
//! shows preprocessing is the dominant per-request cost, so a hit here
//! removes the most expensive stage entirely. Entries are keyed by the
//! payload bytes (FNV-1a content hash + length) and the target input
//! side, hold the finished NCHW tensor behind an [`Arc`], and are evicted
//! least-recently-used under a byte budget.
//!
//! The cache itself is a plain mutable structure; `LiveServer` wraps it
//! in a `Mutex` and keeps only O(log n) work (hash-map + recency-index
//! updates) inside the critical section — decoding always happens outside
//! the lock. The in-flight coalescing counter also lives here so one
//! stats snapshot describes the whole duplicate-suppression story.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use vserve_tensor::Tensor;

/// Environment variable read when
/// [`LiveOptions::preproc_cache_mb`](crate::live::LiveOptions::preproc_cache_mb)
/// is `None`: cache capacity in MiB. `0` disables the cache.
pub const PREPROC_CACHE_MB_ENV: &str = "VSERVE_PREPROC_CACHE_MB";

/// Default cache capacity in MiB when neither the option nor the
/// environment variable is set.
pub const DEFAULT_PREPROC_CACHE_MB: usize = 32;

/// Resolves a configured capacity: explicit option, else
/// [`PREPROC_CACHE_MB_ENV`], else [`DEFAULT_PREPROC_CACHE_MB`].
pub fn resolve_capacity_mb(configured: Option<usize>) -> usize {
    configured.unwrap_or_else(|| {
        std::env::var(PREPROC_CACHE_MB_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_PREPROC_CACHE_MB)
    })
}

/// 64-bit FNV-1a hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content-addressed key: payload hash + length (a cheap second factor
/// against hash collisions) + target input side + preprocessing spec.
///
/// The spec fingerprint exists because two co-resident models can share
/// an input side while disagreeing on everything else about
/// preprocessing (normalization constants, fast vs baseline decode). A
/// side-only key would alias their tensors and silently serve one
/// model's normalization to the other; folding the spec in makes such
/// entries distinct by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a hash of the payload bytes.
    pub hash: u64,
    /// Payload length in bytes.
    pub len: usize,
    /// Target model input side the tensor was preprocessed for.
    pub side: usize,
    /// Fingerprint of the preprocessing spec that produced the tensor
    /// (see [`preproc_spec_fingerprint`]); `0` is the legacy
    /// default-pipeline spec.
    pub spec: u64,
}

/// Fingerprints a preprocessing specification for [`CacheKey::spec`].
///
/// Inputs are the knobs that change the produced tensor for identical
/// payload bytes and side: the decode path (`fast` vs baseline) and the
/// per-channel normalization constants. Models using the default
/// pipeline should key with spec `0` ([`CacheKey::for_payload`]);
/// anything custom hashes its constants through here.
pub fn preproc_spec_fingerprint(fast: bool, mean: &[f32; 3], std: &[f32; 3]) -> u64 {
    let mut bytes = Vec::with_capacity(1 + 6 * 4);
    bytes.push(u8::from(fast));
    for v in mean.iter().chain(std.iter()) {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}

impl CacheKey {
    /// Keys a payload for a given target side under the default
    /// preprocessing spec (`spec = 0`).
    pub fn for_payload(payload: &[u8], side: usize) -> CacheKey {
        CacheKey::for_payload_spec(payload, side, 0)
    }

    /// Keys a payload for a given target side and preprocessing-spec
    /// fingerprint.
    pub fn for_payload_spec(payload: &[u8], side: usize, spec: u64) -> CacheKey {
        CacheKey {
            hash: fnv1a(payload),
            len: payload.len(),
            side,
            spec,
        }
    }
}

/// Counters describing cache and coalescing behavior since server start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocCacheStats {
    /// Requests served from a cached tensor (preprocessing skipped).
    pub hits: u64,
    /// Requests that looked up the cache and had to preprocess.
    pub misses: u64,
    /// Requests that attached to another request's in-flight
    /// preprocessing instead of decoding themselves.
    pub coalesced: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident (tensor payloads).
    pub bytes: usize,
    /// Configured byte budget; `0` means the cache is disabled.
    pub capacity_bytes: usize,
}

/// LRU cache of preprocessed tensors under a byte budget.
///
/// Recency is tracked with a monotonic sequence number per entry and a
/// `BTreeMap` from sequence to key, so both touch and evict-oldest are
/// O(log n) without external dependencies.
#[derive(Debug)]
pub struct PreprocCache {
    capacity_bytes: usize,
    entries: HashMap<CacheKey, (Arc<Tensor>, u64)>,
    recency: BTreeMap<u64, CacheKey>,
    seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
}

fn tensor_bytes(t: &Tensor) -> usize {
    t.as_slice().len() * std::mem::size_of::<f32>()
}

impl PreprocCache {
    /// Creates a cache with a byte budget; `0` disables it (every lookup
    /// misses silently and inserts are dropped).
    pub fn new(capacity_bytes: usize) -> Self {
        PreprocCache {
            capacity_bytes,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            seq: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            coalesced: 0,
            evictions: 0,
        }
    }

    /// Creates a cache with a MiB budget.
    pub fn with_capacity_mb(mb: usize) -> Self {
        PreprocCache::new(mb * 1024 * 1024)
    }

    /// Whether the cache stores anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Current byte budget (`0` = disabled).
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Retargets the byte budget at runtime, evicting least-recently-used
    /// entries immediately until the resident set fits. Shrinking to `0`
    /// disables the cache and evicts everything; growing takes effect on
    /// the next insert with no churn.
    pub fn set_capacity_bytes(&mut self, bytes: usize) {
        self.capacity_bytes = bytes;
        self.evict_to_budget();
    }

    /// Evicts LRU entries until `bytes <= capacity_bytes`.
    fn evict_to_budget(&mut self) {
        while self.bytes > self.capacity_bytes {
            let (&oldest, &victim) = self.recency.iter().next().expect("over budget → non-empty");
            self.recency.remove(&oldest);
            let (evicted, _) = self
                .entries
                .remove(&victim)
                .expect("recency/entries in sync");
            self.bytes -= tensor_bytes(&evicted);
            self.evictions += 1;
        }
    }

    /// Looks up a key, refreshing its recency. Counts a hit or miss;
    /// disabled caches return `None` without counting.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Tensor>> {
        if !self.enabled() {
            return None;
        }
        match self.entries.get_mut(key) {
            Some((tensor, seq)) => {
                self.recency.remove(seq);
                self.seq += 1;
                *seq = self.seq;
                self.recency.insert(self.seq, *key);
                self.hits += 1;
                Some(Arc::clone(tensor))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a tensor, evicting least-recently-used entries until the
    /// byte budget holds. Tensors larger than the whole budget (and all
    /// inserts on a disabled cache) are dropped without churn.
    pub fn insert(&mut self, key: CacheKey, tensor: Arc<Tensor>) {
        let size = tensor_bytes(&tensor);
        if !self.enabled() || size > self.capacity_bytes {
            return;
        }
        if let Some((old, seq)) = self.entries.remove(&key) {
            self.recency.remove(&seq);
            self.bytes -= tensor_bytes(&old);
        }
        self.seq += 1;
        self.entries.insert(key, (tensor, self.seq));
        self.recency.insert(self.seq, key);
        self.bytes += size;
        self.evict_to_budget();
    }

    /// Records one request attaching to an in-flight preprocessing
    /// execution (the coalesce counter in [`PreprocCacheStats`]).
    pub fn note_coalesced(&mut self) {
        self.coalesced += 1;
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PreprocCacheStats {
        PreprocCacheStats {
            hits: self.hits,
            misses: self.misses,
            coalesced: self.coalesced,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(side: usize) -> Arc<Tensor> {
        Arc::new(Tensor::zeros(&[1, 3, side, side]))
    }

    fn key(i: u64) -> CacheKey {
        CacheKey {
            hash: i,
            len: i as usize,
            side: 8,
            spec: 0,
        }
    }

    #[test]
    fn content_key_distinguishes_payload_and_side() {
        let a = CacheKey::for_payload(b"abc", 224);
        assert_eq!(a, CacheKey::for_payload(b"abc", 224));
        assert_ne!(a, CacheKey::for_payload(b"abd", 224));
        assert_ne!(a, CacheKey::for_payload(b"abc", 160));
    }

    /// Satellite (ISSUE 9): two co-resident models with the same input
    /// side but different preprocessing specs must not alias in the
    /// cache. A side-only key would serve model A's normalization to
    /// model B; the spec fingerprint keeps the entries distinct.
    #[test]
    fn same_side_different_spec_does_not_collide() {
        let mean_a = [0.485, 0.456, 0.406];
        let std_a = [0.229, 0.224, 0.225];
        let mean_b = [0.5, 0.5, 0.5];
        let std_b = [0.5, 0.5, 0.5];
        let spec_a = preproc_spec_fingerprint(false, &mean_a, &std_a);
        let spec_b = preproc_spec_fingerprint(false, &mean_b, &std_b);
        assert_ne!(spec_a, spec_b, "distinct normalization → distinct spec");
        // Same bytes, same side, different specs → different keys.
        let ka = CacheKey::for_payload_spec(b"img", 224, spec_a);
        let kb = CacheKey::for_payload_spec(b"img", 224, spec_b);
        assert_ne!(ka, kb);
        // And the cache keeps both tensors resident independently.
        let mut c = PreprocCache::new(1 << 20);
        let ta = tensor(8);
        c.insert(ka, Arc::clone(&ta));
        c.insert(kb, tensor(8));
        assert_eq!(c.stats().entries, 2);
        assert!(Arc::ptr_eq(&c.get(&ka).unwrap(), &ta));
        // Decode path is part of the spec too: fast vs baseline decode
        // of the same payload produce different tensors.
        let spec_fast = preproc_spec_fingerprint(true, &mean_a, &std_a);
        assert_ne!(spec_fast, spec_a);
        // Legacy default-pipeline keys (spec 0) are unaffected.
        assert_eq!(CacheKey::for_payload(b"img", 224).spec, 0);
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = PreprocCache::new(1 << 20);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), tensor(4));
        assert!(c.get(&key(1)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    /// Satellite: eviction respects the byte budget, in LRU order.
    #[test]
    fn eviction_respects_byte_budget_lru_order() {
        let one = 3 * 8 * 8 * 4; // bytes per [1,3,8,8] tensor
        let mut c = PreprocCache::new(2 * one);
        c.insert(key(1), tensor(8));
        c.insert(key(2), tensor(8));
        assert_eq!(c.stats().bytes, 2 * one);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), tensor(8));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.capacity_bytes);
        assert_eq!(s.entries, 2);
        assert!(
            c.get(&key(2)).is_none(),
            "LRU entry must be the one evicted"
        );
        assert!(c.get(&key(1)).is_some() && c.get(&key(3)).is_some());
    }

    #[test]
    fn oversized_and_disabled_inserts_are_dropped() {
        let mut off = PreprocCache::new(0);
        off.insert(key(1), tensor(8));
        assert!(off.get(&key(1)).is_none());
        let s = off.stats();
        assert_eq!((s.entries, s.hits, s.misses), (0, 0, 0));

        let mut tiny = PreprocCache::new(16);
        tiny.insert(key(1), tensor(8));
        assert_eq!(tiny.stats().entries, 0);
        assert_eq!(tiny.stats().evictions, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting_bytes() {
        let one = 3 * 8 * 8 * 4;
        let mut c = PreprocCache::new(4 * one);
        c.insert(key(1), tensor(8));
        c.insert(key(1), tensor(8));
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (1, one));
    }

    /// Satellite: the byte budget is a runtime knob, not a construction
    /// constant — shrinking evicts LRU-first immediately.
    #[test]
    fn resize_shrink_evicts_lru_immediately() {
        let one = 3 * 8 * 8 * 4;
        let mut c = PreprocCache::new(4 * one);
        for i in 1..=4 {
            c.insert(key(i), tensor(8));
        }
        // Touch 1 and 2 so 3 and 4 are the LRU victims.
        assert!(c.get(&key(1)).is_some() && c.get(&key(2)).is_some());
        c.set_capacity_bytes(2 * one);
        let s = c.stats();
        assert_eq!((s.entries, s.bytes, s.evictions), (2, 2 * one, 2));
        assert_eq!(c.capacity_bytes(), 2 * one);
        assert!(c.get(&key(3)).is_none() && c.get(&key(4)).is_none());
        assert!(c.get(&key(1)).is_some() && c.get(&key(2)).is_some());
    }

    #[test]
    fn resize_to_zero_disables_and_drains() {
        let mut c = PreprocCache::new(1 << 20);
        c.insert(key(1), tensor(8));
        c.set_capacity_bytes(0);
        assert!(!c.enabled());
        let s = c.stats();
        assert_eq!((s.entries, s.bytes, s.evictions), (0, 0, 1));
        // Disabled semantics now match a cache constructed with 0.
        c.insert(key(2), tensor(8));
        assert!(c.get(&key(2)).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn resize_grow_keeps_entries_and_admits_more() {
        let one = 3 * 8 * 8 * 4;
        let mut c = PreprocCache::new(one);
        c.insert(key(1), tensor(8));
        c.set_capacity_bytes(3 * one);
        c.insert(key(2), tensor(8));
        c.insert(key(3), tensor(8));
        let s = c.stats();
        assert_eq!((s.entries, s.evictions), (3, 0));
    }

    #[test]
    fn capacity_resolution_prefers_explicit_option() {
        assert_eq!(resolve_capacity_mb(Some(7)), 7);
        assert_eq!(resolve_capacity_mb(Some(0)), 0);
        // None falls back to env/default; with the variable unset this is
        // the default. (Not asserting the env path to keep the test
        // hermetic under parallel execution.)
        if std::env::var(PREPROC_CACHE_MB_ENV).is_err() {
            assert_eq!(resolve_capacity_mb(None), DEFAULT_PREPROC_CACHE_MB);
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
