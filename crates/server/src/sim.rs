//! The discrete-event model of the throughput-optimized inference server.
//!
//! Requests flow through the stages of Fig 2: dispatch on the host CPU,
//! preprocessing (CPU worker pool or batched GPU decode), host staging and
//! PCIe transfers (processor-sharing links), a dynamic batcher, and model
//! instances on each GPU. Every stage is driven by the calibrated cost
//! models of `vserve-device`; every request records a per-stage time
//! breakdown.

use std::collections::HashMap;

use vserve_device::{energy_report, EngineKind, ImageSpec, NodeConfig};
use vserve_metrics::{LatencyStats, RateMeter, StageBreakdown, TimeWeightedGauge, Welford};
use vserve_sim::rng::RngStream;
use vserve_sim::{Engine, EventId, MultiServer, SharedBandwidth, SimDuration, SimTime};
use vserve_workload::{Arrivals, ImageMix};

use vserve_sched::{DrrPicker, LaneView};

use crate::config::{ModelProfile, PreprocPath, PreprocWhere, RpcPath, ServerConfig, StageMode};
use crate::report::{stages, LaneReport, ServerReport};

/// Per-request device-memory overhead while its state lives on the GPU
/// (stream/context/pinned-buffer bookkeeping) — drives the Fig 5
/// high-concurrency decline for GPU preprocessing.
const GPU_REQUEST_OVERHEAD_BYTES: f64 = 6.0 * 1024.0 * 1024.0;
/// Eviction slowdown applied to the overflowing fraction of in-flight
/// device memory (reload from host + re-decode of ousted inputs).
const EVICTION_PENALTY: f64 = 1.5;
/// Head-of-line timeout standing in for fixed (client-side) batching.
const FIXED_BATCH_TIMEOUT_S: f64 = 0.05;
/// Relative power draw of GPU decode/resize kernels versus dense GEMMs;
/// scales preprocessing busy-time in the energy integral (Fig 8).
const PREPROC_POWER_WEIGHT: f64 = 0.6;

type Eng = Engine<ServerSim>;
type ReqId = usize;

#[derive(Debug, Clone)]
struct Request {
    img: ImageSpec,
    arrived: SimTime,
    queue_s: f64,
    dispatch_s: f64,
    /// Client→server wire time for the request bytes (TCP path only).
    net_transfer_s: f64,
    /// Request frame parse + socket bookkeeping (TCP path only).
    deserialize_s: f64,
    preproc_s: f64,
    transfer_s: f64,
    infer_s: f64,
    gpu: usize,
    mem_bytes: f64,
    /// Tenant-lane index (always 0 on single-lane configurations).
    tenant: u32,
}

#[derive(Debug)]
struct GpuState {
    pcie: SharedBandwidth,
    pcie_jobs: HashMap<u64, (ReqId, SimTime, PcieNext)>,
    pre_queue: Vec<ReqId>,
    pre_busy: usize,
    pre_gauge: TimeWeightedGauge,
    inf_queue: Vec<(ReqId, SimTime)>,
    /// Requests routed to this GPU that have not yet reached the batch
    /// queue; when zero, the batcher launches partial batches immediately
    /// (waiting could not fill them).
    incoming: usize,
    free_instances: usize,
    inf_gauge: TimeWeightedGauge,
    inflight_bytes: f64,
    /// High-water mark of in-flight device memory (Fig 5 diagnosis).
    inflight_peak: f64,
    /// Pending batcher timer, keyed by the deadline it was armed for. When
    /// the queue head changes (e.g. a full batch launches between arming
    /// and firing) the stale timer is cancelled and a fresh one armed at
    /// the new head's deadline, so every head waits exactly
    /// `max_queue_delay` — never a stale deadline inherited from an
    /// already-served request.
    batch_timer: Option<(SimTime, EventId)>,
    /// Weighted-fair/strict-priority lane picker — the same `DrrPicker`
    /// the live scheduler runs, so sim replays reproduce its interleaving
    /// exactly. Unused on single-lane configurations.
    picker: DrrPicker,
}

#[derive(Debug, Clone, Copy)]
enum PcieNext {
    GpuPreproc,
    Inference,
}

#[derive(Debug, Clone, Copy)]
enum StagingNext {
    PcieCompressed,
    PcieTensor,
}

struct ServerSim {
    node: NodeConfig,
    config: ServerConfig,
    model: ModelProfile,
    mix: ImageMix,
    rng: RngStream,
    closed_loop: bool,
    arrivals: Option<Arrivals>,

    dispatch: MultiServer<ReqId>,
    preproc_pool: MultiServer<ReqId>,
    staging: SharedBandwidth,
    staging_jobs: HashMap<u64, (ReqId, SimTime, StagingNext)>,
    gpus: Vec<GpuState>,
    requests: Vec<Option<Request>>,
    next_gpu: usize,

    measuring: bool,
    window_open: f64,
    /// Always-on windowed latency drained by the control tick — the sim
    /// mirror of `LiveServer::take_latency_window` (it must observe the
    /// warm-up too, or the controller would fly blind until measurement).
    ctl_window: LatencyStats,
    latency: LatencyStats,
    breakdown: StageBreakdown,
    meter: RateMeter,
    batch_sizes: Welford,
    cpu_busy: TimeWeightedGauge,
    staging_bytes_at_open: f64,
    pcie_bytes_at_open: f64,
    extra_transfer_bytes: f64,

    /// Per-lane round-trip latency (multi-tenant configs; empty otherwise).
    lane_latency: Vec<LatencyStats>,
    /// Per-lane mean queueing seconds — the interference signal a
    /// best-effort flood inflates for a latency-critical lane.
    lane_queue: Vec<Welford>,
    /// Per-lane completions inside the measurement window.
    lane_completed: Vec<u64>,
}

impl ServerSim {
    fn new(
        node: NodeConfig,
        config: ServerConfig,
        model: ModelProfile,
        mix: ImageMix,
        seed: u64,
        closed_loop: bool,
    ) -> Self {
        let gpus = (0..node.gpu_count)
            .map(|_| GpuState {
                pcie: SharedBandwidth::new(node.gpu.pcie_bytes_per_s),
                pcie_jobs: HashMap::new(),
                pre_queue: Vec::new(),
                pre_busy: 0,
                pre_gauge: TimeWeightedGauge::new(0.0, 0.0),
                inf_queue: Vec::new(),
                incoming: 0,
                free_instances: config.instances_per_gpu,
                inf_gauge: TimeWeightedGauge::new(0.0, 0.0),
                inflight_bytes: 0.0,
                inflight_peak: 0.0,
                batch_timer: None,
                picker: DrrPicker::new(1.0),
            })
            .collect();
        let n_lanes = config.tenants.len();
        ServerSim {
            node,
            mix,
            rng: RngStream::derive(seed, "server"),
            closed_loop,
            arrivals: None,
            // Each front-end shard brings its own dispatch threads and
            // CPU preprocessing pool (the live router binds one full
            // `NetServer` stack per shard).
            dispatch: MultiServer::new(4 * config.shards.max(1)),
            preproc_pool: MultiServer::new(config.preproc_workers.max(1) * config.shards.max(1)),
            staging: SharedBandwidth::new(node.cpu.staging_bytes_per_s),
            staging_jobs: HashMap::new(),
            gpus,
            requests: Vec::new(),
            next_gpu: 0,
            measuring: false,
            window_open: 0.0,
            ctl_window: LatencyStats::new(),
            latency: LatencyStats::new(),
            breakdown: StageBreakdown::new(),
            meter: RateMeter::new(),
            batch_sizes: Welford::new(),
            cpu_busy: TimeWeightedGauge::new(0.0, 0.0),
            staging_bytes_at_open: 0.0,
            pcie_bytes_at_open: 0.0,
            extra_transfer_bytes: 0.0,
            lane_latency: (0..n_lanes).map(|_| LatencyStats::new()).collect(),
            lane_queue: (0..n_lanes).map(|_| Welford::new()).collect(),
            lane_completed: vec![0; n_lanes],
            config,
            model,
        }
    }

    fn req(&mut self, id: ReqId) -> &mut Request {
        self.requests[id].as_mut().expect("live request")
    }

    /// Mean-one lognormal service-time noise: real servers see variance
    /// from cache state, clocks, and co-scheduling, and the dynamic-vs-
    /// fixed batching trade (Fig 3 rungs 4-5) only exists under variance.
    fn jitter(&mut self, sigma: f64) -> f64 {
        self.rng.log_normal(-sigma * sigma / 2.0, sigma)
    }
}

// ---------------------------------------------------------------------------
// request lifecycle handlers
// ---------------------------------------------------------------------------

fn inject(sim: &mut ServerSim, eng: &mut Eng) {
    let img = sim.mix.sample(&mut sim.rng);
    let id = sim.requests.len();
    sim.requests.push(Some(Request {
        img,
        arrived: eng.now(),
        queue_s: 0.0,
        dispatch_s: 0.0,
        net_transfer_s: 0.0,
        deserialize_s: 0.0,
        preproc_s: 0.0,
        transfer_s: 0.0,
        infer_s: 0.0,
        gpu: 0,
        mem_bytes: 0.0,
        // Deterministic round-robin lane assignment: request `id` belongs
        // to tenant `id mod lanes`, so replays with the same seed hit the
        // same lanes in the same order.
        tenant: (id % sim.config.tenants.len().max(1)) as u32,
    }));
    match sim.config.rpc {
        RpcPath::InProcess => offer_dispatch(sim, eng, id),
        RpcPath::Tcp => {
            // The RPC leg `vserve-net` measures on a real socket: the
            // request bytes cross the wire, then the frame is parsed —
            // both before the request exists for the dispatcher.
            let transfer = sim.node.cpu.serialize_time(img.compressed_bytes) * sim.jitter(0.2);
            // Sharded deployments pay one extra frame-parse hop at the
            // router tier before the shard's own deserialize.
            let hops = if sim.config.shards > 1 { 2.0 } else { 1.0 };
            let deserialize = hops * sim.node.cpu.rpc_time() * sim.jitter(0.2);
            {
                let rq = sim.req(id);
                rq.net_transfer_s = transfer;
                rq.deserialize_s = deserialize;
            }
            eng.schedule_in(
                SimDuration::from_secs_f64(transfer + deserialize),
                Box::new(move |sim: &mut ServerSim, eng: &mut Eng| offer_dispatch(sim, eng, id)),
            );
        }
    }
}

fn offer_dispatch(sim: &mut ServerSim, eng: &mut Eng, id: ReqId) {
    let now = eng.now();
    if let Some((job, enq)) = sim.dispatch.offer(now, id) {
        start_dispatch(sim, eng, job, enq);
    }
}

fn start_dispatch(sim: &mut ServerSim, eng: &mut Eng, id: ReqId, enqueued: SimTime) {
    let now = eng.now();
    sim.req(id).queue_s += (now - enqueued).as_secs_f64();
    let t = sim
        .node
        .cpu
        .dispatch_time(&sim.requests[id].as_ref().expect("live").img)
        * sim.jitter(0.2);
    sim.cpu_busy.add(now.as_secs_f64(), 1.0);
    eng.schedule_in(
        SimDuration::from_secs_f64(t),
        Box::new(move |sim: &mut ServerSim, eng: &mut Eng| dispatch_done(sim, eng, id, t)),
    );
}

fn dispatch_done(sim: &mut ServerSim, eng: &mut Eng, id: ReqId, took: f64) {
    let now = eng.now();
    sim.cpu_busy.add(now.as_secs_f64(), -1.0);
    sim.req(id).dispatch_s += took;
    if let Some((next, enq)) = sim.dispatch.release(now) {
        start_dispatch(sim, eng, next, enq);
    }
    // Assign the target GPU round-robin (the load balancer of Fig 1).
    let gpu = sim.next_gpu;
    sim.next_gpu = (sim.next_gpu + 1) % sim.gpus.len();
    sim.req(id).gpu = gpu;
    if sim.config.stage_mode != StageMode::PreprocOnly {
        sim.gpus[gpu].incoming += 1;
    }

    match (sim.config.stage_mode, sim.config.preproc) {
        (StageMode::InferenceOnly, _) => {
            // The client sends the already-preprocessed fp32 input tensor
            // (§4.4: ≈5× the medium image's compressed size), so this
            // mode pays a much larger transfer than the end-to-end path.
            let bytes = ImageSpec::tensor_bytes(sim.config.input_side(&sim.model));
            start_staging(sim, eng, id, bytes as f64, StagingNext::PcieTensor);
        }
        (_, PreprocWhere::Cpu) => {
            if let Some((job, enq)) = sim.preproc_pool.offer(now, id) {
                start_cpu_preproc(sim, eng, job, enq);
            }
        }
        (_, PreprocWhere::Gpu) => {
            let bytes = sim.requests[id]
                .as_ref()
                .expect("live")
                .img
                .compressed_bytes;
            start_staging(sim, eng, id, bytes as f64, StagingNext::PcieCompressed);
        }
    }
}

fn start_cpu_preproc(sim: &mut ServerSim, eng: &mut Eng, id: ReqId, enqueued: SimTime) {
    let now = eng.now();
    sim.req(id).queue_s += (now - enqueued).as_secs_f64();
    let img = sim.requests[id].as_ref().expect("live").img;
    let side = sim.config.input_side(&sim.model);
    let hit = sim.config.preproc_cache_hit_rate > 0.0
        && sim.rng.uniform(0.0, 1.0) < sim.config.preproc_cache_hit_rate;
    let base = if hit {
        sim.node.cpu.cache_hit_time(&img)
    } else {
        match sim.config.preproc_path {
            PreprocPath::Baseline => sim.node.cpu.preprocess_time(&img, side),
            PreprocPath::Fast => sim.node.cpu.preprocess_time_fast(&img, side),
        }
    };
    let t = base * sim.jitter(0.12);
    sim.cpu_busy.add(now.as_secs_f64(), 1.0);
    eng.schedule_in(
        SimDuration::from_secs_f64(t),
        Box::new(move |sim: &mut ServerSim, eng: &mut Eng| cpu_preproc_done(sim, eng, id, t)),
    );
}

fn cpu_preproc_done(sim: &mut ServerSim, eng: &mut Eng, id: ReqId, took: f64) {
    let now = eng.now();
    sim.cpu_busy.add(now.as_secs_f64(), -1.0);
    sim.req(id).preproc_s += took;
    if let Some((next, enq)) = sim.preproc_pool.release(now) {
        start_cpu_preproc(sim, eng, next, enq);
    }
    if sim.config.stage_mode == StageMode::PreprocOnly {
        complete(sim, eng, id);
        return;
    }
    let bytes = ImageSpec::tensor_bytes(sim.config.input_side(&sim.model)) as f64;
    start_staging(sim, eng, id, bytes, StagingNext::PcieTensor);
}

/// Open-loop arrival pump: inject, then schedule the next arrival from
/// the configured process.
fn pump_arrivals(sim: &mut ServerSim, eng: &mut Eng) {
    inject(sim, eng);
    let gap = {
        let mut arrivals = sim.arrivals.take().expect("open-loop pump has arrivals");
        let gap = arrivals.next_gap(&mut sim.rng);
        sim.arrivals = Some(arrivals);
        gap
    };
    eng.schedule_in(
        SimDuration::from_secs_f64(gap),
        Box::new(|sim: &mut ServerSim, eng: &mut Eng| pump_arrivals(sim, eng)),
    );
}

// ---------------------------------------------------------------------------
// processor-sharing transfers
// ---------------------------------------------------------------------------

fn start_staging(sim: &mut ServerSim, eng: &mut Eng, id: ReqId, bytes: f64, next: StagingNext) {
    let now = eng.now();
    let job = sim.staging.start(now, bytes);
    sim.staging_jobs.insert(job, (id, now, next));
    arm_staging(sim, eng);
}

fn arm_staging(sim: &mut ServerSim, eng: &mut Eng) {
    if let Some(c) = sim.staging.next_completion(eng.now()) {
        eng.schedule_at(
            c.at,
            Box::new(move |sim: &mut ServerSim, eng: &mut Eng| {
                if c.epoch != sim.staging.epoch() {
                    return; // superseded by a later arrival/departure
                }
                let done = sim.staging.take_completed(eng.now());
                for job in done {
                    let (id, started, next) =
                        sim.staging_jobs.remove(&job).expect("tracked staging job");
                    let now = eng.now();
                    sim.req(id).transfer_s += (now - started).as_secs_f64();
                    let gpu = sim.requests[id].as_ref().expect("live").gpu;
                    let img = sim.requests[id].as_ref().expect("live").img;
                    match next {
                        StagingNext::PcieCompressed => start_pcie(
                            sim,
                            eng,
                            gpu,
                            id,
                            img.compressed_bytes as f64,
                            PcieNext::GpuPreproc,
                        ),
                        StagingNext::PcieTensor => {
                            let b = ImageSpec::tensor_bytes(sim.config.input_side(&sim.model));
                            start_pcie(sim, eng, gpu, id, b as f64, PcieNext::Inference)
                        }
                    }
                }
                arm_staging(sim, eng);
            }),
        );
    }
}

fn start_pcie(
    sim: &mut ServerSim,
    eng: &mut Eng,
    gpu: usize,
    id: ReqId,
    bytes: f64,
    next: PcieNext,
) {
    let now = eng.now();
    let job = sim.gpus[gpu].pcie.start(now, bytes);
    sim.gpus[gpu].pcie_jobs.insert(job, (id, now, next));
    arm_pcie(sim, eng, gpu);
}

fn arm_pcie(sim: &mut ServerSim, eng: &mut Eng, gpu: usize) {
    if let Some(c) = sim.gpus[gpu].pcie.next_completion(eng.now()) {
        eng.schedule_at(
            c.at,
            Box::new(move |sim: &mut ServerSim, eng: &mut Eng| {
                if c.epoch != sim.gpus[gpu].pcie.epoch() {
                    return;
                }
                let done = sim.gpus[gpu].pcie.take_completed(eng.now());
                for job in done {
                    let (id, started, next) = sim.gpus[gpu]
                        .pcie_jobs
                        .remove(&job)
                        .expect("tracked pcie job");
                    let now = eng.now();
                    sim.req(id).transfer_s += (now - started).as_secs_f64();
                    match next {
                        PcieNext::GpuPreproc => {
                            // Compressed bytes now on device; charge decode
                            // working memory and queue for batched decode.
                            let img = sim.requests[id].as_ref().expect("live").img;
                            charge_memory(
                                sim,
                                gpu,
                                id,
                                img.decoded_bytes() as f64 * 2.0 + GPU_REQUEST_OVERHEAD_BYTES,
                            );
                            sim.gpus[gpu].pre_queue.push(id);
                            try_start_gpu_preproc(sim, eng, gpu);
                        }
                        PcieNext::Inference => {
                            let side = sim.config.input_side(&sim.model);
                            let bytes = ImageSpec::tensor_bytes(side) as f64;
                            charge_memory(sim, gpu, id, bytes);
                            let now = eng.now();
                            sim.gpus[gpu].incoming -= 1;
                            sim.gpus[gpu].inf_queue.push((id, now));
                            try_form_batch(sim, eng, gpu);
                        }
                    }
                }
                arm_pcie(sim, eng, gpu);
            }),
        );
    }
}

fn charge_memory(sim: &mut ServerSim, gpu: usize, id: ReqId, bytes: f64) {
    let old = sim.requests[id].as_ref().expect("live").mem_bytes;
    sim.gpus[gpu].inflight_bytes += bytes - old;
    if sim.gpus[gpu].inflight_bytes > sim.gpus[gpu].inflight_peak {
        sim.gpus[gpu].inflight_peak = sim.gpus[gpu].inflight_bytes;
    }
    sim.req(id).mem_bytes = bytes;
}

// ---------------------------------------------------------------------------
// GPU preprocessing (batched decode unit)
// ---------------------------------------------------------------------------

fn try_start_gpu_preproc(sim: &mut ServerSim, eng: &mut Eng, gpu: usize) {
    while sim.gpus[gpu].pre_busy < sim.config.gpu_preproc_streams
        && !sim.gpus[gpu].pre_queue.is_empty()
    {
        let n = sim.gpus[gpu].pre_queue.len().min(sim.config.preproc_batch);
        let items: Vec<ReqId> = sim.gpus[gpu].pre_queue.drain(..n).collect();
        let g = &sim.node.gpu;
        let px_sum: f64 = items
            .iter()
            .map(|&id| sim.requests[id].as_ref().expect("live").img.pixels() as f64)
            .sum();
        let mut service =
            g.preproc_batch_fixed_s + n as f64 * g.preproc_image_s + g.preproc_s_per_px * px_sum;
        // A cold unit pays the zero-load setup penalty, and a lone image
        // additionally decodes at low occupancy (why lone small images
        // prefer CPU preprocessing in Fig 6). Batches forming after a
        // stall pay only the setup part.
        if sim.gpus[gpu].pre_busy == 0 && sim.gpus[gpu].pre_gauge.value() == 0.0 {
            service += (g.preproc_zero_fixed_s - g.preproc_batch_fixed_s).max(0.0);
            if n == 1 {
                service += (g.preproc_zero_s_per_px - g.preproc_s_per_px).max(0.0) * px_sum;
            }
        }
        service *= sim.jitter(0.12);
        let now = eng.now();
        sim.gpus[gpu].pre_busy += 1;
        let busy = sim.gpus[gpu].pre_busy as f64;
        // Decode streams likewise time-share the GPU's decode throughput.
        service *= busy;
        sim.gpus[gpu].pre_gauge.set(now.as_secs_f64(), busy);
        eng.schedule_in(
            SimDuration::from_secs_f64(service),
            Box::new(move |sim: &mut ServerSim, eng: &mut Eng| {
                gpu_preproc_done(sim, eng, gpu, items, service)
            }),
        );
    }
}

fn gpu_preproc_done(
    sim: &mut ServerSim,
    eng: &mut Eng,
    gpu: usize,
    items: Vec<ReqId>,
    service: f64,
) {
    let now = eng.now();
    sim.gpus[gpu].pre_busy -= 1;
    let busy = sim.gpus[gpu].pre_busy as f64;
    sim.gpus[gpu].pre_gauge.set(now.as_secs_f64(), busy);
    let per_image = service / items.len() as f64;
    let side = sim.config.input_side(&sim.model);
    for id in items {
        sim.req(id).preproc_s += per_image;
        if sim.config.stage_mode == StageMode::PreprocOnly {
            charge_memory(sim, gpu, id, 0.0);
            complete(sim, eng, id);
        } else {
            charge_memory(
                sim,
                gpu,
                id,
                ImageSpec::tensor_bytes(side) as f64 + GPU_REQUEST_OVERHEAD_BYTES,
            );
            sim.gpus[gpu].incoming -= 1;
            sim.gpus[gpu].inf_queue.push((id, now));
        }
    }
    try_form_batch(sim, eng, gpu);
    try_start_gpu_preproc(sim, eng, gpu);
}

// ---------------------------------------------------------------------------
// dynamic batcher + inference instances
// ---------------------------------------------------------------------------

fn batch_delay(sim: &ServerSim) -> f64 {
    if sim.config.dynamic_batching {
        sim.config.max_queue_delay_s
    } else {
        FIXED_BATCH_TIMEOUT_S
    }
}

fn try_form_batch(sim: &mut ServerSim, eng: &mut Eng, gpu: usize) {
    if sim.config.tenants.len() > 1 {
        try_form_batch_lanes(sim, eng, gpu);
        return;
    }
    loop {
        if sim.gpus[gpu].free_instances == 0 || sim.gpus[gpu].inf_queue.is_empty() {
            return;
        }
        let now = eng.now();
        let qlen = sim.gpus[gpu].inf_queue.len();
        let head_enq = sim.gpus[gpu].inf_queue[0].1;
        // The head's deadline in integer ticks: comparing times directly
        // (rather than round-tripped f64 seconds) guarantees a timer firing
        // exactly at the deadline observes it as expired.
        let deadline = head_enq + SimDuration::from_secs_f64(batch_delay(sim));
        // Launch when the batch is full, the head has waited long enough,
        // or (dynamic batching) nothing else is on its way to this GPU —
        // waiting could not grow the batch.
        let nothing_incoming = sim.config.dynamic_batching && sim.gpus[gpu].incoming == 0;
        if qlen >= sim.config.max_batch || now >= deadline || nothing_incoming {
            launch_batch(sim, eng, gpu);
            continue;
        }
        // Not enough yet: keep exactly one timer armed, at the *current*
        // head's deadline. A timer armed for an earlier head is stale once
        // that head launches; cancel it rather than letting it fire.
        let stale = sim.gpus[gpu]
            .batch_timer
            .is_none_or(|(at, _)| at != deadline);
        if stale {
            if let Some((_, old)) = sim.gpus[gpu].batch_timer.take() {
                eng.cancel(old);
            }
            let timer = eng.schedule_at(
                deadline,
                Box::new(move |sim: &mut ServerSim, eng: &mut Eng| {
                    sim.gpus[gpu].batch_timer = None;
                    try_form_batch(sim, eng, gpu);
                }),
            );
            sim.gpus[gpu].batch_timer = Some((deadline, timer));
        }
        return;
    }
}

/// Lane-aware batcher for multi-tenant configurations: per-lane batch
/// queues assembled over the shared arrival order, dispatched by the same
/// `DrrPicker` the live scheduler uses. The single-lane path above is
/// untouched — its replays stay bit-identical to the pre-tenant sim.
fn try_form_batch_lanes(sim: &mut ServerSim, eng: &mut Eng, gpu: usize) {
    loop {
        if sim.gpus[gpu].free_instances == 0 || sim.gpus[gpu].inf_queue.is_empty() {
            return;
        }
        let now = eng.now();
        let n_lanes = sim.config.tenants.len();
        let delay = SimDuration::from_secs_f64(batch_delay(sim));
        let nothing_incoming = sim.config.dynamic_batching && sim.gpus[gpu].incoming == 0;
        // Per-lane occupancy of the shared FIFO batch queue: count and
        // oldest enqueue time. The queue is scanned fresh on every pass —
        // requests carry their lane, so no per-lane queues are maintained.
        let mut count = vec![0usize; n_lanes];
        let mut head: Vec<Option<SimTime>> = vec![None; n_lanes];
        for k in 0..sim.gpus[gpu].inf_queue.len() {
            let (id, enq) = sim.gpus[gpu].inf_queue[k];
            let lane = sim.requests[id].as_ref().expect("live request").tenant as usize;
            count[lane] += 1;
            if head[lane].is_none() {
                head[lane] = Some(enq);
            }
        }
        // A lane is ready under the same conditions the single-lane
        // batcher launches: full batch, expired head, or nothing incoming.
        let views: Vec<LaneView> = sim
            .config
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| LaneView {
                priority: t.priority,
                weight: t.weight,
                cost: count[i].min(sim.config.max_batch).max(1) as f64,
                ready: count[i] > 0
                    && (count[i] >= sim.config.max_batch
                        || head[i].is_some_and(|h| now >= h + delay)
                        || nothing_incoming),
            })
            .collect();
        if let Some(lane) = sim.gpus[gpu].picker.pick(&views) {
            launch_lane_batch(sim, eng, gpu, lane);
            continue;
        }
        // No lane ready yet: keep exactly one timer armed, at the earliest
        // deadline any occupied lane's head will expire (same stale-timer
        // cancellation discipline as the single-lane batcher).
        let Some(deadline) = head.iter().flatten().map(|&h| h + delay).min() else {
            return;
        };
        let stale = sim.gpus[gpu]
            .batch_timer
            .is_none_or(|(at, _)| at != deadline);
        if stale {
            if let Some((_, old)) = sim.gpus[gpu].batch_timer.take() {
                eng.cancel(old);
            }
            let timer = eng.schedule_at(
                deadline,
                Box::new(move |sim: &mut ServerSim, eng: &mut Eng| {
                    sim.gpus[gpu].batch_timer = None;
                    try_form_batch(sim, eng, gpu);
                }),
            );
            sim.gpus[gpu].batch_timer = Some((deadline, timer));
        }
        return;
    }
}

/// Drains up to `max_batch` of `lane`'s requests from the shared batch
/// queue (preserving their FIFO order) and launches them.
fn launch_lane_batch(sim: &mut ServerSim, eng: &mut Eng, gpu: usize, lane: usize) {
    if let Some((_, timer)) = sim.gpus[gpu].batch_timer.take() {
        eng.cancel(timer);
    }
    let mut items: Vec<(ReqId, SimTime)> = Vec::new();
    let mut k = 0;
    let mut remaining = false;
    while k < sim.gpus[gpu].inf_queue.len() {
        let (id, _) = sim.gpus[gpu].inf_queue[k];
        let owner = sim.requests[id].as_ref().expect("live request").tenant as usize;
        if owner == lane {
            if items.len() < sim.config.max_batch {
                items.push(sim.gpus[gpu].inf_queue.remove(k));
                continue;
            }
            remaining = true;
        }
        k += 1;
    }
    if !remaining {
        // The lane's queue emptied: drop its deficit so credit cannot be
        // hoarded across idle periods (mirrors the live scheduler).
        sim.gpus[gpu].picker.reset(lane);
    }
    launch_items(sim, eng, gpu, items);
}

fn launch_batch(sim: &mut ServerSim, eng: &mut Eng, gpu: usize) {
    // Whatever head the timer was armed for is leaving the queue now.
    if let Some((_, timer)) = sim.gpus[gpu].batch_timer.take() {
        eng.cancel(timer);
    }
    let n = sim.gpus[gpu].inf_queue.len().min(sim.config.max_batch);
    let items: Vec<(ReqId, SimTime)> = sim.gpus[gpu].inf_queue.drain(..n).collect();
    launch_items(sim, eng, gpu, items);
}

/// Shared launch tail: charges batch-wait, computes the service time with
/// jitter/interference/eviction/instance-sharing, and schedules completion.
fn launch_items(sim: &mut ServerSim, eng: &mut Eng, gpu: usize, items: Vec<(ReqId, SimTime)>) {
    let now = eng.now();
    let n = items.len();
    for &(id, enq) in &items {
        sim.req(id).queue_s += (now - enq).as_secs_f64();
    }
    let g = sim.node.gpu;
    let mut service = g.infer_batch_time(sim.model.flops, n, sim.config.engine) * sim.jitter(0.08);
    // SM contention with GPU preprocessing (Fig 4's −2.9 % cases).
    if sim.config.preproc == PreprocWhere::Gpu {
        let frac = sim.gpus[gpu].pre_busy as f64 / sim.config.gpu_preproc_streams.max(1) as f64;
        service *= 1.0 + g.interference * frac;
    }
    // Device-memory pressure: the overflowing fraction of in-flight bytes
    // must be reloaded over PCIe (Fig 5's decline at extreme concurrency).
    let inflight = sim.gpus[gpu].inflight_bytes;
    let threshold = g.eviction_threshold();
    if inflight > threshold {
        let f = (inflight - threshold) / inflight;
        service *= 1.0 + EVICTION_PENALTY * f;
        let side = sim.config.input_side(&sim.model);
        sim.extra_transfer_bytes += f * n as f64 * 2.0 * ImageSpec::tensor_bytes(side) as f64;
    }
    sim.gpus[gpu].free_instances -= 1;
    let used = (sim.config.instances_per_gpu - sim.gpus[gpu].free_instances) as f64;
    // Concurrent instances time-share the GPU's SMs: a batch launched
    // alongside `used - 1` others progresses proportionally slower.
    // Instances still help by filling scheduling gaps (batcher waits,
    // queue drains) — they do not multiply peak compute.
    service *= used;
    sim.gpus[gpu].inf_gauge.set(now.as_secs_f64(), used);
    if sim.measuring {
        sim.batch_sizes.push(n as f64);
    }
    eng.schedule_in(
        SimDuration::from_secs_f64(service),
        Box::new(move |sim: &mut ServerSim, eng: &mut Eng| {
            infer_batch_done(sim, eng, gpu, items, service)
        }),
    );
}

fn infer_batch_done(
    sim: &mut ServerSim,
    eng: &mut Eng,
    gpu: usize,
    items: Vec<(ReqId, SimTime)>,
    service: f64,
) {
    let now = eng.now();
    sim.gpus[gpu].free_instances += 1;
    let used = (sim.config.instances_per_gpu - sim.gpus[gpu].free_instances) as f64;
    sim.gpus[gpu].inf_gauge.set(now.as_secs_f64(), used);
    for (id, _) in items {
        sim.req(id).infer_s += service;
        charge_memory(sim, gpu, id, 0.0);
        complete(sim, eng, id);
    }
    try_form_batch(sim, eng, gpu);
}

fn complete(sim: &mut ServerSim, eng: &mut Eng, id: ReqId) {
    let now = eng.now();
    let rq = sim.requests[id].take().expect("live request");
    sim.ctl_window.push((now - rq.arrived).as_secs_f64());
    if sim.measuring {
        let latency = (now - rq.arrived).as_secs_f64();
        sim.latency.push(latency);
        sim.meter.record(now.as_secs_f64());
        sim.breakdown.record(stages::DISPATCH, rq.dispatch_s);
        // Only the TCP path records the RPC rows, so in-process reports
        // keep their historical stage set.
        if rq.net_transfer_s > 0.0 || rq.deserialize_s > 0.0 {
            sim.breakdown
                .record(stages::NET_TRANSFER, rq.net_transfer_s);
            sim.breakdown.record(stages::DESERIALIZE, rq.deserialize_s);
        }
        sim.breakdown.record(stages::QUEUE, rq.queue_s);
        sim.breakdown.record(stages::PREPROC, rq.preproc_s);
        sim.breakdown.record(stages::TRANSFER, rq.transfer_s);
        sim.breakdown.record(stages::INFERENCE, rq.infer_s);
        let lane = rq.tenant as usize;
        if lane < sim.lane_latency.len() {
            sim.lane_latency[lane].push(latency);
            sim.lane_queue[lane].push(rq.queue_s);
            sim.lane_completed[lane] += 1;
        }
    }
    if sim.closed_loop {
        inject(sim, eng);
    }
}

// ---------------------------------------------------------------------------
// controller replay hook
// ---------------------------------------------------------------------------

/// One control interval's observation, handed to the hook of
/// [`Experiment::run_open_controlled`] — the sim mirror of what a live
/// controller reads from `LiveMetrics` + `take_latency_window`.
#[derive(Debug, Clone, Copy)]
pub struct ControlObs {
    /// Virtual time of this tick, seconds.
    pub now_s: f64,
    /// Requests completed during the interval.
    pub completed: u64,
    /// Window throughput: `completed / interval`.
    pub throughput: f64,
    /// Mean round-trip latency over the window, seconds.
    pub mean_latency_s: f64,
    /// Median round-trip latency over the window, seconds.
    pub p50_s: f64,
    /// p99 round-trip latency over the window, seconds.
    pub p99_s: f64,
    /// Requests currently queued (preproc pool + batch queues).
    pub queue_depth: usize,
}

/// The knobs a controller replay may retune between intervals — the sim
/// counterparts of the live server's runtime setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimKnobs {
    /// Batcher size cap (`ServerConfig::max_batch`).
    pub max_batch: usize,
    /// Batch linger in **microseconds**, matching the live knob's unit.
    pub linger_us: u64,
    /// Per-shard CPU preprocessing worker count.
    pub preproc_workers: usize,
}

fn control_tick<F>(sim: &mut ServerSim, eng: &mut Eng, interval_s: f64, mut hook: F)
where
    F: FnMut(ControlObs, &mut SimKnobs) + 'static,
{
    let now = eng.now();
    let window = std::mem::replace(&mut sim.ctl_window, LatencyStats::new()).summary();
    let queue_depth = sim.preproc_pool.depth()
        + sim.dispatch.depth()
        + sim.gpus.iter().map(|g| g.inf_queue.len()).sum::<usize>();
    let obs = ControlObs {
        now_s: now.as_secs_f64(),
        completed: window.count,
        throughput: window.count as f64 / interval_s,
        mean_latency_s: window.mean,
        p50_s: window.p50,
        p99_s: window.p99,
        queue_depth,
    };
    let mut knobs = SimKnobs {
        max_batch: sim.config.max_batch,
        linger_us: (sim.config.max_queue_delay_s * 1e6).round().max(0.0) as u64,
        preproc_workers: sim.config.preproc_workers,
    };
    hook(obs, &mut knobs);
    sim.config.max_batch = knobs.max_batch.max(1);
    sim.config.max_queue_delay_s = knobs.linger_us as f64 * 1e-6;
    if knobs.preproc_workers.max(1) != sim.config.preproc_workers {
        sim.config.preproc_workers = knobs.preproc_workers.max(1);
        let pool = sim.config.preproc_workers * sim.config.shards.max(1);
        // Growing frees servers for queued work immediately; shrinking
        // drains without preemption (see `MultiServer::set_servers`).
        let started = sim.preproc_pool.set_servers(now, pool);
        for (job, enq) in started {
            start_cpu_preproc(sim, eng, job, enq);
        }
    }
    // Re-evaluate batch timers under the new knobs: `try_form_batch`
    // cancels a timer armed for a stale deadline and re-arms at the
    // current head's.
    for gpu in 0..sim.gpus.len() {
        try_form_batch(sim, eng, gpu);
    }
    eng.schedule_in(
        SimDuration::from_secs_f64(interval_s),
        Box::new(move |sim: &mut ServerSim, eng: &mut Eng| {
            control_tick(sim, eng, interval_s, hook)
        }),
    );
}

// ---------------------------------------------------------------------------
// experiment driver
// ---------------------------------------------------------------------------

impl ServerConfig {
    fn input_side(&self, model: &ModelProfile) -> usize {
        model.input_side
    }
}

/// A closed-loop serving experiment: `concurrency` clients each keep one
/// request outstanding against a simulated [`NodeConfig`] running
/// [`ServerConfig`] (§4.3's load model).
///
/// # Examples
///
/// ```
/// use vserve_device::NodeConfig;
/// use vserve_server::{Experiment, ModelProfile, ServerConfig};
/// use vserve_workload::{Arrivals, ImageMix};
/// use vserve_device::ImageSpec;
///
/// let report = Experiment {
///     node: NodeConfig::paper_testbed(),
///     config: ServerConfig::optimized(),
///     model: ModelProfile::vit_base(),
///     mix: ImageMix::fixed(ImageSpec::medium()),
///     concurrency: 64,
///     warmup_s: 0.5,
///     measure_s: 2.0,
///     seed: 1,
/// }
/// .run();
/// assert!(report.throughput > 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Hardware under test.
    pub node: NodeConfig,
    /// Server software configuration.
    pub config: ServerConfig,
    /// Deployed model.
    pub model: ModelProfile,
    /// Request image-size distribution.
    pub mix: ImageMix,
    /// Closed-loop client count (outstanding requests).
    pub concurrency: usize,
    /// Seconds of virtual time to run before measuring.
    pub warmup_s: f64,
    /// Seconds of virtual time to measure.
    pub measure_s: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl Experiment {
    /// Runs the experiment to completion and reports steady-state metrics.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0` or the time windows are not positive.
    pub fn run(&self) -> ServerReport {
        assert!(self.concurrency > 0, "concurrency must be positive");
        assert!(
            self.warmup_s >= 0.0 && self.measure_s > 0.0,
            "time windows must be positive"
        );
        let mut sim = ServerSim::new(
            self.node,
            self.config.clone(),
            self.model.clone(),
            self.mix.clone(),
            self.seed,
            true,
        );
        let mut eng: Eng = Engine::new();

        // Stagger client start-up to avoid lockstep batches.
        for i in 0..self.concurrency {
            let jitter = SimDuration::from_secs_f64(sim.rng.uniform(0.0, 1e-3) + i as f64 * 1e-6);
            eng.schedule_in(
                jitter,
                Box::new(|sim: &mut ServerSim, eng: &mut Eng| inject(sim, eng)),
            );
        }

        self.finish(sim, eng)
    }

    /// Runs the experiment under an *open-loop* arrival process instead of
    /// closed-loop clients: requests arrive regardless of completions, so
    /// offered load above capacity builds an unbounded queue. This is the
    /// regime the paper's load balancer exists to prevent (§2.1).
    ///
    /// `concurrency` is ignored in this mode.
    ///
    /// # Panics
    ///
    /// Panics if the time windows are not positive.
    pub fn run_open(&self, arrivals: Arrivals) -> ServerReport {
        assert!(
            self.warmup_s >= 0.0 && self.measure_s > 0.0,
            "time windows must be positive"
        );
        let mut sim = ServerSim::new(
            self.node,
            self.config.clone(),
            self.model.clone(),
            self.mix.clone(),
            self.seed,
            false,
        );
        sim.arrivals = Some(arrivals);
        let mut eng: Eng = Engine::new();
        eng.schedule_at(
            SimTime::ZERO,
            Box::new(|sim: &mut ServerSim, eng: &mut Eng| pump_arrivals(sim, eng)),
        );
        self.finish(sim, eng)
    }

    /// Like [`run_open`](Self::run_open), with a controller replay: every
    /// `interval_s` of virtual time, `hook` receives a [`ControlObs`] of
    /// the interval just ended and may retune the [`SimKnobs`], which are
    /// applied to the running sim exactly as the live setters apply to
    /// `LiveServer`. This validates a tuning policy against calibrated
    /// step-load curves in milliseconds of wall time.
    ///
    /// # Panics
    ///
    /// Panics if the time windows or `interval_s` are not positive.
    pub fn run_open_controlled<F>(
        &self,
        arrivals: Arrivals,
        interval_s: f64,
        hook: F,
    ) -> ServerReport
    where
        F: FnMut(ControlObs, &mut SimKnobs) + 'static,
    {
        assert!(
            self.warmup_s >= 0.0 && self.measure_s > 0.0,
            "time windows must be positive"
        );
        assert!(interval_s > 0.0, "control interval must be positive");
        let mut sim = ServerSim::new(
            self.node,
            self.config.clone(),
            self.model.clone(),
            self.mix.clone(),
            self.seed,
            false,
        );
        sim.arrivals = Some(arrivals);
        let mut eng: Eng = Engine::new();
        eng.schedule_at(
            SimTime::ZERO,
            Box::new(|sim: &mut ServerSim, eng: &mut Eng| pump_arrivals(sim, eng)),
        );
        eng.schedule_in(
            SimDuration::from_secs_f64(interval_s),
            Box::new(move |sim: &mut ServerSim, eng: &mut Eng| {
                control_tick(sim, eng, interval_s, hook)
            }),
        );
        self.finish(sim, eng)
    }

    fn finish(&self, mut sim: ServerSim, mut eng: Eng) -> ServerReport {
        // Open the measurement window after warm-up.
        let warm = SimTime::ZERO + SimDuration::from_secs_f64(self.warmup_s);
        eng.schedule_at(
            warm,
            Box::new(|sim: &mut ServerSim, eng: &mut Eng| {
                let t = eng.now().as_secs_f64();
                sim.measuring = true;
                sim.window_open = t;
                sim.latency = LatencyStats::new();
                sim.breakdown = StageBreakdown::new();
                sim.meter.open(t);
                sim.batch_sizes = Welford::new();
                sim.cpu_busy.reset_window(t);
                sim.staging_bytes_at_open = sim.staging.bytes_done();
                sim.pcie_bytes_at_open = sim.gpus.iter().map(|g| g.pcie.bytes_done()).sum();
                sim.extra_transfer_bytes = 0.0;
                for g in &mut sim.gpus {
                    g.pre_gauge.reset_window(t);
                    g.inf_gauge.reset_window(t);
                }
                for s in &mut sim.lane_latency {
                    *s = LatencyStats::new();
                }
                for w in &mut sim.lane_queue {
                    *w = Welford::new();
                }
                for c in &mut sim.lane_completed {
                    *c = 0;
                }
            }),
        );

        let end = warm + SimDuration::from_secs_f64(self.measure_s);
        eng.run(&mut sim, end);
        let t_end = end.as_secs_f64();
        sim.meter.close(t_end);

        let span = self.measure_s;
        let cpu_core_seconds = sim.cpu_busy.integral(t_end);
        let gpu_busy: Vec<f64> = sim
            .gpus
            .iter()
            .map(|g| {
                (PREPROC_POWER_WEIGHT * g.pre_gauge.integral(t_end) + g.inf_gauge.integral(t_end))
                    .min(span)
            })
            .collect();
        let pcie_total: f64 = sim.gpus.iter().map(|g| g.pcie.bytes_done()).sum();
        let transfer_bytes = (sim.staging.bytes_done() - sim.staging_bytes_at_open)
            + (pcie_total - sim.pcie_bytes_at_open)
            + sim.extra_transfer_bytes;
        let energy = energy_report(
            &self.node.cpu,
            &self.node.gpu,
            span,
            cpu_core_seconds,
            &gpu_busy,
            transfer_bytes,
            sim.meter.count(),
        );

        ServerReport {
            lanes: sim
                .config
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| LaneReport {
                    name: t.name.clone(),
                    completed: sim.lane_completed[i],
                    mean_queue_s: sim.lane_queue[i].mean(),
                    mean_latency_s: sim.lane_latency[i].summary().mean,
                })
                .collect(),
            gpu_mem_peak_bytes: sim.gpus.iter().map(|g| g.inflight_peak).collect(),
            throughput: sim.meter.count() as f64 / span,
            latency: sim.latency.summary(),
            breakdown: sim.breakdown.clone(),
            completed: sim.meter.count(),
            energy,
            cpu_utilization: (cpu_core_seconds / span / self.node.cpu.cores as f64).min(1.0),
            gpu_utilization: gpu_busy.iter().map(|b| (b / span).min(1.0)).collect(),
            mean_batch: sim.batch_sizes.mean(),
        }
    }

    /// Measures the zero-load round-trip latency: a single closed-loop
    /// client, reported from the latency distribution itself (Fig 6).
    pub fn zero_load(&self) -> ServerReport {
        Experiment {
            concurrency: 1,
            ..self.clone()
        }
        .run()
    }
}

/// The unoptimized Fig 3 baseline: a synchronous client loop (decode the
/// batch, transfer it, run inference, repeat) with no stage overlap.
///
/// `decode_parallelism` models DALI CPU threads; `per_image_overhead_s`
/// models Python-loop glue. Returns images/second.
///
/// # Examples
///
/// ```
/// use vserve_device::{EngineKind, ImageSpec, NodeConfig};
/// use vserve_server::{serial_loop_throughput, ModelProfile, PreprocWhere};
///
/// let x = serial_loop_throughput(
///     &NodeConfig::paper_testbed(),
///     &ModelProfile::vit_base(),
///     &ImageSpec::medium(),
///     EngineKind::PyTorch,
///     PreprocWhere::Cpu,
///     64,
///     1,
///     0.0,
/// );
/// assert!(x > 200.0 && x < 800.0, "baseline {x}");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn serial_loop_throughput(
    node: &NodeConfig,
    model: &ModelProfile,
    img: &ImageSpec,
    engine: EngineKind,
    preproc: PreprocWhere,
    batch: usize,
    decode_parallelism: usize,
    per_image_overhead_s: f64,
) -> f64 {
    let b = batch.max(1) as f64;
    let decode = match preproc {
        PreprocWhere::Cpu => {
            node.cpu.preprocess_time(img, model.input_side) * b / decode_parallelism.max(1) as f64
        }
        PreprocWhere::Gpu => {
            node.gpu.preproc_batch_fixed_s
                + b * (node.gpu.preproc_image_s + node.gpu.preproc_s_per_px * img.pixels() as f64)
        }
    };
    let transfer = match preproc {
        PreprocWhere::Cpu => {
            b * ImageSpec::tensor_bytes(model.input_side) as f64 / node.gpu.pcie_bytes_per_s
        }
        PreprocWhere::Gpu => b * img.compressed_bytes as f64 / node.gpu.pcie_bytes_per_s,
    };
    let infer = node.gpu.infer_batch_time(model.flops, batch, engine);
    let total = decode + transfer + infer + b * per_image_overhead_s;
    b / total
}

#[cfg(test)]
mod rpc_tests {
    use super::*;
    use vserve_device::{ImageSpec, NodeConfig};
    use vserve_workload::ImageMix;

    fn base() -> Experiment {
        Experiment {
            node: NodeConfig::paper_testbed(),
            config: ServerConfig::optimized(),
            model: ModelProfile::vit_base(),
            mix: ImageMix::fixed(ImageSpec::medium()),
            concurrency: 8,
            warmup_s: 0.2,
            measure_s: 1.0,
            seed: 7,
        }
    }

    /// Satellite: the TCP path charges the paper's data-transfer and
    /// serialization rows; the in-process path keeps them absent, so
    /// existing reports are unchanged.
    #[test]
    fn tcp_path_adds_rpc_rows_in_process_has_none() {
        let inproc = base().run().summary();
        let tcp = Experiment {
            config: ServerConfig::optimized().with_rpc(RpcPath::Tcp),
            ..base()
        }
        .run()
        .summary();
        assert_eq!(inproc.breakdown.count(stages::NET_TRANSFER), 0);
        assert_eq!(inproc.breakdown.count(stages::DESERIALIZE), 0);
        assert_eq!(inproc.rpc_share(), 0.0);
        assert!(tcp.breakdown.count(stages::NET_TRANSFER) > 0);
        assert!(tcp.rpc_time() > 0.0);
        // The mean RPC charge tracks the cost model (mean-one jitter).
        let cpu = NodeConfig::paper_testbed().cpu;
        let expect = cpu.rpc_time() + cpu.serialize_time(ImageSpec::medium().compressed_bytes);
        assert!(
            (tcp.rpc_time() - expect).abs() < expect * 0.25,
            "mean rpc {} vs model {expect}",
            tcp.rpc_time()
        );
        // The paper's finding: the RPC leg is real but small next to
        // preprocessing at this payload size.
        assert!(tcp.rpc_share() > 0.0 && tcp.rpc_share() < 0.2);
        assert!(tcp.rpc_time() < tcp.preproc_time());
    }
}

#[cfg(test)]
mod batcher_tests {
    use super::*;
    use vserve_device::{ImageSpec, NodeConfig};
    use vserve_workload::ImageMix;

    fn at_ms(x: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(x * 1e-3)
    }

    /// Injects a request straight into GPU 0's batch queue, bypassing
    /// dispatch/preprocessing, and pokes the batcher — the minimal setup
    /// for exercising the timer logic in isolation.
    fn arrive(sim: &mut ServerSim, eng: &mut Eng) {
        let id = sim.requests.len();
        sim.requests.push(Some(Request {
            img: ImageSpec::medium(),
            arrived: eng.now(),
            queue_s: 0.0,
            dispatch_s: 0.0,
            net_transfer_s: 0.0,
            deserialize_s: 0.0,
            preproc_s: 0.0,
            transfer_s: 0.0,
            infer_s: 0.0,
            gpu: 0,
            mem_bytes: 0.0,
            tenant: (id % sim.config.tenants.len().max(1)) as u32,
        }));
        sim.gpus[0].inf_queue.push((id, eng.now()));
        try_form_batch(sim, eng, 0);
    }

    /// A full batch can launch between the timer being armed for its head
    /// and that timer firing. The armed deadline then belongs to an
    /// already-served head; a later arrival must get a fresh timer at its
    /// *own* deadline rather than inheriting the stale one.
    #[test]
    fn batch_timer_tracks_current_head() {
        let mut config = ServerConfig::optimized();
        config.max_batch = 4;
        config.max_queue_delay_s = 10e-3;
        config.dynamic_batching = true;
        config.instances_per_gpu = 2;
        let mut sim = ServerSim::new(
            NodeConfig::paper_testbed(),
            config,
            ModelProfile::vit_base(),
            ImageMix::fixed(ImageSpec::medium()),
            1,
            false,
        );
        // Keep `incoming` high so the batcher always believes more work is
        // on the way and actually waits on its timer.
        sim.gpus[0].incoming = 100;
        let mut eng: Eng = Engine::new();
        eng.schedule_at(
            at_ms(0.0),
            Box::new(|sim: &mut ServerSim, eng: &mut Eng| arrive(sim, eng)),
        );
        for _ in 0..3 {
            eng.schedule_at(
                at_ms(1.0),
                Box::new(|sim: &mut ServerSim, eng: &mut Eng| arrive(sim, eng)),
            );
        }
        eng.schedule_at(
            at_ms(2.0),
            Box::new(|sim: &mut ServerSim, eng: &mut Eng| arrive(sim, eng)),
        );

        // t = 0: request 0 arms the timer for its deadline at 10 ms.
        eng.run(&mut sim, at_ms(0.5));
        let (deadline, _) = sim.gpus[0].batch_timer.expect("timer armed for head");
        assert_eq!(deadline, at_ms(10.0));

        // t = 1 ms: requests 1-3 complete a full batch, which launches
        // immediately; the timer armed for request 0 is now stale and gone.
        eng.run(&mut sim, at_ms(1.0));
        assert!(sim.gpus[0].inf_queue.is_empty());
        assert!(
            sim.gpus[0].batch_timer.is_none(),
            "stale timer must be cancelled when its head launches"
        );
        let head_wait = sim.requests[0].as_ref().expect("in flight").queue_s;
        assert!((head_wait - 1e-3).abs() < 1e-9, "head waited {head_wait}");

        // t = 2 ms: request 4 arrives alone and must get its own timer at
        // 2 + 10 = 12 ms, not anything keyed to the served head.
        eng.run(&mut sim, at_ms(2.0));
        let (deadline, _) = sim.gpus[0].batch_timer.expect("fresh timer for new head");
        assert_eq!(deadline, at_ms(12.0));

        // The timer fires at 12 ms and launches request 4 after exactly
        // its configured queueing delay.
        eng.run(&mut sim, at_ms(12.0));
        assert!(
            sim.gpus[0].inf_queue.is_empty(),
            "late head must launch at its deadline"
        );
        let waited = sim.requests[4].as_ref().expect("in flight").queue_s;
        assert!((waited - 10e-3).abs() < 1e-9, "late head waited {waited}");
        assert!(sim.gpus[0].batch_timer.is_none());
    }
}
