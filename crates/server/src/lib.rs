//! The throughput-optimized DNN serving system under study.
//!
//! This crate models the paper's TrIS-style inference server: request
//! dispatch, CPU or GPU preprocessing, host-staging and PCIe transfers,
//! a dynamic batcher with bounded queueing delay, and per-GPU model
//! instances — all running on the discrete-event kernel of `vserve-sim`
//! with the calibrated hardware costs of `vserve-device`.
//!
//! Two entry points:
//!
//! * [`Experiment`] — closed-loop simulation producing a [`ServerReport`]
//!   (throughput, latency distribution, per-stage breakdown, energy);
//!   drives Figs 4–9.
//! * [`live`] — a real thread-based mini-server that decodes actual JPEGs
//!   (`vserve-codec`) and runs a real model (`vserve-dnn`); used by the
//!   examples to validate the pipeline structure end-to-end.
//!
//! # Examples
//!
//! ```
//! use vserve_device::{ImageSpec, NodeConfig};
//! use vserve_server::{Experiment, ModelProfile, ServerConfig};
//! use vserve_workload::ImageMix;
//!
//! let report = Experiment {
//!     node: NodeConfig::paper_testbed(),
//!     config: ServerConfig::optimized(),
//!     model: ModelProfile::vit_base(),
//!     mix: ImageMix::fixed(ImageSpec::medium()),
//!     concurrency: 128,
//!     warmup_s: 0.5,
//!     measure_s: 2.0,
//!     seed: 7,
//! }
//! .run();
//! // The paper's optimized setup exceeds 1600 img/s on medium images.
//! assert!(report.throughput > 1200.0, "throughput {}", report.throughput);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod config;
pub mod live;
mod report;
mod sim;

pub use cache::{PreprocCache, PreprocCacheStats, PREPROC_CACHE_MB_ENV};
pub use config::{ModelProfile, PreprocPath, PreprocWhere, RpcPath, ServerConfig, StageMode};
pub use live::{LaneMetrics, PipelineDriver, PipelineHandle, ZooModel};
pub use report::{stages, LaneReport, ServerReport, ServingSummary};
pub use sim::{serial_loop_throughput, ControlObs, Experiment, SimKnobs};
pub use vserve_sched::{parse_tenants, Priority, QuotaSpec, TenantSpec, TENANTS_ENV};

#[cfg(test)]
mod tests {
    use super::*;
    use vserve_device::{ImageSpec, NodeConfig};
    use vserve_workload::ImageMix;

    fn experiment(img: ImageSpec, config: ServerConfig, concurrency: usize) -> Experiment {
        Experiment {
            node: NodeConfig::paper_testbed(),
            config,
            model: ModelProfile::vit_base(),
            mix: ImageMix::fixed(img),
            concurrency,
            warmup_s: 0.5,
            measure_s: 2.0,
            seed: 42,
        }
    }

    #[test]
    fn optimized_medium_matches_fig3_top_rung() {
        let r = experiment(ImageSpec::medium(), ServerConfig::optimized(), 128).run();
        assert!(
            r.throughput > 1400.0 && r.throughput < 2400.0,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn zero_load_medium_preproc_share_cpu() {
        let r = experiment(
            ImageSpec::medium(),
            ServerConfig::optimized_cpu_preproc(),
            1,
        )
        .zero_load();
        // Fig 6: ≈56 % of zero-load latency is non-inference overhead
        // (dominated by preprocessing) on CPU.
        assert!(
            (r.overhead_share() - 0.56).abs() < 0.10,
            "share {}",
            r.overhead_share()
        );
    }

    #[test]
    fn zero_load_large_dominated_by_preproc() {
        for config in [
            ServerConfig::optimized_cpu_preproc(),
            ServerConfig::optimized(),
        ] {
            let r = experiment(ImageSpec::large(), config, 1).zero_load();
            assert!(r.overhead_share() > 0.80, "share {}", r.overhead_share());
            assert!(r.preproc_share() > 0.55, "preproc {}", r.preproc_share());
        }
    }

    #[test]
    fn small_images_prefer_cpu_preproc_at_zero_load() {
        let cpu =
            experiment(ImageSpec::small(), ServerConfig::optimized_cpu_preproc(), 1).zero_load();
        let gpu = experiment(ImageSpec::small(), ServerConfig::optimized(), 1).zero_load();
        assert!(
            cpu.latency.mean < gpu.latency.mean,
            "cpu {} vs gpu {}",
            cpu.latency.mean,
            gpu.latency.mean
        );
    }

    #[test]
    fn fast_preproc_path_cuts_large_image_zero_load_preproc() {
        let base =
            experiment(ImageSpec::large(), ServerConfig::optimized_cpu_preproc(), 1).zero_load();
        let fast = experiment(
            ImageSpec::large(),
            ServerConfig::optimized_cpu_preproc().with_fast_preproc(),
            1,
        )
        .zero_load();
        // Large → denominator 8: the per-pixel IDCT work shrinks 64×,
        // leaving Huffman + resize; ≥2× on the whole preproc stage.
        assert!(
            fast.preproc_time() < base.preproc_time() / 2.0,
            "fast {} vs base {}",
            fast.preproc_time(),
            base.preproc_time()
        );
        assert!(fast.latency.mean < base.latency.mean);
    }

    #[test]
    fn full_cache_hit_rate_removes_preproc_from_the_model() {
        let base = experiment(
            ImageSpec::medium(),
            ServerConfig::optimized_cpu_preproc(),
            1,
        )
        .zero_load();
        let cached = experiment(
            ImageSpec::medium(),
            ServerConfig::optimized_cpu_preproc().with_cache_hit_rate(1.0),
            1,
        )
        .zero_load();
        // Every request pays only hash + lookup: preproc share collapses.
        assert!(
            cached.preproc_time() < 0.05 * base.preproc_time(),
            "cached {} vs base {}",
            cached.preproc_time(),
            base.preproc_time()
        );
    }

    #[test]
    fn queueing_grows_with_concurrency() {
        let lo = experiment(ImageSpec::medium(), ServerConfig::optimized(), 16).run();
        let hi = experiment(ImageSpec::medium(), ServerConfig::optimized(), 1024).run();
        assert!(hi.queue_time() > 5.0 * lo.queue_time());
        assert!(hi.throughput >= lo.throughput * 0.9);
    }

    #[test]
    fn throughput_saturates_not_explodes() {
        let x512 = experiment(ImageSpec::medium(), ServerConfig::optimized(), 512).run();
        let x1024 = experiment(ImageSpec::medium(), ServerConfig::optimized(), 1024).run();
        // saturation: within 25 %
        assert!(
            (x1024.throughput - x512.throughput).abs() / x512.throughput < 0.25,
            "{} vs {}",
            x512.throughput,
            x1024.throughput
        );
    }

    #[test]
    fn large_images_bound_by_preprocessing() {
        let e2e = experiment(ImageSpec::large(), ServerConfig::optimized(), 128).run();
        let inf_only = experiment(
            ImageSpec::large(),
            ServerConfig::optimized().with_stage_mode(StageMode::InferenceOnly),
            128,
        )
        .run();
        // Fig 7: end-to-end ≈ 19.5 % of inference-only for large images.
        let ratio = e2e.throughput / inf_only.throughput;
        assert!(ratio < 0.45, "ratio {ratio}");
    }

    #[test]
    fn multi_gpu_medium_scales_large_does_not() {
        let one = Experiment {
            node: NodeConfig::with_gpus(1),
            ..experiment(ImageSpec::medium(), ServerConfig::optimized(), 256)
        }
        .run();
        let four = Experiment {
            node: NodeConfig::with_gpus(4),
            ..experiment(ImageSpec::medium(), ServerConfig::optimized(), 1024)
        }
        .run();
        let scale = four.throughput / one.throughput;
        assert!(scale > 2.8, "medium scaling {scale}");

        let one_l = Experiment {
            node: NodeConfig::with_gpus(1),
            ..experiment(ImageSpec::large(), ServerConfig::optimized(), 256)
        }
        .run();
        let four_l = Experiment {
            node: NodeConfig::with_gpus(4),
            ..experiment(ImageSpec::large(), ServerConfig::optimized(), 256)
        }
        .run();
        let scale_l = four_l.throughput / one_l.throughput;
        assert!(scale_l < 2.5, "large scaling {scale_l}");
    }

    #[test]
    fn cpu_preproc_energy_higher_for_medium() {
        let cpu = experiment(
            ImageSpec::medium(),
            ServerConfig::optimized_cpu_preproc(),
            128,
        )
        .run();
        let gpu = experiment(ImageSpec::medium(), ServerConfig::optimized(), 128).run();
        assert!(
            cpu.energy.total_j_per_image() > gpu.energy.total_j_per_image() * 0.95,
            "cpu {} vs gpu {}",
            cpu.energy.total_j_per_image(),
            gpu.energy.total_j_per_image()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = experiment(ImageSpec::medium(), ServerConfig::optimized(), 64).run();
        let b = experiment(ImageSpec::medium(), ServerConfig::optimized(), 64).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn dynamic_batching_improves_tail_latency() {
        // Below a full batch of outstanding clients, fixed batching stalls
        // waiting to fill batches; the dynamic batcher's bounded delay is
        // exactly the paper's quality-of-service argument (Fig 3 rung 5).
        let fixed = experiment(
            ImageSpec::medium(),
            ServerConfig::tris_defaults(vserve_device::EngineKind::OnnxRuntime)
                .with_fixed_batching(),
            12,
        )
        .run();
        let dynamic = experiment(
            ImageSpec::medium(),
            ServerConfig::tris_defaults(vserve_device::EngineKind::OnnxRuntime),
            12,
        )
        .run();
        assert!(
            dynamic.latency.p99 < fixed.latency.p99,
            "dyn {} vs fixed {}",
            dynamic.latency.p99,
            fixed.latency.p99
        );
    }

    #[test]
    fn shards_scale_cpu_preproc_capacity() {
        // A CPU-preprocessing-bound deployment gains front-end capacity
        // from sharding: each shard brings its own preproc pool, exactly
        // like the live router binding one NetServer stack per shard.
        let one = experiment(
            ImageSpec::large(),
            ServerConfig::optimized_cpu_preproc(),
            512,
        )
        .run();
        let four = experiment(
            ImageSpec::large(),
            ServerConfig::optimized_cpu_preproc().with_shards(4),
            512,
        )
        .run();
        let scale = four.throughput / one.throughput;
        assert!(scale > 1.5, "shard scaling {scale}");
    }

    #[test]
    fn sharded_tcp_pays_one_extra_router_hop() {
        let single = experiment(
            ImageSpec::medium(),
            ServerConfig::optimized().with_rpc(RpcPath::Tcp),
            8,
        )
        .run();
        let sharded = experiment(
            ImageSpec::medium(),
            ServerConfig::optimized()
                .with_rpc(RpcPath::Tcp)
                .with_shards(2),
            8,
        )
        .run();
        let hop = |r: &ServerReport| r.breakdown.mean(stages::DESERIALIZE);
        let ratio = hop(&sharded) / hop(&single);
        // Two frame parses instead of one; jitter keeps it off exactly 2.
        assert!(
            (1.6..=2.4).contains(&ratio),
            "router hop ratio {ratio} (single {}, sharded {})",
            hop(&single),
            hop(&sharded)
        );
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use vserve_device::{ImageSpec, NodeConfig};
    use vserve_workload::{Arrivals, ImageMix};

    fn exp() -> Experiment {
        Experiment {
            node: NodeConfig::paper_testbed(),
            config: ServerConfig::optimized(),
            model: ModelProfile::vit_base(),
            mix: ImageMix::fixed(ImageSpec::medium()),
            concurrency: 1, // ignored in open loop
            warmup_s: 0.5,
            measure_s: 2.0,
            seed: 77,
        }
    }

    #[test]
    fn open_loop_below_capacity_tracks_offered_load() {
        let r = exp().run_open(Arrivals::poisson(800.0));
        assert!(
            (r.throughput - 800.0).abs() < 60.0,
            "throughput {} for offered 800",
            r.throughput
        );
        // Far below saturation: latency stays near the zero-load value.
        assert!(r.latency.mean < 0.05, "latency {}", r.latency.mean);
    }

    #[test]
    fn open_loop_overload_saturates_and_queues_explode() {
        let r = exp().run_open(Arrivals::poisson(4000.0)); // ~2x capacity
                                                           // Completions cap at capacity…
        assert!(
            r.throughput < 2400.0,
            "throughput {} should saturate",
            r.throughput
        );
        // …and latency grows far beyond the loaded closed-loop regime.
        assert!(r.latency.mean > 0.2, "latency {}", r.latency.mean);
        assert!(r.queue_share() > 0.8, "queue share {}", r.queue_share());
    }

    #[test]
    fn open_loop_deterministic_arrivals() {
        let r = exp().run_open(Arrivals::deterministic(500.0));
        assert!(
            (r.throughput - 500.0).abs() < 30.0,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn controller_replay_grows_starved_preproc_pool() {
        use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
        use std::sync::Arc;

        // One CPU preprocessing worker is the bottleneck at this offered
        // load. A controller that watches the queue and grows the pool
        // should recover most of the capacity a static config leaves on
        // the table — the sim mirror of the live tuner's thread knob.
        let mut config = ServerConfig::optimized_cpu_preproc();
        config.preproc_workers = 1;
        let exp = Experiment {
            config,
            ..self::exp()
        };
        let starved = exp.run_open(Arrivals::poisson(1200.0));

        let ticks = Arc::new(AtomicU64::new(0));
        let workers = Arc::new(AtomicUsize::new(1));
        let (t, w) = (ticks.clone(), workers.clone());
        let tuned = exp.run_open_controlled(Arrivals::poisson(1200.0), 0.05, move |obs, knobs| {
            t.fetch_add(1, Ordering::Relaxed);
            if obs.queue_depth > 4 && knobs.preproc_workers < 8 {
                knobs.preproc_workers += 1;
                w.store(knobs.preproc_workers, Ordering::Relaxed);
            }
        });

        // The hook ran every interval across warm-up + measurement…
        assert!(ticks.load(Ordering::Relaxed) >= 40, "{:?}", ticks);
        // …grew the pool until the queue stopped building…
        assert!(workers.load(Ordering::Relaxed) >= 3, "{:?}", workers);
        // …and the reconfigured sim beat the static starved baseline.
        assert!(
            tuned.throughput > starved.throughput * 1.2,
            "tuned {} vs starved {}",
            tuned.throughput,
            starved.throughput
        );
        assert!(
            tuned.latency.mean < starved.latency.mean * 0.5,
            "tuned {} vs starved {}",
            tuned.latency.mean,
            starved.latency.mean
        );
    }

    #[test]
    fn controller_replay_batch_knobs_apply_mid_run() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        // Clamp the batcher to singleton batches from the first tick; the
        // mean formed batch size must collapse compared to the untouched
        // run, proving max_batch/linger edits reach the live batcher.
        let seen = Arc::new(AtomicUsize::new(0));
        let s = seen.clone();
        let free = exp().run_open(Arrivals::poisson(1500.0));
        let clamped =
            exp().run_open_controlled(Arrivals::poisson(1500.0), 0.01, move |_, knobs| {
                s.store(knobs.max_batch, Ordering::Relaxed);
                knobs.max_batch = 1;
                knobs.linger_us = 0;
            });
        // Second tick onwards observes the applied clamp.
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert!(
            clamped.mean_batch < 1.5 && free.mean_batch > 4.0,
            "clamped {} vs free {}",
            clamped.mean_batch,
            free.mean_batch
        );
    }
}
