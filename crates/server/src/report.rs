//! Experiment results: throughput, latency, breakdown, energy.

use vserve_device::EnergyReport;
use vserve_metrics::{LatencySummary, StageBreakdown};

/// Canonical stage names used in per-request breakdowns, prefixed for
/// presentation order.
pub mod stages {
    /// Request dispatch on the host CPU.
    pub const DISPATCH: &str = "0-dispatch";
    /// Reading the request's bytes off the network (the paper's
    /// client→server data-transfer row). Only present when requests
    /// arrive over the `vserve-net` wire or the sim models an RPC path.
    pub const NET_TRANSFER: &str = "0-net-transfer";
    /// Parsing and validating the request frame (the paper's request
    /// serialization/deserialization row). Only present on the RPC path.
    pub const DESERIALIZE: &str = "0-deserialize";
    /// Waiting in any queue (dispatch, preprocessing, batching).
    pub const QUEUE: &str = "1-queue";
    /// Preprocessing (decode + resize + normalize) on CPU or GPU.
    pub const PREPROC: &str = "2-preproc";
    /// Host staging + PCIe transfers.
    pub const TRANSFER: &str = "3-transfer";
    /// DNN inference on the GPU.
    pub const INFERENCE: &str = "4-inference";
    /// Cascade fan-out: decoding a parent stage's frame, cutting the K
    /// detection crops, and re-encoding them as child sub-requests.
    /// Recorded by the pipeline executor, per parent request.
    pub const FANOUT: &str = "5-fanout";
    /// Cascade join: assembling the K child replies into the pipeline's
    /// final result. Recorded by the pipeline executor, per pipeline.
    pub const JOIN: &str = "6-join";
    /// Prefix of per-stage cascade rows: a pipeline named `faces` with a
    /// stage `det` records its per-stage wall as `7-cascade:faces/det`
    /// (see [`cascade_stage`]).
    pub const CASCADE_PREFIX: &str = "7-cascade:";

    /// Breakdown row name for one cascade stage of one pipeline.
    pub fn cascade_stage(pipeline: &str, stage: &str) -> String {
        format!("{CASCADE_PREFIX}{pipeline}/{stage}")
    }
}

/// The report shape shared by the simulated server and the live
/// thread-based server: throughput, a latency distribution, a per-stage
/// breakdown, and the mean batch size the batcher actually formed.
///
/// Both [`ServerReport`] (sim) and the live server's metrics snapshot
/// reduce to this type, so sim-vs-live comparisons of the paper's
/// overhead shares are one-to-one.
#[derive(Debug, Clone)]
pub struct ServingSummary {
    /// Completed requests per second over the window.
    pub throughput: f64,
    /// Round-trip latency distribution.
    pub latency: LatencySummary,
    /// Mean seconds per request attributed to each stage (see [`stages`]).
    pub breakdown: StageBreakdown,
    /// Requests completed inside the window.
    pub completed: u64,
    /// Mean inference batch size actually formed by the batcher.
    pub mean_batch: f64,
}

impl ServingSummary {
    /// Mean seconds a request spent queued (all queues combined).
    pub fn queue_time(&self) -> f64 {
        self.breakdown.mean(stages::QUEUE)
    }

    /// Mean seconds a request spent preprocessing.
    pub fn preproc_time(&self) -> f64 {
        self.breakdown.mean(stages::PREPROC)
    }

    /// Mean seconds a request spent on the RPC leg: network transfer of
    /// the request bytes plus frame deserialization. Zero for in-process
    /// serving, where these stages are never recorded.
    pub fn rpc_time(&self) -> f64 {
        self.breakdown.mean(stages::NET_TRANSFER) + self.breakdown.mean(stages::DESERIALIZE)
    }

    /// Fraction of mean latency spent on the RPC leg
    /// (transfer + deserialize) — the paper's data-transfer and
    /// serialization rows combined.
    pub fn rpc_share(&self) -> f64 {
        if self.latency.mean <= 0.0 {
            0.0
        } else {
            self.rpc_time() / self.latency.mean
        }
    }

    /// Fraction of mean latency spent queued.
    pub fn queue_share(&self) -> f64 {
        self.stage_share(stages::QUEUE)
    }

    /// Fraction of mean latency spent preprocessing.
    pub fn preproc_share(&self) -> f64 {
        self.stage_share(stages::PREPROC)
    }

    /// Fraction of mean latency spent in DNN inference (the complement of
    /// the paper's "overheads").
    pub fn inference_share(&self) -> f64 {
        self.stage_share(stages::INFERENCE)
    }

    /// Fraction of mean latency spent on anything *other than* DNN
    /// inference — preprocessing, queueing, transfer, dispatch. This is
    /// what the paper's Fig 6 plots as the non-inference bar (its
    /// "preprocessing" component includes the transfer path).
    pub fn overhead_share(&self) -> f64 {
        (1.0 - self.inference_share()).max(0.0)
    }

    /// Summed mean seconds of every cascade row
    /// ([`stages::CASCADE_PREFIX`]) — the per-pipeline stage walls the
    /// pipeline executor records. Zero when no cascades ran.
    pub fn cascade_time(&self) -> f64 {
        self.breakdown
            .stage_names()
            .into_iter()
            .filter(|s| s.starts_with(stages::CASCADE_PREFIX))
            .map(|s| self.breakdown.mean(s))
            .sum()
    }

    /// Fraction of mean latency attributed to cascade stage rows.
    pub fn cascade_share(&self) -> f64 {
        if self.latency.mean <= 0.0 {
            0.0
        } else {
            self.cascade_time() / self.latency.mean
        }
    }

    /// Fraction of mean latency attributed to `stage`.
    pub fn stage_share(&self, stage: &str) -> f64 {
        if self.latency.mean <= 0.0 {
            0.0
        } else {
            self.breakdown.mean(stage) / self.latency.mean
        }
    }

    /// One-line summary for report tables.
    pub fn to_row(&self) -> String {
        format!(
            "{:>9.1} img/s  avg {:>8.2} ms  p99 {:>8.2} ms  queue {:>5.1}%  pre {:>5.1}%  inf {:>5.1}%",
            self.throughput,
            self.latency.mean * 1e3,
            self.latency.p99 * 1e3,
            self.queue_share() * 100.0,
            self.preproc_share() * 100.0,
            self.inference_share() * 100.0,
        )
    }
}

/// Per-tenant-lane outcome of a multi-tenant sim run — the sim mirror of
/// the live server's `LaneMetrics`, for deterministic interference
/// replay. Empty on single-lane runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneReport {
    /// Tenant name from the `ServerConfig::tenants` entry.
    pub name: String,
    /// Requests this lane completed inside the measurement window.
    pub completed: u64,
    /// Mean seconds the lane's requests spent queued (dispatch + batch
    /// wait) — the number a best-effort flood inflates for an LC tenant.
    pub mean_queue_s: f64,
    /// Mean round-trip seconds for the lane's requests.
    pub mean_latency_s: f64,
}

/// Outcome of one serving experiment over its measurement window.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Per-tenant lane rows (multi-tenant sims only; empty otherwise).
    pub lanes: Vec<LaneReport>,
    /// Completed requests per second.
    pub throughput: f64,
    /// Round-trip latency distribution.
    pub latency: LatencySummary,
    /// Mean seconds per request attributed to each stage (see [`stages`]).
    pub breakdown: StageBreakdown,
    /// Requests completed inside the window.
    pub completed: u64,
    /// Energy over the window.
    pub energy: EnergyReport,
    /// Time-averaged CPU pool utilization (0–1).
    pub cpu_utilization: f64,
    /// Per-GPU time-averaged utilization (preprocessing + inference).
    pub gpu_utilization: Vec<f64>,
    /// Mean inference batch size actually formed by the batcher.
    pub mean_batch: f64,
    /// Per-GPU high-water mark of in-flight request memory, bytes —
    /// compare with the device's eviction threshold to diagnose the
    /// Fig 5 high-concurrency decline.
    pub gpu_mem_peak_bytes: Vec<f64>,
}

impl ServerReport {
    /// Reduces to the [`ServingSummary`] shape shared with the live server.
    pub fn summary(&self) -> ServingSummary {
        ServingSummary {
            throughput: self.throughput,
            latency: self.latency,
            breakdown: self.breakdown.clone(),
            completed: self.completed,
            mean_batch: self.mean_batch,
        }
    }

    /// Mean seconds a request spent queued (all queues combined).
    pub fn queue_time(&self) -> f64 {
        self.breakdown.mean(stages::QUEUE)
    }

    /// Mean seconds a request spent preprocessing.
    pub fn preproc_time(&self) -> f64 {
        self.breakdown.mean(stages::PREPROC)
    }

    /// Mean seconds a request spent on the RPC leg (network transfer +
    /// frame deserialization) — see [`ServingSummary::rpc_time`].
    pub fn rpc_time(&self) -> f64 {
        self.summary().rpc_time()
    }

    /// Fraction of mean latency spent on the RPC leg — see
    /// [`ServingSummary::rpc_share`].
    pub fn rpc_share(&self) -> f64 {
        self.summary().rpc_share()
    }

    /// Fraction of mean latency spent queued.
    pub fn queue_share(&self) -> f64 {
        self.summary().queue_share()
    }

    /// Fraction of mean latency spent preprocessing.
    pub fn preproc_share(&self) -> f64 {
        self.summary().preproc_share()
    }

    /// Fraction of mean latency spent in DNN inference (the complement of
    /// the paper's "overheads").
    pub fn inference_share(&self) -> f64 {
        self.summary().inference_share()
    }

    /// Fraction of mean latency spent on anything *other than* DNN
    /// inference — see [`ServingSummary::overhead_share`].
    pub fn overhead_share(&self) -> f64 {
        self.summary().overhead_share()
    }

    /// One-line summary for report tables.
    pub fn to_row(&self) -> String {
        self.summary().to_row()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vserve_device::EnergyReport;

    fn report_with(latency_mean: f64, queue: f64, pre: f64, inf: f64) -> ServerReport {
        let mut b = StageBreakdown::new();
        b.record(stages::QUEUE, queue);
        b.record(stages::PREPROC, pre);
        b.record(stages::INFERENCE, inf);
        ServerReport {
            lanes: Vec::new(),
            gpu_mem_peak_bytes: vec![0.0],
            throughput: 100.0,
            latency: LatencySummary {
                count: 1,
                mean: latency_mean,
                std_dev: 0.0,
                min: latency_mean,
                max: latency_mean,
                p50: latency_mean,
                p95: latency_mean,
                p99: latency_mean,
            },
            breakdown: b,
            completed: 1,
            energy: EnergyReport {
                cpu_joules: 0.0,
                gpu_joules: 0.0,
                images: 1,
            },
            cpu_utilization: 0.0,
            gpu_utilization: vec![0.0],
            mean_batch: 1.0,
        }
    }

    #[test]
    fn shares_computed_from_breakdown() {
        let r = report_with(10.0, 5.0, 3.0, 2.0);
        assert!((r.queue_share() - 0.5).abs() < 1e-12);
        assert!((r.preproc_share() - 0.3).abs() < 1e-12);
        assert!((r.inference_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_latency_gives_zero_shares() {
        let r = report_with(0.0, 0.0, 0.0, 0.0);
        assert_eq!(r.queue_share(), 0.0);
    }

    #[test]
    fn row_contains_throughput() {
        let r = report_with(1.0, 0.1, 0.2, 0.7);
        assert!(r.to_row().contains("100.0 img/s"));
    }
}
