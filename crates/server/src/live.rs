//! A real, thread-based mini inference server.
//!
//! Where [`crate::Experiment`] *models* the paper's server with calibrated
//! costs, this module *is* a server: crossbeam channels connect real
//! preprocessing workers (JPEG decode via `vserve-codec`, resize +
//! normalize via `vserve-tensor`), a dynamic batcher with a bounded
//! queueing delay, and inference workers executing a real `vserve-dnn`
//! model. It exists to validate the pipeline structure end-to-end and to
//! let the examples measure genuine per-stage times on the host machine.
//!
//! Three properties make it a throughput-oriented server rather than a
//! demo loop:
//!
//! * **True batched execution** — assembled batches run through
//!   [`Model::forward_batch`] as *one* inference call (a single batched
//!   im2col/GEMM per layer), not a per-item `forward` loop, so dynamic
//!   batching actually amortizes work.
//! * **Backpressure** — the ingress queue is bounded
//!   ([`LiveOptions::queue_cap`]); requests beyond the cap fail fast with
//!   [`LiveError::Overloaded`], and an optional per-request
//!   [`LiveOptions::deadline`] sheds stale work instead of serving it
//!   late, so overload degrades gracefully instead of growing memory.
//! * **Metrics** — [`LiveServer::metrics`] snapshots the same quantities
//!   the simulator's `ServerReport` exposes (throughput, latency summary,
//!   per-stage breakdown, mean batch size, queue depth), reducible to the
//!   shared [`ServingSummary`] shape for one-to-one sim-vs-live
//!   comparison.
//!
//! # No-panic guarantee
//!
//! This module is reachable from remote clients through `vserve-net`, so
//! its non-test paths never `unwrap()` a lock or channel: metrics locks
//! recover from poisoning ([`Shared::lock`] takes the inner value), cache
//! and coalescing locks degrade to a cache miss on failure, and every
//! reply/channel send ignores a disconnected peer. A failure anywhere in
//! the pipeline fails *the request* (with a [`LiveError`] the front-end
//! maps to a typed status frame), never the process. The
//! `drop_with_requests_in_flight_answers_or_disconnects` test pins the
//! shutdown half of this contract.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use vserve_dnn::{models, Model};
//! use vserve_server::live::{LiveOptions, LiveServer};
//! use vserve_workload::synthetic_jpeg;
//! use vserve_device::ImageSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = Model::from_graph(models::micro_cnn(32, 10)?, 7);
//! let server = LiveServer::start(model, LiveOptions { input_side: 32, ..LiveOptions::default() });
//! let jpeg = synthetic_jpeg(&ImageSpec::new(64, 48, 0), 1);
//! let result = server.infer(jpeg)?;
//! assert_eq!(result.output.len(), 10);
//! let m = server.metrics();
//! assert_eq!(m.completed, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use vserve_compute::{Backend, Scratch};
use vserve_dnn::Model;
use vserve_metrics::{
    LatencyStats, LatencySummary, RateMeter, StageBreakdown, TimeWeightedGauge, Welford,
};
use vserve_sched::{SchedOptions, Scheduler, TenantSpec, TokenBucket};
use vserve_tensor::{ops, Tensor};
use vserve_trace::{TraceHandle, Tracer};

use crate::cache::{
    preproc_spec_fingerprint, resolve_capacity_mb, CacheKey, PreprocCache, PreprocCacheStats,
};
use crate::report::{stages, ServingSummary};

/// Span/event names the live server records beyond the canonical
/// [`stages`](crate::report::stages) constants.
///
/// Stage spans (`1-queue`, `2-preproc`, `4-inference`) reuse the
/// breakdown's constants so per-stage span sums reconcile with
/// `StageBreakdown` totals; the names here are the extra zero-duration
/// marker events and the batch-level bookkeeping spans.
pub mod trace_events {
    /// Request accepted into the bounded ingress queue (event; bytes =
    /// payload size).
    pub const INGRESS: &str = "ingress";
    /// Preprocessed-tensor cache hit (event).
    pub const CACHE_HIT: &str = "cache-hit";
    /// Preprocessed-tensor cache miss — a real decode follows (event).
    pub const CACHE_MISS: &str = "cache-miss";
    /// Duplicate request parked on an in-flight leader decode (event).
    pub const COALESCE: &str = "cache-coalesce";
    /// Batcher flushed a batch (event; `batch_id` set, bytes = batch
    /// size).
    pub const BATCH: &str = "batch-flush";
    /// Inference worker delivering a batch's replies (span; request_id 0,
    /// bytes = batch size).
    pub const RESPOND: &str = "respond";
}

/// Environment variable read by [`LiveOptions::default`] for the batch
/// linger (the batcher's maximum queueing delay) in **microseconds**.
/// Unset or unparsable falls back to 2000 µs.
pub const BATCH_LINGER_US_ENV: &str = "VSERVE_BATCH_LINGER_US";

/// Default batch linger when [`BATCH_LINGER_US_ENV`] is unset.
pub const DEFAULT_BATCH_LINGER: Duration = Duration::from_millis(2);

fn default_batch_linger() -> Duration {
    std::env::var(BATCH_LINGER_US_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_micros)
        .unwrap_or(DEFAULT_BATCH_LINGER)
}

/// Tenant specs read from [`vserve_sched::TENANTS_ENV`]
/// (`VSERVE_TENANTS`) by [`LiveOptions::default`]; unset or unparsable
/// yields the empty (single-lane) configuration.
fn tenants_from_env() -> Vec<TenantSpec> {
    std::env::var(vserve_sched::TENANTS_ENV)
        .ok()
        .and_then(|v| vserve_sched::parse_tenants(&v).ok())
        .unwrap_or_default()
}

/// Configuration for a [`LiveServer`].
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Preprocessing worker threads.
    pub preproc_workers: usize,
    /// Inference worker threads.
    pub inference_workers: usize,
    /// Maximum batch size assembled by the batcher (initial value; a
    /// controller may retune it at runtime via
    /// [`LiveServer::set_max_batch`]).
    pub max_batch: usize,
    /// Maximum time the batcher waits to fill a batch (the batch
    /// *linger*; initial value, retunable via
    /// [`LiveServer::set_batch_linger`]). The default reads
    /// [`BATCH_LINGER_US_ENV`].
    pub max_queue_delay: Duration,
    /// Side of the square model input.
    pub input_side: usize,
    /// Ingress queue capacity; submissions beyond it are rejected with
    /// [`LiveError::Overloaded`] instead of queueing unboundedly.
    pub queue_cap: usize,
    /// Optional per-request deadline measured from submission; requests
    /// still unserved past it fail with [`LiveError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Threads in the shared compute [`Backend`] used by JPEG decode,
    /// preprocessing, and the model's kernels. `0` reads `VSERVE_THREADS`
    /// or falls back to the host's available parallelism (the paper's
    /// testbed pins stages to cores of an i9-13900K the same way).
    /// Results are bit-identical for any value.
    pub backend_threads: usize,
    /// Use the DCT-domain scaled decode + fused resize/normalize fast
    /// path ([`vserve_codec::preprocess_jpeg_with`]) instead of the
    /// unfused full-resolution chain. The fast path approximates the
    /// baseline numerics (not bit-identical to it) but is itself
    /// deterministic across thread counts and cache settings.
    pub fast_preproc: bool,
    /// Capacity of the content-addressed preprocessed-tensor cache in
    /// MiB. `Some(0)` disables it; `None` reads
    /// [`PREPROC_CACHE_MB_ENV`](crate::cache::PREPROC_CACHE_MB_ENV) and
    /// falls back to
    /// [`DEFAULT_PREPROC_CACHE_MB`](crate::cache::DEFAULT_PREPROC_CACHE_MB).
    pub preproc_cache_mb: Option<usize>,
    /// Coalesce concurrent duplicate requests: while one worker
    /// preprocesses a payload, other requests with identical bytes park
    /// and share its result instead of decoding again.
    pub coalesce: bool,
    /// Request-level tracer. The default reads `VSERVE_TRACE` /
    /// `VSERVE_TRACE_BUF` ([`Tracer::from_env`]); a disabled tracer (env
    /// unset) costs one branch per record site. Pass
    /// [`Tracer::with_capacity`] to trace programmatically and read the
    /// timeline back through [`LiveServer::tracer`].
    pub trace: Tracer,
    /// Multi-tenant lane specs (`{model, weight, priority, deadline,
    /// quota}` per tenant). Empty — the default — runs the classic
    /// single-lane server; otherwise one [`ModelLane`-backed
    /// lane](vserve_sched) is created per tenant, scheduled by weighted
    /// deficit round-robin with strict priority classes, with per-tenant
    /// token-bucket quotas and EDF-style admission shedding typed
    /// [`LiveError::QuotaExceeded`] / [`LiveError::SloInfeasible`]
    /// before work is queued. The default reads `VSERVE_TENANTS`
    /// ([`vserve_sched::TENANTS_ENV`], parsed by
    /// [`vserve_sched::parse_tenants`]).
    pub tenants: Vec<TenantSpec>,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            preproc_workers: 2,
            inference_workers: 1,
            max_batch: 8,
            max_queue_delay: default_batch_linger(),
            input_side: 224,
            queue_cap: 256,
            deadline: None,
            backend_threads: 0,
            fast_preproc: true,
            preproc_cache_mb: None,
            coalesce: true,
            trace: Tracer::from_env(),
            tenants: tenants_from_env(),
        }
    }
}

/// Per-request result with measured stage times.
///
/// Stage semantics mirror the simulator's per-request breakdown:
/// `inference` is the *per-item* share of the batch wall time
/// (`batch wall / batch_size`, matching the sim's per-image attribution),
/// so summing `inference` across a batch's results recovers the batch
/// wall. `total` is the full round trip and therefore exceeds
/// `queue + preproc + inference` for batched requests by the batch
/// co-residency time.
#[derive(Debug, Clone)]
pub struct LiveResult {
    /// Model output (flat logits/probabilities).
    pub output: Vec<f32>,
    /// Time spent decoding + resizing + normalizing.
    pub preproc: Duration,
    /// Time spent waiting (ingress queue + batcher).
    pub queue: Duration,
    /// Per-item share of model execution: batch wall time / batch size.
    pub inference: Duration,
    /// Size of the batch this request executed in.
    pub batch_size: usize,
    /// Submission-to-response round trip.
    pub total: Duration,
}

/// Errors returned by [`LiveServer::infer`].
#[derive(Debug)]
pub enum LiveError {
    /// The JPEG payload failed to decode.
    Decode(vserve_codec::DecodeJpegError),
    /// The model rejected the preprocessed tensor.
    Model(vserve_dnn::DnnError),
    /// The bounded ingress queue was full; the request was shed
    /// immediately rather than queued.
    Overloaded,
    /// The request's deadline passed before it reached inference.
    DeadlineExceeded,
    /// The tenant's token-bucket quota was empty at admission; the
    /// request was shed before any work was queued.
    QuotaExceeded,
    /// EDF admission estimated the lane could not serve the request
    /// within its tenant deadline (queued depth × learned per-item cost
    /// + linger exceeds the SLO), so it was shed before queueing.
    SloInfeasible,
    /// The server shut down before responding.
    Disconnected,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Decode(e) => write!(f, "decode failed: {e}"),
            LiveError::Model(e) => write!(f, "model failed: {e}"),
            LiveError::Overloaded => write!(f, "ingress queue full"),
            LiveError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            LiveError::QuotaExceeded => write!(f, "tenant quota exceeded"),
            LiveError::SloInfeasible => write!(f, "tenant SLO infeasible at admission"),
            LiveError::Disconnected => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for LiveError {}

/// Snapshot of a [`LiveServer`]'s metrics since start, taken with
/// [`LiveServer::metrics`].
///
/// Field-for-field this mirrors the simulator's `ServerReport` where the
/// quantity exists on a real host; use [`summary`](Self::summary) for the
/// shared [`ServingSummary`] shape.
#[derive(Debug, Clone)]
pub struct LiveMetrics {
    /// Completed requests per second since the server started.
    pub throughput: f64,
    /// Round-trip latency distribution of completed requests.
    pub latency: LatencySummary,
    /// Mean seconds per request attributed to each stage (see
    /// [`stages`](crate::report::stages)).
    pub breakdown: StageBreakdown,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests shed with [`LiveError::Overloaded`].
    pub rejected: u64,
    /// Requests shed with [`LiveError::DeadlineExceeded`].
    pub expired: u64,
    /// Batched forward calls executed (one per formed batch).
    pub forward_calls: u64,
    /// Mean inference batch size actually formed by the batcher.
    pub mean_batch: f64,
    /// Time-averaged ingress + batcher queue depth.
    pub queue_depth_mean: f64,
    /// Peak ingress + batcher queue depth.
    pub queue_depth_peak: f64,
    /// Total wall time spent inside batched forward calls.
    pub inference_wall: Duration,
    /// Threads in the shared compute backend (resolved from
    /// [`LiveOptions::backend_threads`]).
    pub backend_threads: usize,
    /// Mean parallel efficiency of the backend's work regions:
    /// `busy / (wall × threads)` accumulated over every parallel region
    /// the decode, preprocessing, and kernel stages ran.
    pub parallel_efficiency: f64,
    /// Preprocessed-tensor cache and coalescing counters
    /// (hits/misses/coalesced/evictions and resident bytes).
    pub preproc_cache: PreprocCacheStats,
    /// Forward passes that found the model's shared scratch arena busy
    /// and allocated a throwaway local arena instead (see
    /// [`Model::scratch_fallbacks`]). Non-zero values mean concurrent
    /// inference workers are contending on one model instance and paying
    /// per-call allocations. Summed over every zoo model.
    pub scratch_fallbacks: u64,
    /// Per-lane counters, one entry per tenant lane in lane order.
    /// Single-lane servers report exactly one entry (the default lane).
    pub lanes: Vec<LaneMetrics>,
}

/// Per-lane snapshot inside [`LiveMetrics::lanes`] — the quantities the
/// VRM1 exposition renders as `vserve_lane_{depth,completed,shed,p99_us}`.
#[derive(Debug, Clone)]
pub struct LaneMetrics {
    /// Tenant name (the lane's identity for wire routing).
    pub name: String,
    /// Zoo model the lane executes on.
    pub model: String,
    /// Requests admitted and not yet dispatched to inference.
    pub depth: usize,
    /// Requests completed on this lane.
    pub completed: u64,
    /// Requests shed at admission with [`LiveError::QuotaExceeded`] or
    /// [`LiveError::SloInfeasible`].
    pub shed: u64,
    /// 99th-percentile round-trip latency of this lane's completed
    /// requests, microseconds (0 until the first completion).
    pub p99_us: u64,
}

/// One model of a multi-model zoo passed to [`LiveServer::start_zoo`].
#[derive(Debug)]
pub struct ZooModel {
    /// Name tenants reference via [`TenantSpec::model`] and clients
    /// route to on the wire.
    pub name: String,
    /// The model itself; rebound to the server's shared backend.
    pub model: Model,
    /// Side of the square input this model expects.
    pub input_side: usize,
}

impl LiveMetrics {
    /// Reduces to the [`ServingSummary`] shape shared with the simulator's
    /// `ServerReport`.
    pub fn summary(&self) -> ServingSummary {
        ServingSummary {
            throughput: self.throughput,
            latency: self.latency,
            breakdown: self.breakdown.clone(),
            completed: self.completed,
            mean_batch: self.mean_batch,
        }
    }

    /// Fraction of mean latency spent preprocessing.
    pub fn preproc_share(&self) -> f64 {
        self.summary().preproc_share()
    }

    /// Fraction of mean latency spent in DNN inference.
    pub fn inference_share(&self) -> f64 {
        self.summary().inference_share()
    }

    /// Fraction of mean latency spent queued.
    pub fn queue_share(&self) -> f64 {
        self.summary().queue_share()
    }
}

struct MetricsInner {
    latency: LatencyStats,
    /// Resettable copy of `latency` drained by
    /// [`LiveServer::take_latency_window`]: the controller's view of the
    /// *recent* distribution, where the cumulative stats answer "since
    /// start".
    window: LatencyStats,
    breakdown: StageBreakdown,
    meter: RateMeter,
    batch_sizes: Welford,
    queue_depth: TimeWeightedGauge,
    rejected: u64,
    expired: u64,
    forward_calls: u64,
    inference_wall_s: f64,
}

/// Metrics state shared between the public handle and worker threads.
/// Times are converted to seconds since server start at the boundary, the
/// same convention the simulator uses.
struct Shared {
    epoch: Instant,
    inner: Mutex<MetricsInner>,
}

impl Shared {
    fn new() -> Self {
        let mut meter = RateMeter::new();
        meter.open(0.0);
        Shared {
            epoch: Instant::now(),
            inner: Mutex::new(MetricsInner {
                latency: LatencyStats::new(),
                window: LatencyStats::new(),
                breakdown: StageBreakdown::new(),
                meter,
                batch_sizes: Welford::new(),
                queue_depth: TimeWeightedGauge::new(0.0, 0.0),
                rejected: 0,
                expired: 0,
                forward_calls: 0,
                inference_wall_s: 0.0,
            }),
        }
    }

    fn secs(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.epoch).as_secs_f64()
    }

    fn lock(&self) -> MutexGuard<'_, MetricsInner> {
        // A worker panicking mid-update must not take metrics down with it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a request leaving the pre-inference pipeline without being
    /// served (decode failure or expired deadline).
    fn drop_queued(&self, now: Instant, expired: bool) {
        let t = self.secs(now);
        let mut m = self.lock();
        m.queue_depth.add(t, -1.0);
        if expired {
            m.expired += 1;
        }
    }
}

/// The receiver half of a request's reply channel, as returned by the
/// `submit*` family. Named so downstream crates (the net front-end) can
/// store it without depending on the channel crate directly.
pub type ReplyReceiver = Receiver<Result<LiveResult, LiveError>>;

/// A per-request reply channel plus an optional completion hook.
///
/// Blocking callers just `recv()` the channel. The evented net front-end
/// cannot park a thread per request, so [`LiveServer::submit_hooked`]
/// attaches a hook that fires **exactly once** after the reply value is
/// in the channel — the hook enqueues a completion token and wakes the
/// event loop, which then `try_recv`s the already-filled channel without
/// blocking. If a slot is dropped unreplied (worker shutdown, a send
/// path skipped), `Drop` fires the hook anyway so the front-end sees the
/// request die as `Disconnected` instead of leaking the connection slot.
struct ReplySlot {
    tx: Sender<Result<LiveResult, LiveError>>,
    hook: Option<Box<dyn FnOnce() + Send>>,
}

impl ReplySlot {
    /// Delivers the reply, then fires the hook. Consumes the slot so the
    /// hook cannot fire twice (Drop sees it already taken).
    fn send(mut self, msg: Result<LiveResult, LiveError>) {
        let _ = self.tx.send(msg);
        if let Some(hook) = self.hook.take() {
            hook();
        }
    }
}

impl Drop for ReplySlot {
    fn drop(&mut self) {
        if let Some(hook) = self.hook.take() {
            hook();
        }
    }
}

struct Job {
    /// Trace identity: joins this request's spans across threads (and,
    /// for wire requests, to the front-end's transfer spans).
    id: u64,
    /// Tenant lane index the request was admitted to.
    lane: u32,
    jpeg: Vec<u8>,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: ReplySlot,
}

struct Ready {
    id: u64,
    /// Tenant lane index; routes the item to its lane's batch queue.
    lane: u32,
    tensor: Arc<Tensor>,
    submitted: Instant,
    /// Wait in the bounded ingress queue before preprocessing started.
    ingress_wait: Duration,
    preproc: Duration,
    preproc_done: Instant,
    deadline: Option<Instant>,
    reply: ReplySlot,
}

/// Runtime state of one tenant lane, shared (inside an
/// `Arc<Vec<LaneRt>>`) by the submitters, preproc workers, the lane
/// scheduler, and the inference workers.
///
/// Admission control lives here rather than in the scheduler thread so
/// typed sheds ([`LiveError::QuotaExceeded`] / [`LiveError::SloInfeasible`])
/// happen on the submitter's thread *before* any work is queued — the
/// scheduler only ever sees admitted work.
struct LaneRt {
    spec: TenantSpec,
    /// Model this lane executes on (possibly shared with other lanes).
    model: Arc<Model>,
    /// Input side of the lane's model.
    side: usize,
    /// Preproc-spec fingerprint for [`CacheKey::spec`]: lanes with
    /// identical pipelines share cache entries, differing ones cannot
    /// alias.
    spec_fp: u64,
    /// Token-bucket quota, when the tenant configured one.
    bucket: Option<Mutex<TokenBucket>>,
    /// EWMA per-item inference cost in µs (f64 bits; 0.0 = no evidence
    /// yet, in which case EDF admission stays optimistic).
    unit_cost_bits: AtomicU64,
    /// Requests admitted and not yet dispatched to inference.
    depth: AtomicUsize,
    completed: AtomicU64,
    /// Admission sheds (quota + SLO).
    shed: AtomicU64,
    /// Per-lane batch assembly knobs, re-read by the lane scheduler
    /// every round (the per-lane analogue of [`Knobs`]).
    max_batch: AtomicUsize,
    linger_us: AtomicU64,
    /// Per-lane round-trip latency distribution (p99 for VRM1).
    lat: Mutex<LatencyStats>,
}

impl LaneRt {
    /// Trace tenant tag: lane `i` records as `i + 1` (0 = untagged).
    fn tag(idx: usize) -> u32 {
        idx as u32 + 1
    }

    fn unit_cost_us(&self) -> f64 {
        f64::from_bits(self.unit_cost_bits.load(Ordering::Relaxed))
    }

    /// Folds one measured per-item cost into the EWMA (α = ¼). Races
    /// between inference workers lose updates, never corrupt the value.
    fn observe_unit_cost(&self, cost_us: f64) {
        if !cost_us.is_finite() || cost_us <= 0.0 {
            return;
        }
        let prev = self.unit_cost_us();
        let next = if prev <= 0.0 {
            cost_us
        } else {
            prev + (cost_us - prev) * 0.25
        };
        self.unit_cost_bits.store(next.to_bits(), Ordering::Relaxed);
    }

    fn p99_us(&self) -> u64 {
        let p99 = match self.lat.lock() {
            Ok(l) => l.summary().p99,
            Err(e) => e.into_inner().summary().p99,
        };
        (p99 * 1e6) as u64
    }
}

/// Admission control against one lane, on the submitter's thread, before
/// any work is queued. Order: quota first (cheapest, and a tenant over
/// quota should not consume an SLO estimate), then EDF feasibility
/// against the *tenant* SLO. Per-request deadlines are a separate
/// mechanism (they shed as `DeadlineExceeded` downstream) and never
/// trigger `SloInfeasible`. Shared by [`LiveServer::submit`]'s family and
/// [`PipelineHandle::submit_reserved`] so cascade sub-requests face the
/// same typed sheds as direct traffic.
fn admit_lane(l: &LaneRt, shared: &Shared, now: Instant) -> Result<(), LiveError> {
    if let Some(bucket) = &l.bucket {
        let now_us = (shared.secs(now) * 1e6) as u64;
        let mut b = bucket.lock().unwrap_or_else(|e| e.into_inner());
        let ok = b.try_take(now_us);
        drop(b);
        if !ok {
            l.shed.fetch_add(1, Ordering::Relaxed);
            return Err(LiveError::QuotaExceeded);
        }
    }
    if let Some(dl) = l.spec.deadline_us {
        // Optimistic until the lane has cost evidence: a cold lane
        // never sheds on a guess.
        let unit = l.unit_cost_us();
        if unit > 0.0 {
            let est = (l.depth.load(Ordering::Relaxed) as f64 + 1.0) * unit
                + l.linger_us.load(Ordering::Relaxed) as f64;
            if est > dl as f64 {
                l.shed.fetch_add(1, Ordering::Relaxed);
                return Err(LiveError::SloInfeasible);
            }
        }
    }
    Ok(())
}

/// How long an idle preprocessing worker waits on the ingress queue
/// before re-checking the pool target (the shrink latency bound).
const PREPROC_POLL: Duration = Duration::from_millis(20);

/// The live server's runtime-tunable knob block: one cache line of
/// atomics shared by the batcher, the preprocessing pool, and the public
/// setters. The batcher re-reads `max_batch`/`linger_us` at the start of
/// every assembly round, and each preprocessing job re-reads
/// `cache_bytes`, so a controller's store is visible within one flush —
/// no locks, no channel round trips, no restart.
struct Knobs {
    /// Batch size cap read per assembly round.
    max_batch: AtomicUsize,
    /// Batch linger (max queueing delay) in microseconds.
    linger_us: AtomicU64,
    /// Mirror of the preproc cache's byte budget; `0` = disabled. Lets
    /// workers skip hashing without taking the cache lock.
    cache_bytes: AtomicUsize,
    /// Desired preprocessing worker count.
    preproc_target: AtomicUsize,
    /// Workers currently alive (spawned and not yet retired).
    preproc_live: AtomicUsize,
}

/// Current effective knob values, from [`LiveServer::knobs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobSnapshot {
    /// Batch size cap the batcher is assembling against.
    pub max_batch: usize,
    /// Batch linger the batcher waits to fill a batch.
    pub linger: Duration,
    /// Target preprocessing worker count.
    pub preproc_workers: usize,
    /// Preprocessing workers currently alive; trails the target briefly
    /// after a shrink (workers retire between jobs, never mid-job).
    pub preproc_workers_live: usize,
    /// Threads in the shared compute backend.
    pub backend_threads: usize,
    /// Preproc cache byte budget (`0` = disabled).
    pub preproc_cache_bytes: usize,
}

/// Everything a preprocessing worker needs, cloneable so the pool can
/// spawn additional workers after startup. The embedded `tx`/`rx` clones
/// keep the channels open while the pool can still grow; `Drop` takes the
/// pool's copy before joining so the pipeline still drains on shutdown.
#[derive(Clone)]
struct PreprocEnv {
    rx: Receiver<Job>,
    tx: Sender<Ready>,
    shared: Arc<Shared>,
    backend: Backend,
    cache: Arc<Mutex<PreprocCache>>,
    inflight: Arc<Mutex<HashMap<CacheKey, Vec<Job>>>>,
    knobs: Arc<Knobs>,
    tracer: Tracer,
    lanes: Arc<Vec<LaneRt>>,
    fast: bool,
    coalesce: bool,
}

/// Spawn-side state of the growable preprocessing pool, behind a `Mutex`
/// on the server so concurrent `set_preproc_workers` calls serialize.
struct PreprocPool {
    env: Option<PreprocEnv>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Monotonic id for trace track names (`preproc-{id}`): a pool that
    /// shrinks and regrows never reuses a track.
    next_worker_id: usize,
}

impl PreprocPool {
    /// Spawns one worker. The caller has already accounted for it in
    /// `preproc_live`.
    fn spawn(&mut self) {
        let env = match &self.env {
            Some(e) => e.clone(),
            None => return,
        };
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        let tr = env.tracer.register(&format!("preproc-{id}"));
        self.handles
            .push(std::thread::spawn(move || preproc_worker_loop(env, tr)));
    }
}

/// One worker retires iff the pool is over target (CAS on the live count,
/// so exactly `live - target` workers exit no matter how many race).
fn try_retire(knobs: &Knobs) -> bool {
    knobs
        .preproc_live
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |live| {
            let target = knobs.preproc_target.load(Ordering::SeqCst);
            (live > target && live > 1).then(|| live - 1)
        })
        .is_ok()
}

/// Body of a preprocessing worker. Jobs are taken from the shared ingress
/// receiver with a short timeout so shrink requests are honored between
/// jobs — queued requests stay in the channel for surviving workers, so a
/// shrink can never drop work.
fn preproc_worker_loop(env: PreprocEnv, tr: TraceHandle) {
    // Each worker owns a scratch arena: after the first frame the decode
    // path stops allocating its temporaries.
    let mut scratch = Scratch::new();
    loop {
        let job = match env.rx.recv_timeout(PREPROC_POLL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if try_retire(&env.knobs) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => {
                env.knobs.preproc_live.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        };
        if process_one(&env, &tr, &mut scratch, job).is_err() {
            // Ready channel closed: the server is shutting down.
            env.knobs.preproc_live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        if try_retire(&env.knobs) {
            return;
        }
    }
}

/// Decodes (or cache-serves) one job and forwards `Ready` work to the
/// batcher. `Err(())` means the ready channel is closed and the worker
/// must exit.
fn process_one(
    env: &PreprocEnv,
    tr: &TraceHandle,
    scratch: &mut Scratch,
    job: Job,
) -> Result<(), ()> {
    let start = Instant::now();
    let nbytes = job.jpeg.len() as u64;
    let lane = &env.lanes[job.lane as usize];
    let side = lane.side;
    let tag = LaneRt::tag(job.lane as usize);
    if job.deadline.is_some_and(|d| start >= d) {
        lane.depth.fetch_sub(1, Ordering::Relaxed);
        env.shared.drop_queued(start, true);
        let _ = job.reply.send(Err(LiveError::DeadlineExceeded));
        return Ok(());
    }
    // Re-read per job (not per worker lifetime) so a runtime cache resize
    // takes effect on the very next request.
    let cache_on = env.knobs.cache_bytes.load(Ordering::Relaxed) > 0;
    let key = (cache_on || env.coalesce)
        .then(|| CacheKey::for_payload_spec(&job.jpeg, side, lane.spec_fp));
    if let Some(k) = key {
        if let Some(tensor) = env.cache.lock().ok().and_then(|mut c| c.get(&k)) {
            // Cache hit: the measured preprocessing time is just the
            // hash + lookup above, ≈ 0.
            let done = Instant::now();
            tr.span_tagged(tag, job.id, stages::QUEUE, job.submitted, start, 0, nbytes);
            tr.span_tagged(tag, job.id, stages::PREPROC, start, done, 0, nbytes);
            tr.event_tagged(tag, job.id, trace_events::CACHE_HIT, done, nbytes);
            let ready = Ready {
                id: job.id,
                lane: job.lane,
                tensor,
                submitted: job.submitted,
                ingress_wait: start.saturating_duration_since(job.submitted),
                preproc: done - start,
                preproc_done: done,
                deadline: job.deadline,
                reply: job.reply,
            };
            return env.tx.send(ready).map_err(|_| ());
        }
        if env.coalesce {
            if let Ok(mut infl) = env.inflight.lock() {
                if let Some(waiters) = infl.get_mut(&k) {
                    let wid = job.id;
                    waiters.push(job);
                    drop(infl);
                    if let Ok(mut c) = env.cache.lock() {
                        c.note_coalesced();
                    }
                    tr.event_tagged(tag, wid, trace_events::COALESCE, start, nbytes);
                    return Ok(());
                }
                infl.insert(k, Vec::new());
            }
        }
        if cache_on {
            tr.event_tagged(tag, job.id, trace_events::CACHE_MISS, start, nbytes);
        }
    }
    let result = if env.fast {
        vserve_codec::preprocess_jpeg_with(&env.backend, scratch, &job.jpeg, side)
    } else {
        vserve_codec::decode_with(&env.backend, scratch, &job.jpeg)
            .map(|img| ops::standard_preprocess_with(&env.backend, &img, side))
    };
    let done = Instant::now();
    // Publish to the cache *before* detaching the waiter list so a
    // duplicate arriving in between finds one or the other; then serve
    // the leader and every waiter.
    let tensor = result.map(Arc::new);
    if let (Some(k), Ok(t)) = (key, &tensor) {
        if cache_on {
            if let Ok(mut c) = env.cache.lock() {
                c.insert(k, Arc::clone(t));
            }
        }
    }
    let waiters = match (key, env.coalesce) {
        (Some(k), true) => env
            .inflight
            .lock()
            .ok()
            .and_then(|mut infl| infl.remove(&k))
            .unwrap_or_default(),
        _ => Vec::new(),
    };
    match tensor {
        Ok(tensor) => {
            tr.span_tagged(tag, job.id, stages::QUEUE, job.submitted, start, 0, nbytes);
            tr.span_tagged(tag, job.id, stages::PREPROC, start, done, 0, nbytes);
            let ready = Ready {
                id: job.id,
                lane: job.lane,
                tensor: Arc::clone(&tensor),
                submitted: job.submitted,
                ingress_wait: start.saturating_duration_since(job.submitted),
                preproc: done - start,
                preproc_done: done,
                deadline: job.deadline,
                reply: job.reply,
            };
            env.tx.send(ready).map_err(|_| ())?;
            for w in waiters {
                let wtag = LaneRt::tag(w.lane as usize);
                if w.deadline.is_some_and(|d| done >= d) {
                    env.lanes[w.lane as usize]
                        .depth
                        .fetch_sub(1, Ordering::Relaxed);
                    env.shared.drop_queued(done, true);
                    let _ = w.reply.send(Err(LiveError::DeadlineExceeded));
                    continue;
                }
                // A waiter never preprocessed: the shared execution is
                // charged once to the leader, and the waiter's wait
                // counts as queueing. Mirror that in the trace: a
                // full-wait queue span plus a zero-length preproc span
                // (so span counts match breakdown counts per completed
                // request).
                tr.span_tagged(wtag, w.id, stages::QUEUE, w.submitted, done, 0, nbytes);
                tr.span_tagged(wtag, w.id, stages::PREPROC, done, done, 0, 0);
                let ready = Ready {
                    id: w.id,
                    lane: w.lane,
                    tensor: Arc::clone(&tensor),
                    submitted: w.submitted,
                    ingress_wait: done.saturating_duration_since(w.submitted),
                    preproc: Duration::ZERO,
                    preproc_done: done,
                    deadline: w.deadline,
                    reply: w.reply,
                };
                env.tx.send(ready).map_err(|_| ())?;
            }
        }
        Err(e) => {
            lane.depth.fetch_sub(1, Ordering::Relaxed);
            env.shared.drop_queued(done, false);
            let _ = job.reply.send(Err(LiveError::Decode(e)));
            for w in waiters {
                env.lanes[w.lane as usize]
                    .depth
                    .fetch_sub(1, Ordering::Relaxed);
                env.shared.drop_queued(done, false);
                let _ = w.reply.send(Err(LiveError::Decode(e)));
            }
        }
    }
    Ok(())
}

/// Body of the lane scheduler thread (the multi-tenant successor of the
/// single dynamic batcher). It owns a deterministic
/// [`vserve_sched::Scheduler`] with one lane per tenant — quota and
/// deadline admission are stripped because they already ran on the
/// submitter's thread — and alternates between draining the shared ready
/// channel into per-lane queues and dispatching batches picked by
/// weighted deficit round-robin under strict priority classes. The
/// blocking wait is bounded by the earliest lane linger expiry, so
/// flushes happen on time without polling.
fn lane_scheduler_loop(
    ready_rx: Receiver<Ready>,
    batch_tx: Sender<(u64, u32, Vec<Ready>)>,
    shared: Arc<Shared>,
    lanes: Arc<Vec<LaneRt>>,
    tr: TraceHandle,
) {
    let epoch = Instant::now();
    let mut sched: Scheduler<Ready> = Scheduler::new(SchedOptions::default());
    for l in lanes.iter() {
        let mut spec = l.spec.clone();
        spec.quota = None;
        spec.deadline_us = None;
        sched.add_lane(spec);
    }
    // The bounded ingress channel is the real backpressure; lane queues
    // must never shed admitted work.
    for i in 0..sched.lane_count() {
        sched.lane_mut(i).set_queue_cap(usize::MAX / 2);
    }
    let mut seq = 0u64;
    let mut flush = |lane_idx: usize, items: Vec<(Ready, u64)>| -> Result<(), ()> {
        let now = Instant::now();
        let t = shared.secs(now);
        let mut live = Vec::with_capacity(items.len());
        let mut dropped = Vec::new();
        for (r, _) in items {
            if r.deadline.is_some_and(|d| now >= d) {
                dropped.push(r.reply);
            } else {
                live.push(r);
            }
        }
        lanes[lane_idx]
            .depth
            .fetch_sub(live.len() + dropped.len(), Ordering::Relaxed);
        {
            let mut m = shared.lock();
            m.queue_depth.add(t, -((live.len() + dropped.len()) as f64));
            m.expired += dropped.len() as u64;
        }
        for reply in dropped {
            let _ = reply.send(Err(LiveError::DeadlineExceeded));
        }
        if live.is_empty() {
            return Ok(());
        }
        seq += 1;
        let tn = tr.secs(now);
        tr.span_at_tagged(
            LaneRt::tag(lane_idx),
            0,
            trace_events::BATCH,
            tn,
            tn,
            seq,
            live.len() as u64,
        );
        batch_tx.send((seq, lane_idx as u32, live)).map_err(|_| ())
    };
    loop {
        let now0 = epoch.elapsed().as_micros() as u64;
        let msg = match sched.next_flush_at() {
            None => match ready_rx.recv() {
                Ok(r) => Some(r),
                Err(_) => break,
            },
            Some(at) => {
                let wait = Duration::from_micros(at.saturating_sub(now0));
                match ready_rx.recv_timeout(wait) {
                    Ok(r) => Some(r),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        if let Some(first) = msg {
            let mut pending = vec![first];
            while let Ok(r) = ready_rx.try_recv() {
                pending.push(r);
            }
            let now = epoch.elapsed().as_micros() as u64;
            for r in pending {
                let idx = (r.lane as usize).min(lanes.len().saturating_sub(1));
                if let Err((_, r)) = sched.submit(idx, r, now) {
                    // Unreachable with the uncapped lane queues above;
                    // fail the request cleanly rather than dropping it.
                    lanes[idx].depth.fetch_sub(1, Ordering::Relaxed);
                    shared.drop_queued(Instant::now(), false);
                    let _ = r.reply.send(Err(LiveError::Overloaded));
                }
            }
        }
        // Refresh per-lane assembly knobs: a controller's store is
        // visible within one scheduling round.
        for i in 0..sched.lane_count() {
            let mb = lanes[i].max_batch.load(Ordering::Relaxed).max(1);
            let lg = lanes[i].linger_us.load(Ordering::Relaxed);
            sched.lane_mut(i).set_assembly(mb, lg);
        }
        let now = epoch.elapsed().as_micros() as u64;
        while let Some(batch) = sched.next_batch(now) {
            if flush(batch.lane, batch.items).is_err() {
                return;
            }
        }
    }
    // Ready channel disconnected (shutdown): flush everything still
    // queued so in-flight requests are answered, not leaked.
    for i in 0..sched.lane_count() {
        let items = sched.drain_lane(i);
        if !items.is_empty() && flush(i, items).is_err() {
            return;
        }
    }
}

/// Body of one inference worker: executes each lane batch as a single
/// batched forward call on the lane's model, attributes per-item cost,
/// feeds the lane's EDF cost estimate, and answers every request.
fn inference_worker_loop(
    rx: Receiver<(u64, u32, Vec<Ready>)>,
    lanes: Arc<Vec<LaneRt>>,
    shared: Arc<Shared>,
    tr: TraceHandle,
) {
    while let Ok((batch_seq, lane_idx, batch)) = rx.recv() {
        let lane = &lanes[lane_idx as usize];
        let tag = LaneRt::tag(lane_idx as usize);
        let n = batch.len();
        let start = Instant::now();
        let inputs: Vec<&Tensor> = batch.iter().map(|r| r.tensor.as_ref()).collect();
        let result = lane.model.forward_batch(&inputs);
        let finished = Instant::now();
        let wall = finished.saturating_duration_since(start);
        // Per-item attribution: each request is charged its share of the
        // batch, matching the sim's per-image accounting, so stage sums
        // do not over-count GPU time.
        let per_item = wall / n as u32;
        lane.observe_unit_cost(wall.as_secs_f64() * 1e6 / n as f64);
        // Trace mirror of the same attribution: the batch wall is sliced
        // into n contiguous per-item spans so the inference track shows
        // batch composition and span sums equal the breakdown's charges.
        let t0 = tr.secs(start);
        let p = per_item.as_secs_f64();
        let mut replies = Vec::with_capacity(n);
        {
            let mut m = shared.lock();
            m.forward_calls += 1;
            m.batch_sizes.push(n as f64);
            m.inference_wall_s += wall.as_secs_f64();
            match result {
                Ok(outputs) => {
                    let t = shared.secs(finished);
                    let mut lat = lane.lat.lock().unwrap_or_else(|e| e.into_inner());
                    for (i, (ready, out)) in batch.into_iter().zip(outputs).enumerate() {
                        let queue = ready.ingress_wait
                            + start.saturating_duration_since(ready.preproc_done);
                        let total = finished.saturating_duration_since(ready.submitted);
                        tr.span_tagged(
                            tag,
                            ready.id,
                            stages::QUEUE,
                            ready.preproc_done,
                            start,
                            batch_seq,
                            0,
                        );
                        tr.span_at_tagged(
                            tag,
                            ready.id,
                            stages::INFERENCE,
                            t0 + i as f64 * p,
                            t0 + (i + 1) as f64 * p,
                            batch_seq,
                            0,
                        );
                        lane.completed.fetch_add(1, Ordering::Relaxed);
                        lat.push(total.as_secs_f64());
                        m.latency.push(total.as_secs_f64());
                        m.window.push(total.as_secs_f64());
                        m.meter.record(t);
                        m.breakdown.record(stages::QUEUE, queue.as_secs_f64());
                        m.breakdown
                            .record(stages::PREPROC, ready.preproc.as_secs_f64());
                        m.breakdown
                            .record(stages::INFERENCE, per_item.as_secs_f64());
                        replies.push((
                            ready.reply,
                            Ok(LiveResult {
                                output: out.into_vec(),
                                preproc: ready.preproc,
                                queue,
                                inference: per_item,
                                batch_size: n,
                                total,
                            }),
                        ));
                    }
                }
                Err(e) => {
                    for ready in batch {
                        replies.push((ready.reply, Err(LiveError::Model(e.clone()))));
                    }
                }
            }
        }
        let respond_start = Instant::now();
        for (reply, msg) in replies {
            let _ = reply.send(msg);
        }
        tr.span_tagged(
            tag,
            0,
            trace_events::RESPOND,
            respond_start,
            Instant::now(),
            batch_seq,
            n as u64,
        );
    }
}

/// A running live server; dropping it shuts down all worker threads.
pub struct LiveServer {
    ingress: Option<Sender<Job>>,
    /// Distinct zoo models in zoo order (lane → model via
    /// `LaneRt::model_idx`).
    models: Vec<Arc<Model>>,
    /// Tenant lanes in lane order; index is the stable lane id.
    lanes: Arc<Vec<LaneRt>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
    deadline: Option<Duration>,
    backend: Backend,
    cache: Arc<Mutex<PreprocCache>>,
    knobs: Arc<Knobs>,
    pool: Mutex<PreprocPool>,
    tracer: Tracer,
    /// Records ingress/shed events from submitter threads.
    ingress_trace: TraceHandle,
    /// Auto-assigned trace ids for in-process submissions (the net
    /// front-end supplies its own via [`LiveServer::submit_traced`]).
    /// Shared with [`PipelineHandle`]s so cascade sub-requests draw from
    /// the same id space.
    next_req: Arc<AtomicU64>,
    /// Ingress queue capacity, exposed to pipeline executors as the
    /// fan-out reservation budget (see [`PipelineHandle::queue_cap`]).
    queue_cap: usize,
    /// Registered multi-stage pipeline executors by name
    /// ([`LiveServer::register_pipeline`]). Cleared *first* on drop: a
    /// driver's executor holds an ingress sender clone, so it must shut
    /// down before the worker joins below can observe a closed channel.
    pipelines: Mutex<HashMap<String, Arc<dyn PipelineDriver>>>,
}

impl std::fmt::Debug for LiveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveServer")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl LiveServer {
    /// Starts preprocessing, batching, and inference threads around
    /// `model`.
    ///
    /// All stages share one compute [`Backend`] sized by
    /// [`LiveOptions::backend_threads`]; the model is rebound to it, so an
    /// explicit [`Model::with_backend`] before `start` is overridden.
    ///
    /// This is the single-model convenience wrapper over
    /// [`start_zoo`](Self::start_zoo): the zoo holds one model named
    /// `"default"`, and every entry of [`LiveOptions::tenants`] maps to
    /// it regardless of its `model` field (so a tenant list written for
    /// a zoo still works when pointed at a single-model server). Empty
    /// `tenants` yields the classic single default lane.
    pub fn start(model: Model, opts: LiveOptions) -> Self {
        let zoo = vec![ZooModel {
            name: "default".to_string(),
            model,
            input_side: opts.input_side,
        }];
        Self::start_zoo(zoo, opts).expect("single-model start is infallible")
    }

    /// Starts a multi-model, multi-tenant server: one lane per entry of
    /// [`LiveOptions::tenants`] (or one default lane per zoo model when
    /// `tenants` is empty), all lanes sharing the compute backend, the
    /// preproc pool, and the inference workers.
    ///
    /// # Errors
    ///
    /// Returns an error when `zoo` is empty or a tenant references a
    /// model name not in a multi-model zoo (single-model zoos resolve
    /// every tenant to their one model).
    pub fn start_zoo(zoo: Vec<ZooModel>, opts: LiveOptions) -> Result<Self, String> {
        if zoo.is_empty() {
            return Err("start_zoo requires at least one model".to_string());
        }
        let backend = if opts.backend_threads == 0 {
            Backend::from_env()
        } else {
            Backend::new(opts.backend_threads)
        };
        let mut models = Vec::with_capacity(zoo.len());
        let mut names = Vec::with_capacity(zoo.len());
        let mut sides = Vec::with_capacity(zoo.len());
        for zm in zoo {
            models.push(Arc::new(zm.model.with_backend(backend.clone())));
            names.push(zm.name);
            sides.push(zm.input_side);
        }
        let tenants: Vec<TenantSpec> = if opts.tenants.is_empty() {
            names
                .iter()
                .map(|n| TenantSpec::new(n.clone(), n.clone()))
                .collect()
        } else {
            opts.tenants.clone()
        };
        let spec_fp =
            preproc_spec_fingerprint(opts.fast_preproc, &ops::IMAGENET_MEAN, &ops::IMAGENET_STD);
        let linger_us = opts.max_queue_delay.as_micros().min(u64::MAX as u128) as u64;
        let mut lanes = Vec::with_capacity(tenants.len());
        for spec in tenants {
            let model_idx = match names.iter().position(|n| *n == spec.model) {
                Some(i) => i,
                None if names.len() == 1 => 0,
                None => {
                    return Err(format!(
                        "tenant '{}' references unknown model '{}'",
                        spec.name, spec.model
                    ))
                }
            };
            lanes.push(LaneRt {
                model: Arc::clone(&models[model_idx]),
                side: sides[model_idx],
                spec_fp,
                bucket: spec
                    .quota
                    .clone()
                    .map(|q| Mutex::new(TokenBucket::from_spec(q))),
                unit_cost_bits: AtomicU64::new(0),
                depth: AtomicUsize::new(0),
                completed: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                max_batch: AtomicUsize::new(opts.max_batch.max(1)),
                linger_us: AtomicU64::new(linger_us),
                lat: Mutex::new(LatencyStats::new()),
                spec,
            });
        }
        let lanes = Arc::new(lanes);
        let shared = Arc::new(Shared::new());
        let (ingress_tx, ingress_rx) = bounded::<Job>(opts.queue_cap.max(1));
        let (ready_tx, ready_rx) = bounded::<Ready>(opts.queue_cap.max(1));
        // Batches carry the scheduler-assigned sequence number (from 1)
        // that the trace uses as `batch_id`, plus the lane they belong to.
        let (batch_tx, batch_rx) = bounded::<(u64, u32, Vec<Ready>)>(4);
        let mut handles = Vec::new();

        // Preprocessing workers: decode → resize → normalize, with a
        // content-addressed result cache and in-flight coalescing. The
        // in-flight table maps a payload key to the jobs parked on the
        // worker currently preprocessing that payload; the completing
        // worker forwards one `Ready` per parked job, so N concurrent
        // duplicates cost exactly one decode.
        let cache_bytes = resolve_capacity_mb(opts.preproc_cache_mb) * 1024 * 1024;
        let cache = Arc::new(Mutex::new(PreprocCache::new(cache_bytes)));
        let inflight: Arc<Mutex<HashMap<CacheKey, Vec<Job>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let workers = opts.preproc_workers.max(1);
        let knobs = Arc::new(Knobs {
            max_batch: AtomicUsize::new(opts.max_batch.max(1)),
            linger_us: AtomicU64::new(linger_us),
            cache_bytes: AtomicUsize::new(cache_bytes),
            preproc_target: AtomicUsize::new(workers),
            preproc_live: AtomicUsize::new(workers),
        });
        let tracer = opts.trace.clone();
        // Registration order fixes trace thread ids: ingress, preproc
        // workers, batcher, inference workers.
        let ingress_trace = tracer.register("ingress");
        let env = PreprocEnv {
            rx: ingress_rx,
            tx: ready_tx,
            shared: Arc::clone(&shared),
            backend: backend.clone(),
            cache: Arc::clone(&cache),
            inflight,
            knobs: Arc::clone(&knobs),
            tracer: tracer.clone(),
            lanes: Arc::clone(&lanes),
            fast: opts.fast_preproc,
            coalesce: opts.coalesce,
        };
        let mut pool = PreprocPool {
            env: Some(env),
            handles: Vec::new(),
            next_worker_id: 0,
        };
        for _ in 0..workers {
            pool.spawn();
        }

        // Lane scheduler: per-lane batch assembly under weighted deficit
        // round-robin with strict priority classes (replaces the single
        // dynamic batcher; a one-lane server degenerates to exactly the
        // old fill-or-linger behavior).
        {
            let batch_tx = batch_tx.clone();
            let shared = Arc::clone(&shared);
            let lanes_rt = Arc::clone(&lanes);
            let tr = tracer.register("batcher");
            handles.push(std::thread::spawn(move || {
                lane_scheduler_loop(ready_rx, batch_tx, shared, lanes_rt, tr)
            }));
        }
        drop(batch_tx);

        // Inference workers: one batched forward call per assembled batch,
        // on the batch's lane model.
        for w in 0..opts.inference_workers.max(1) {
            let rx = batch_rx.clone();
            let lanes_rt = Arc::clone(&lanes);
            let shared = Arc::clone(&shared);
            let tr = tracer.register(&format!("inference-{w}"));
            handles.push(std::thread::spawn(move || {
                inference_worker_loop(rx, lanes_rt, shared, tr)
            }));
        }

        Ok(LiveServer {
            ingress: Some(ingress_tx),
            models,
            lanes,
            handles,
            shared,
            deadline: opts.deadline,
            backend,
            cache,
            knobs,
            pool: Mutex::new(pool),
            tracer,
            ingress_trace,
            next_req: Arc::new(AtomicU64::new(1)),
            queue_cap: opts.queue_cap.max(1),
            pipelines: Mutex::new(HashMap::new()),
        })
    }

    /// The server's tracer: snapshot it for a span timeline
    /// ([`Tracer::snapshot`]) or export with
    /// [`vserve_trace::chrome::chrome_trace_json`]. Disabled unless
    /// [`LiveOptions::trace`] was enabled (or `VSERVE_TRACE` set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Submits a JPEG asynchronously; the returned channel yields the
    /// result.
    ///
    /// When the bounded ingress queue is full the request is shed
    /// immediately: the channel already holds
    /// `Err(`[`LiveError::Overloaded`]`)`.
    pub fn submit(&self, jpeg: Vec<u8>) -> Receiver<Result<LiveResult, LiveError>> {
        self.submit_with_deadline(jpeg, None)
    }

    /// Like [`submit`](Self::submit), but with a per-request deadline that
    /// overrides [`LiveOptions::deadline`]. The network front-end uses
    /// this to propagate a client-supplied deadline from the wire into the
    /// shedding machinery; `None` keeps the server-wide default.
    pub fn submit_with_deadline(
        &self,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
    ) -> Receiver<Result<LiveResult, LiveError>> {
        self.submit_traced(jpeg, deadline, None)
    }

    /// Like [`submit_with_deadline`](Self::submit_with_deadline), but with
    /// a caller-supplied trace id. The network front-end passes the id it
    /// recorded its transfer/deserialize spans under, so a wire request's
    /// spans join into one timeline across both layers. `None` assigns
    /// the next in-process id (a counter from 1).
    pub fn submit_traced(
        &self,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
    ) -> Receiver<Result<LiveResult, LiveError>> {
        self.submit_inner(0, jpeg, deadline, trace_id, None)
    }

    /// Like [`submit_traced`](Self::submit_traced), but attaches a
    /// completion hook that fires exactly once after the reply value is
    /// placed in the returned channel (including the shed paths and, on
    /// shutdown, a dropped-unreplied request — `try_recv` then yields
    /// `Err`, which callers should treat as [`LiveError::Disconnected`]).
    ///
    /// This is the bridge for readiness-driven callers: the evented net
    /// front-end passes a hook that pushes a completion token and wakes
    /// its poller, so no thread ever blocks on the receiver. By the time
    /// the hook runs, `try_recv` on the returned channel is guaranteed to
    /// succeed for replied requests.
    pub fn submit_hooked(
        &self,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
        hook: Box<dyn FnOnce() + Send>,
    ) -> Receiver<Result<LiveResult, LiveError>> {
        self.submit_inner(0, jpeg, deadline, trace_id, Some(hook))
    }

    /// Number of tenant lanes (1 for single-lane servers).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Resolves a tenant name — or, failing that, a model name — to its
    /// lane index (first match wins). The net front-end routes wire
    /// requests with a tenant header through this.
    pub fn lane_of(&self, name: &str) -> Option<usize> {
        self.lanes
            .iter()
            .position(|l| l.spec.name == name)
            .or_else(|| self.lanes.iter().position(|l| l.spec.model == name))
    }

    /// Tenant specs in lane order.
    pub fn lane_specs(&self) -> Vec<TenantSpec> {
        self.lanes.iter().map(|l| l.spec.clone()).collect()
    }

    /// Like [`submit`](Self::submit), addressed to a specific lane.
    pub fn submit_lane(&self, lane: usize, jpeg: Vec<u8>) -> ReplyReceiver {
        self.submit_inner(lane, jpeg, None, None, None)
    }

    /// Lane-addressed [`submit_traced`](Self::submit_traced).
    pub fn submit_lane_traced(
        &self,
        lane: usize,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
    ) -> ReplyReceiver {
        self.submit_inner(lane, jpeg, deadline, trace_id, None)
    }

    /// Lane-addressed [`submit_hooked`](Self::submit_hooked).
    pub fn submit_lane_hooked(
        &self,
        lane: usize,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
        hook: Box<dyn FnOnce() + Send>,
    ) -> ReplyReceiver {
        self.submit_inner(lane, jpeg, deadline, trace_id, Some(hook))
    }

    fn submit_inner(
        &self,
        lane: usize,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
        hook: Option<Box<dyn FnOnce() + Send>>,
    ) -> Receiver<Result<LiveResult, LiveError>> {
        let (tx, rx) = bounded(1);
        let now = Instant::now();
        let id = trace_id.unwrap_or_else(|| self.next_req.fetch_add(1, Ordering::Relaxed));
        let nbytes = jpeg.len() as u64;
        let slot = ReplySlot { tx, hook };
        let Some(l) = self.lanes.get(lane) else {
            slot.send(Err(LiveError::Disconnected));
            return rx;
        };
        if let Err(e) = admit_lane(l, &self.shared, now) {
            slot.send(Err(e));
            return rx;
        }
        let job = Job {
            id,
            lane: lane as u32,
            jpeg,
            submitted: now,
            deadline: deadline.or(self.deadline).map(|d| now + d),
            reply: slot,
        };
        let Some(ingress) = &self.ingress else {
            return rx;
        };
        match ingress.try_send(job) {
            Ok(()) => {
                l.depth.fetch_add(1, Ordering::Relaxed);
                let t = self.shared.secs(now);
                self.shared.lock().queue_depth.add(t, 1.0);
                self.ingress_trace.event_tagged(
                    LaneRt::tag(lane),
                    id,
                    trace_events::INGRESS,
                    now,
                    nbytes,
                );
            }
            Err(TrySendError::Full(job)) => {
                self.shared.lock().rejected += 1;
                let _ = job.reply.send(Err(LiveError::Overloaded));
            }
            Err(TrySendError::Disconnected(job)) => {
                let _ = job.reply.send(Err(LiveError::Disconnected));
            }
        }
        rx
    }

    /// Submits a JPEG and blocks for the result.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError`] if decoding or model execution fails, if the
    /// server is overloaded or the deadline passes, or if the server shuts
    /// down first.
    pub fn infer(&self, jpeg: Vec<u8>) -> Result<LiveResult, LiveError> {
        self.submit(jpeg)
            .recv()
            .map_err(|_| LiveError::Disconnected)?
    }

    /// Snapshots the server's metrics since start.
    pub fn metrics(&self) -> LiveMetrics {
        let t = self.shared.secs(Instant::now());
        let stats = self.backend.stats();
        let cache_stats = self
            .cache
            .lock()
            .map(|c| c.stats())
            .unwrap_or_else(|e| e.into_inner().stats());
        // Lane snapshots are collected before taking the shared metrics
        // lock (inference workers acquire shared → lane.lat; acquiring
        // in the reverse order here would risk deadlock).
        let lanes: Vec<LaneMetrics> = self
            .lanes
            .iter()
            .map(|l| LaneMetrics {
                name: l.spec.name.clone(),
                model: l.spec.model.clone(),
                depth: l.depth.load(Ordering::Relaxed),
                completed: l.completed.load(Ordering::Relaxed),
                shed: l.shed.load(Ordering::Relaxed),
                p99_us: l.p99_us(),
            })
            .collect();
        let m = self.shared.lock();
        let mut meter = m.meter;
        meter.close(t);
        LiveMetrics {
            throughput: meter.rate(),
            latency: m.latency.summary(),
            breakdown: m.breakdown.clone(),
            completed: meter.count(),
            rejected: m.rejected,
            expired: m.expired,
            forward_calls: m.forward_calls,
            mean_batch: m.batch_sizes.mean(),
            queue_depth_mean: m.queue_depth.time_average(t),
            queue_depth_peak: m.queue_depth.peak(),
            inference_wall: Duration::from_secs_f64(m.inference_wall_s),
            backend_threads: stats.threads,
            parallel_efficiency: stats.efficiency(),
            preproc_cache: cache_stats,
            scratch_fallbacks: self.models.iter().map(|m| m.scratch_fallbacks()).sum(),
            lanes,
        }
    }

    /// Drains and resets the windowed latency distribution: everything
    /// completed since the previous call (or since start). This is the
    /// controller's observation channel — the cumulative
    /// [`metrics`](Self::metrics) summary would smear a knob change's
    /// effect across the whole run.
    pub fn take_latency_window(&self) -> LatencySummary {
        let mut m = self.shared.lock();
        std::mem::replace(&mut m.window, LatencyStats::new()).summary()
    }

    /// Snapshot of the current effective knob values.
    pub fn knobs(&self) -> KnobSnapshot {
        KnobSnapshot {
            max_batch: self.knobs.max_batch.load(Ordering::Relaxed),
            linger: Duration::from_micros(self.knobs.linger_us.load(Ordering::Relaxed)),
            preproc_workers: self.knobs.preproc_target.load(Ordering::SeqCst),
            preproc_workers_live: self.knobs.preproc_live.load(Ordering::SeqCst),
            backend_threads: self.backend.threads(),
            preproc_cache_bytes: self.knobs.cache_bytes.load(Ordering::Relaxed),
        }
    }

    /// Retunes the batch size cap (clamped to ≥ 1) on **every** lane;
    /// applies from the next assembly round. Multi-tenant servers should
    /// prefer [`set_lane_max_batch`](Self::set_lane_max_batch).
    pub fn set_max_batch(&self, n: usize) {
        self.knobs.max_batch.store(n.max(1), Ordering::Relaxed);
        for l in self.lanes.iter() {
            l.max_batch.store(n.max(1), Ordering::Relaxed);
        }
    }

    /// Retunes the batch linger on **every** lane; applies from the next
    /// assembly round. Multi-tenant servers should prefer
    /// [`set_lane_batch_linger`](Self::set_lane_batch_linger).
    pub fn set_batch_linger(&self, linger: Duration) {
        let us = linger.as_micros().min(u64::MAX as u128) as u64;
        self.knobs.linger_us.store(us, Ordering::Relaxed);
        for l in self.lanes.iter() {
            l.linger_us.store(us, Ordering::Relaxed);
        }
    }

    /// Retunes one lane's batch size cap (clamped to ≥ 1), leaving the
    /// other lanes alone. Out-of-range lanes are ignored.
    pub fn set_lane_max_batch(&self, lane: usize, n: usize) {
        if let Some(l) = self.lanes.get(lane) {
            l.max_batch.store(n.max(1), Ordering::Relaxed);
        }
    }

    /// Retunes one lane's batch linger, leaving the other lanes alone.
    /// Out-of-range lanes are ignored.
    pub fn set_lane_batch_linger(&self, lane: usize, linger: Duration) {
        if let Some(l) = self.lanes.get(lane) {
            l.linger_us.store(
                linger.as_micros().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
        }
    }

    /// Repartitions the shared compute backend (JPEG decode, preproc
    /// kernels, and model execution) to `n` threads, from the next
    /// parallel region. Outputs are bit-identical for any value.
    pub fn set_backend_threads(&self, n: usize) {
        self.backend.set_threads(n);
    }

    /// Resizes the preproc cache byte budget immediately (LRU entries are
    /// evicted down to the new budget; `0` disables the cache and drains
    /// it). Workers observe the change on their next job.
    pub fn set_preproc_cache_bytes(&self, bytes: usize) {
        self.knobs.cache_bytes.store(bytes, Ordering::Relaxed);
        let mut c = match self.cache.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        c.set_capacity_bytes(bytes);
    }

    /// Grows or shrinks the preprocessing worker pool to `n` workers
    /// (clamped to ≥ 1) without dropping queued requests: growth spawns
    /// immediately; shrink lets surplus workers retire *between* jobs
    /// (within [`PREPROC_POLL`] when idle), and pending jobs stay in the
    /// shared ingress channel for the survivors.
    pub fn set_preproc_workers(&self, n: usize) {
        let n = n.max(1);
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        self.knobs.preproc_target.store(n, Ordering::SeqCst);
        // Spawns are serialized by the pool lock, so the live count only
        // moves down (worker retirement) while this loop runs.
        while self.knobs.preproc_live.load(Ordering::SeqCst) < n {
            self.knobs.preproc_live.fetch_add(1, Ordering::SeqCst);
            pool.spawn();
        }
    }

    /// A capability handle for a pipeline executor: lane-addressed
    /// reserved submission, stage accounting, and trace access, detached
    /// from the server's lifetime handle so the executor can run on its
    /// own thread. See [`PipelineHandle`].
    pub fn pipeline_handle(&self) -> PipelineHandle {
        let ingress = self
            .ingress
            .as_ref()
            .expect("pipeline_handle on a live server")
            .clone();
        PipelineHandle {
            ingress,
            lanes: Arc::clone(&self.lanes),
            shared: Arc::clone(&self.shared),
            deadline: self.deadline,
            trace: self.tracer.register("pipeline"),
            next_req: Arc::clone(&self.next_req),
            queue_cap: self.queue_cap,
        }
    }

    /// Registers (or replaces) a named multi-stage pipeline executor.
    /// [`submit_pipeline`](Self::submit_pipeline) and the net front-end
    /// route to it by name. The server drops every registered driver
    /// *before* shutting down its own workers.
    pub fn register_pipeline(&self, name: &str, driver: Arc<dyn PipelineDriver>) {
        self.pipelines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), driver);
    }

    /// Whether a pipeline with this name is registered (wire routing
    /// checks this before dispatching a tenant-addressed request to a
    /// cascade instead of a lane).
    pub fn has_pipeline(&self, name: &str) -> bool {
        self.pipelines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(name)
    }

    /// Submits a frame to a registered pipeline; the returned channel
    /// yields the joined cascade result. Unknown names answer
    /// [`LiveError::Disconnected`] immediately (route-time callers should
    /// check [`has_pipeline`](Self::has_pipeline) first and reject with a
    /// request error instead).
    pub fn submit_pipeline(&self, name: &str, jpeg: Vec<u8>) -> ReplyReceiver {
        self.submit_pipeline_traced(name, jpeg, None, None)
    }

    /// [`submit_pipeline`](Self::submit_pipeline) with a deadline and a
    /// caller-supplied trace id (the id every stage's spans record
    /// under, linking the parent and its fan-out children).
    pub fn submit_pipeline_traced(
        &self,
        name: &str,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
    ) -> ReplyReceiver {
        match self.pipeline_of(name) {
            Some(driver) => driver.submit(jpeg, deadline, trace_id, None),
            None => disconnected_reply(),
        }
    }

    /// [`submit_pipeline_traced`](Self::submit_pipeline_traced) with a
    /// completion hook for evented callers, firing exactly once after
    /// the joined reply is in the channel (shed and shutdown included).
    pub fn submit_pipeline_hooked(
        &self,
        name: &str,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
        hook: Box<dyn FnOnce() + Send>,
    ) -> ReplyReceiver {
        match self.pipeline_of(name) {
            Some(driver) => driver.submit(jpeg, deadline, trace_id, Some(hook)),
            None => {
                let rx = disconnected_reply();
                hook();
                rx
            }
        }
    }

    fn pipeline_of(&self, name: &str) -> Option<Arc<dyn PipelineDriver>> {
        self.pipelines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }
}

/// A reply channel pre-filled with [`LiveError::Disconnected`].
fn disconnected_reply() -> ReplyReceiver {
    let (tx, rx) = bounded(1);
    let _ = tx.send(Err(LiveError::Disconnected));
    rx
}

/// A registered multi-stage pipeline executor, as seen by the server and
/// the net front-end. `vserve-pipeline`'s `PipelineRunner` implements
/// this; the trait lives here so the front-end can dispatch cascades
/// without depending on the pipeline crate.
///
/// `submit` mirrors the shape of [`LiveServer::submit_hooked`]: it must
/// never block the caller, every outcome (including sheds) flows through
/// the returned channel, and a supplied hook fires exactly once after the
/// reply value is in the channel.
pub trait PipelineDriver: Send + Sync {
    /// Submits one frame to the cascade's root stage; the channel yields
    /// the joined final reply.
    fn submit(
        &self,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
        hook: Option<Box<dyn FnOnce() + Send>>,
    ) -> ReplyReceiver;
}

/// What a pipeline executor needs from a [`LiveServer`], detached from
/// the server's owning handle: lane-addressed **reserved** submission,
/// cascade stage accounting into the shared breakdown, trace access, and
/// the ingress capacity that bounds fan-out admission.
///
/// The handle holds an ingress sender clone, so a live handle keeps the
/// server's worker pipeline open: drop executors (or register them with
/// [`LiveServer::register_pipeline`], which drops them for you) before
/// expecting server shutdown to complete.
pub struct PipelineHandle {
    ingress: Sender<Job>,
    lanes: Arc<Vec<LaneRt>>,
    shared: Arc<Shared>,
    deadline: Option<Duration>,
    trace: TraceHandle,
    next_req: Arc<AtomicU64>,
    queue_cap: usize,
}

impl std::fmt::Debug for PipelineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineHandle")
            .field("lanes", &self.lanes.len())
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

impl PipelineHandle {
    /// Number of tenant lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Resolves a tenant or model name to its lane (see
    /// [`LiveServer::lane_of`]).
    pub fn lane_of(&self, name: &str) -> Option<usize> {
        self.lanes
            .iter()
            .position(|l| l.spec.name == name)
            .or_else(|| self.lanes.iter().position(|l| l.spec.model == name))
    }

    /// Input side of the lane's model (fan-out transforms target this).
    pub fn lane_side(&self, lane: usize) -> Option<usize> {
        self.lanes.get(lane).map(|l| l.side)
    }

    /// Trace tenant tag for a lane (lane `i` records as `i + 1`).
    pub fn lane_tag(lane: usize) -> u32 {
        LaneRt::tag(lane)
    }

    /// The server's ingress queue capacity — the budget the executor's
    /// fan-out reservation rule admits against (a pipeline whose
    /// worst-case sub-request count exceeds it can never be admitted).
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Server-wide default deadline ([`LiveOptions::deadline`]).
    pub fn default_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Draws the next request id from the server's shared trace-id space.
    pub fn next_trace_id(&self) -> u64 {
        self.next_req.fetch_add(1, Ordering::Relaxed)
    }

    /// The executor's trace track (registered as `pipeline`), for the
    /// parent span and the fan-out/join bookkeeping spans.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Records one cascade stage observation into the server's shared
    /// [`StageBreakdown`], so cascade rows appear in
    /// [`LiveMetrics::breakdown`] / [`ServingSummary`](crate::report)
    /// alongside the per-request stage rows.
    pub fn record_stage(&self, stage: &str, secs: f64) {
        self.shared.lock().breakdown.record(stage, secs);
    }

    /// Lane-addressed submission with **reserved** ingress capacity: the
    /// quota/EDF admission gates still apply (typed
    /// [`LiveError::QuotaExceeded`] / [`LiveError::SloInfeasible`] sheds),
    /// but an admitted sub-request *blocks* on a full ingress queue
    /// instead of shedding [`LiveError::Overloaded`]. The preprocessing
    /// pool drains ingress independently of any pipeline executor, so the
    /// blocking send always terminates — this is what makes a bounded
    /// queue unable to deadlock a half-finished parent whose children the
    /// executor already promised to submit (DESIGN §16).
    pub fn submit_reserved(
        &self,
        lane: usize,
        jpeg: Vec<u8>,
        deadline: Option<Duration>,
        trace_id: Option<u64>,
        hook: Option<Box<dyn FnOnce() + Send>>,
    ) -> ReplyReceiver {
        let (tx, rx) = bounded(1);
        let now = Instant::now();
        let id = trace_id.unwrap_or_else(|| self.next_req.fetch_add(1, Ordering::Relaxed));
        let nbytes = jpeg.len() as u64;
        let slot = ReplySlot { tx, hook };
        let Some(l) = self.lanes.get(lane) else {
            slot.send(Err(LiveError::Disconnected));
            return rx;
        };
        if let Err(e) = admit_lane(l, &self.shared, now) {
            slot.send(Err(e));
            return rx;
        }
        let job = Job {
            id,
            lane: lane as u32,
            jpeg,
            submitted: now,
            deadline: deadline.or(self.deadline).map(|d| now + d),
            reply: slot,
        };
        match self.ingress.send(job) {
            Ok(()) => {
                l.depth.fetch_add(1, Ordering::Relaxed);
                let t = self.shared.secs(now);
                self.shared.lock().queue_depth.add(t, 1.0);
                self.trace
                    .event_tagged(LaneRt::tag(lane), id, trace_events::INGRESS, now, nbytes);
            }
            Err(e) => {
                let _ = e.0.reply.send(Err(LiveError::Disconnected));
            }
        }
        rx
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        // Pipeline drivers first: their executors hold ingress sender
        // clones (inside PipelineHandles) and rely on the still-running
        // workers to retire in-flight sub-requests, so they must shut
        // down while the server is fully alive. Only then can closing
        // our ingress copy actually disconnect the channel.
        self.pipelines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.ingress.take(); // close ingress: workers drain and exit
        let (env, preproc_handles) = {
            let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            (pool.env.take(), std::mem::take(&mut pool.handles))
        };
        // Dropping the pool's env releases its ready-channel sender, so
        // the batcher disconnects once the workers are gone.
        drop(env);
        for h in preproc_handles {
            let _ = h.join();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vserve_device::ImageSpec;
    use vserve_dnn::models;
    use vserve_workload::synthetic_jpeg;

    fn tiny_opts(max_batch: usize) -> LiveOptions {
        LiveOptions {
            preproc_workers: 2,
            inference_workers: 1,
            max_batch,
            max_queue_delay: Duration::from_millis(2),
            input_side: 32,
            queue_cap: 256,
            deadline: None,
            backend_threads: 1,
            ..LiveOptions::default()
        }
    }

    fn tiny_server(max_batch: usize) -> LiveServer {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        LiveServer::start(model, tiny_opts(max_batch))
    }

    #[test]
    fn single_request_round_trips() {
        let server = tiny_server(4);
        let jpeg = synthetic_jpeg(&ImageSpec::new(48, 40, 0), 5);
        let r = server.infer(jpeg).unwrap();
        assert_eq!(r.output.len(), 10);
        let sum: f32 = r.output.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "softmax sum {sum}");
        assert!(r.total >= r.inference);
        assert!(r.batch_size >= 1);
    }

    #[test]
    fn many_concurrent_requests_all_answered() {
        let server = tiny_server(8);
        let receivers: Vec<_> = (0..40)
            .map(|i| server.submit(synthetic_jpeg(&ImageSpec::new(40, 40, 0), i)))
            .collect();
        for rx in receivers {
            let r = rx.recv().unwrap().unwrap();
            assert_eq!(r.output.len(), 10);
        }
    }

    #[test]
    fn metrics_surface_scratch_fallbacks() {
        // With a single inference worker the model's scratch arena is
        // never contended, so the counter must read zero — the field is
        // here so operators can see when multi-worker configs start
        // paying the silent local-arena fallback.
        let server = tiny_server(4);
        for i in 0..4 {
            let _ = server
                .infer(synthetic_jpeg(&ImageSpec::new(40, 40, 0), 60 + i))
                .unwrap();
        }
        assert_eq!(server.metrics().scratch_fallbacks, 0);
    }

    #[test]
    fn bad_jpeg_reports_decode_error() {
        let server = tiny_server(4);
        let err = server.infer(vec![1, 2, 3]).unwrap_err();
        assert!(matches!(err, LiveError::Decode(_)));
    }

    #[test]
    fn hook_fires_after_reply_is_receivable() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let server = tiny_server(4);
        let fired = Arc::new(AtomicUsize::new(0));
        let (notify_tx, notify_rx) = bounded::<()>(8);
        // Success path: by the time the hook runs, try_recv must succeed.
        let jpeg = synthetic_jpeg(&ImageSpec::new(48, 40, 0), 5);
        let f = Arc::clone(&fired);
        let n = notify_tx.clone();
        let rx = server.submit_hooked(
            jpeg,
            None,
            None,
            Box::new(move || {
                f.fetch_add(1, Ordering::SeqCst);
                let _ = n.send(());
            }),
        );
        notify_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("hook must fire");
        let r = rx.try_recv().expect("reply must precede hook");
        assert_eq!(r.unwrap().output.len(), 10);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hook fires exactly once");

        // Error path (decode failure) fires the hook the same way.
        let f = Arc::clone(&fired);
        let n = notify_tx.clone();
        let rx = server.submit_hooked(
            vec![1, 2, 3],
            None,
            None,
            Box::new(move || {
                f.fetch_add(1, Ordering::SeqCst);
                let _ = n.send(());
            }),
        );
        notify_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("hook must fire on error path");
        assert!(matches!(
            rx.try_recv().expect("error reply must precede hook"),
            Err(LiveError::Decode(_))
        ));
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn hook_fires_on_shutdown_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Requests still queued when the server shuts down must fire
        // their hooks (via ReplySlot::drop), so an evented front-end can
        // fail them as Disconnected instead of leaking conn slots.
        let fired = Arc::new(AtomicUsize::new(0));
        let n_requests: usize = 12;
        {
            let server = tiny_server(4);
            for i in 0..n_requests {
                let f = Arc::clone(&fired);
                let _ = server.submit_hooked(
                    synthetic_jpeg(&ImageSpec::new(40, 40, 0), 100 + i as u64),
                    None,
                    None,
                    Box::new(move || {
                        f.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
            // Dropping the server here: some requests complete, the rest
            // are dropped by worker shutdown.
        }
        assert_eq!(
            fired.load(Ordering::SeqCst),
            n_requests,
            "every submitted request fires its hook exactly once"
        );
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = tiny_server(4);
        let jpeg = synthetic_jpeg(&ImageSpec::new(32, 32, 0), 9);
        let _ = server.infer(jpeg).unwrap();
        drop(server); // must not hang
    }

    #[test]
    fn burst_executes_as_batches_not_items() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                // A generous batcher window so every decoded request of the
                // burst lands in the same assembly round.
                max_queue_delay: Duration::from_millis(300),
                ..tiny_opts(8)
            },
        );
        let receivers: Vec<_> = (0..16)
            .map(|i| server.submit(synthetic_jpeg(&ImageSpec::new(32, 32, 0), i)))
            .collect();
        let results: Vec<LiveResult> = receivers
            .iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        let m = server.metrics();
        // 16 requests must NOT mean 16 forward calls: batches execute via
        // a single batched forward pass.
        assert!(
            m.forward_calls < 16,
            "expected batched execution, got {} forward calls for 16 requests",
            m.forward_calls
        );
        assert!(m.mean_batch > 1.0, "mean batch {}", m.mean_batch);
        assert!(
            results.iter().any(|r| r.batch_size > 1),
            "no multi-item batch formed"
        );
        assert_eq!(m.completed, 16);
    }

    #[test]
    fn batch_stage_times_sum_to_batch_wall() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                max_queue_delay: Duration::from_millis(200),
                ..tiny_opts(4)
            },
        );
        let receivers: Vec<_> = (0..12)
            .map(|i| server.submit(synthetic_jpeg(&ImageSpec::new(32, 32, 0), i)))
            .collect();
        let results: Vec<LiveResult> = receivers
            .iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        let m = server.metrics();
        // Per-item inference is batch wall / batch size, so summing the
        // per-request stage times over all batches must recover the total
        // forward wall time (up to nanosecond division truncation).
        let summed: f64 = results.iter().map(|r| r.inference.as_secs_f64()).sum();
        let wall = m.inference_wall.as_secs_f64();
        assert!(
            (summed - wall).abs() < 1e-4 + wall * 0.01,
            "per-item inference sums to {summed}, batch wall {wall}"
        );
        // And every item reports a batch-consistent share.
        for r in &results {
            assert!(
                r.inference * r.batch_size as u32 <= m.inference_wall + Duration::from_micros(100)
            );
        }
    }

    #[test]
    fn overload_rejects_with_overloaded() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                preproc_workers: 1,
                queue_cap: 2,
                ..tiny_opts(4)
            },
        );
        // Submitting far faster than one worker can decode must overflow
        // the 2-deep ingress queue. Encode the payloads up front so the
        // burst isn't paced by JPEG encoding in the submit loop.
        let payloads: Vec<_> = (0..40)
            .map(|i| synthetic_jpeg(&ImageSpec::new(640, 480, 0), i))
            .collect();
        let receivers: Vec<_> = payloads.into_iter().map(|p| server.submit(p)).collect();
        let mut ok = 0u64;
        let mut overloaded = 0u64;
        for rx in receivers {
            match rx.recv().unwrap() {
                Ok(_) => ok += 1,
                Err(LiveError::Overloaded) => overloaded += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(ok + overloaded, 40);
        assert!(ok >= 1, "accepted requests must still complete");
        assert!(overloaded >= 1, "cap 2 with a 40-deep burst must shed");
        let m = server.metrics();
        assert_eq!(m.rejected, overloaded);
        assert_eq!(m.completed, ok);
    }

    #[test]
    fn deadline_expired_requests_fail_fast() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                deadline: Some(Duration::ZERO),
                ..tiny_opts(4)
            },
        );
        for i in 0..3 {
            let err = server
                .infer(synthetic_jpeg(&ImageSpec::new(32, 32, 0), i))
                .unwrap_err();
            assert!(matches!(err, LiveError::DeadlineExceeded), "got {err}");
        }
        let m = server.metrics();
        assert_eq!(m.expired, 3);
        assert_eq!(m.completed, 0);
    }

    #[test]
    fn backend_metrics_reported_and_outputs_thread_invariant() {
        let jpeg = synthetic_jpeg(&ImageSpec::new(48, 48, 0), 11);
        let run = |threads: usize| {
            let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
            let server = LiveServer::start(
                model,
                LiveOptions {
                    backend_threads: threads,
                    ..tiny_opts(4)
                },
            );
            let out = server.infer(jpeg.clone()).unwrap().output;
            let m = server.metrics();
            assert_eq!(m.backend_threads, threads);
            assert!(
                m.parallel_efficiency > 0.0 && m.parallel_efficiency <= 1.0 + 1e-6,
                "efficiency {}",
                m.parallel_efficiency
            );
            out
        };
        // Decode, preprocess, and inference all ride the backend; the
        // whole pipeline must be bit-identical across thread counts.
        assert_eq!(run(1), run(4));
    }

    /// Satellite: N duplicate in-flight requests produce exactly one
    /// decode. The payload is large enough that the leader is still
    /// decoding while the other worker parks every duplicate, so the
    /// coalesce counter must reach N − 1 deterministically (the cache is
    /// disabled to keep coalescing the only duplicate-suppression path).
    #[test]
    fn duplicate_inflight_requests_coalesce_to_one_decode() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                preproc_cache_mb: Some(0),
                max_queue_delay: Duration::from_millis(100),
                ..tiny_opts(8)
            },
        );
        let n = 8;
        let jpeg = synthetic_jpeg(&ImageSpec::new(1600, 1200, 0), 17);
        let receivers: Vec<_> = (0..n).map(|_| server.submit(jpeg.clone())).collect();
        let results: Vec<LiveResult> = receivers
            .iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        let m = server.metrics();
        assert_eq!(
            m.preproc_cache.coalesced,
            (n - 1) as u64,
            "every duplicate must attach to the leader's decode"
        );
        // One leader did real work; every waiter reports zero preproc.
        let zero = results
            .iter()
            .filter(|r| r.preproc == Duration::ZERO)
            .count();
        assert_eq!(zero, n - 1);
        // All requests share the one decode's answer.
        for r in &results {
            assert_eq!(r.output, results[0].output);
        }
        assert_eq!(m.completed, n as u64);
    }

    /// Cache hits skip preprocessing: a repeated payload is served from
    /// the content-addressed cache with hash+lookup-only preproc time.
    #[test]
    fn repeated_payload_hits_cache_with_near_zero_preproc() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                preproc_cache_mb: Some(8),
                ..tiny_opts(4)
            },
        );
        let jpeg = synthetic_jpeg(&ImageSpec::new(640, 480, 0), 23);
        let first = server.infer(jpeg.clone()).unwrap();
        let second = server.infer(jpeg.clone()).unwrap();
        assert_eq!(first.output, second.output);
        let m = server.metrics();
        assert_eq!(m.preproc_cache.misses, 1);
        assert!(m.preproc_cache.hits >= 1, "stats {:?}", m.preproc_cache);
        assert!(m.preproc_cache.entries >= 1);
        assert!(m.preproc_cache.bytes <= m.preproc_cache.capacity_bytes);
        // The hit's measured preproc is hash + lookup, far below a real
        // 640×480 decode.
        assert!(
            second.preproc.as_secs_f64() < first.preproc.as_secs_f64() / 2.0,
            "hit {:?} vs miss {:?}",
            second.preproc,
            first.preproc
        );
    }

    /// Satellite: the fused fast path is bit-identical with the cache on
    /// and off (a cached tensor is the same bytes a fresh decode makes),
    /// and distinct payloads never alias in the cache.
    #[test]
    fn outputs_bit_identical_cache_on_and_off() {
        let jpegs: Vec<Vec<u8>> = (0..4)
            .map(|i| synthetic_jpeg(&ImageSpec::new(96, 80, 0), 40 + i))
            .collect();
        let run = |cache_mb: usize| {
            let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
            let server = LiveServer::start(
                model,
                LiveOptions {
                    preproc_cache_mb: Some(cache_mb),
                    ..tiny_opts(4)
                },
            );
            // Each payload twice: the second pass hits when caching is on.
            let mut outs = Vec::new();
            for _ in 0..2 {
                for j in &jpegs {
                    outs.push(server.infer(j.clone()).unwrap().output);
                }
            }
            outs
        };
        let with_cache = run(8);
        let without = run(0);
        assert_eq!(with_cache, without);
        // Repeats must agree with their first serving.
        for (a, b) in with_cache[..4].iter().zip(&with_cache[4..]) {
            assert_eq!(a, b);
        }
    }

    /// The unfused baseline path still works when the fast path is off.
    #[test]
    fn baseline_preproc_path_still_serves() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                fast_preproc: false,
                ..tiny_opts(4)
            },
        );
        let r = server
            .infer(synthetic_jpeg(&ImageSpec::new(300, 200, 0), 51))
            .unwrap();
        assert_eq!(r.output.len(), 10);
        let sum: f32 = r.output.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
    }

    /// Satellite: a per-request deadline overrides the server-wide
    /// default in both directions — an impossible per-request deadline
    /// sheds even when the server has none, and a generous one rescues a
    /// request from an impossible server default.
    #[test]
    fn per_request_deadline_overrides_server_default() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(model, tiny_opts(4));
        let jpeg = synthetic_jpeg(&ImageSpec::new(32, 32, 0), 61);
        let err = server
            .submit_with_deadline(jpeg.clone(), Some(Duration::ZERO))
            .recv()
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, LiveError::DeadlineExceeded), "got {err}");
        drop(server);

        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                deadline: Some(Duration::ZERO),
                ..tiny_opts(4)
            },
        );
        let r = server
            .submit_with_deadline(jpeg, Some(Duration::from_secs(60)))
            .recv()
            .unwrap()
            .unwrap();
        assert_eq!(r.output.len(), 10);
    }

    /// Satellite (robustness): dropping the server with requests still in
    /// flight must answer every receiver — either with a result or with a
    /// clean `Disconnected`/channel-closed — and never panic or hang. This
    /// is the path a remote disconnect exercises through `vserve-net`.
    #[test]
    fn drop_with_requests_in_flight_answers_or_disconnects() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                preproc_workers: 1,
                ..tiny_opts(4)
            },
        );
        // Large payloads so some are still mid-pipeline at drop time.
        let receivers: Vec<_> = (0..12)
            .map(|i| server.submit(synthetic_jpeg(&ImageSpec::new(800, 600, 0), i)))
            .collect();
        drop(server); // drains in-flight work, then joins workers
        for rx in receivers {
            match rx.recv() {
                Ok(Ok(r)) => assert_eq!(r.output.len(), 10),
                Ok(Err(e)) => assert!(
                    matches!(e, LiveError::Disconnected),
                    "in-flight request failed with {e}"
                ),
                // Reply sender dropped during shutdown: also a clean end.
                Err(_) => {}
            }
        }
    }

    /// Satellite: the batch linger default is env-overridable.
    #[test]
    fn batch_linger_env_override_applies_to_default() {
        // Serial-safe (the harness runs --test-threads=1): set, assert,
        // restore.
        std::env::set_var(BATCH_LINGER_US_ENV, "750");
        assert_eq!(
            LiveOptions::default().max_queue_delay,
            Duration::from_micros(750)
        );
        std::env::set_var(BATCH_LINGER_US_ENV, "not-a-number");
        assert_eq!(LiveOptions::default().max_queue_delay, DEFAULT_BATCH_LINGER);
        std::env::remove_var(BATCH_LINGER_US_ENV);
        assert_eq!(LiveOptions::default().max_queue_delay, DEFAULT_BATCH_LINGER);
    }

    /// Every knob setter is visible in the next `knobs()` snapshot and in
    /// the metrics the controller reads.
    #[test]
    fn knob_setters_take_effect_and_snapshot() {
        let server = tiny_server(4);
        let k = server.knobs();
        assert_eq!(k.max_batch, 4);
        assert_eq!(k.linger, Duration::from_millis(2));
        assert_eq!(k.preproc_workers, 2);
        assert_eq!(k.backend_threads, 1);

        server.set_max_batch(0); // clamps
        server.set_batch_linger(Duration::from_micros(300));
        server.set_backend_threads(3);
        server.set_preproc_cache_bytes(1 << 20);
        let k = server.knobs();
        assert_eq!(k.max_batch, 1);
        assert_eq!(k.linger, Duration::from_micros(300));
        assert_eq!(k.backend_threads, 3);
        assert_eq!(k.preproc_cache_bytes, 1 << 20);
        let m = server.metrics();
        assert_eq!(m.backend_threads, 3);
        assert_eq!(m.preproc_cache.capacity_bytes, 1 << 20);
        // The retuned server still serves.
        let r = server
            .infer(synthetic_jpeg(&ImageSpec::new(48, 48, 0), 3))
            .unwrap();
        assert_eq!(r.output.len(), 10);
    }

    /// The windowed latency summary drains: each take sees only the
    /// requests completed since the previous take.
    #[test]
    fn latency_window_drains_between_takes() {
        let server = tiny_server(4);
        for i in 0..3 {
            let _ = server
                .infer(synthetic_jpeg(&ImageSpec::new(40, 40, 0), i))
                .unwrap();
        }
        assert_eq!(server.take_latency_window().count, 3);
        assert_eq!(server.take_latency_window().count, 0);
        let _ = server
            .infer(synthetic_jpeg(&ImageSpec::new(40, 40, 0), 9))
            .unwrap();
        assert_eq!(server.take_latency_window().count, 1);
        // Cumulative metrics are unaffected by draining the window.
        assert_eq!(server.metrics().latency.count, 4);
    }

    /// Satellite: shrinking the cache budget under load evicts down to
    /// the new budget immediately and serving continues; disabling and
    /// re-enabling at runtime works because workers re-check the budget
    /// per job (the old code snapshotted it once at startup).
    #[test]
    fn cache_resize_under_load_evicts_and_reenables() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                preproc_cache_mb: Some(8),
                ..tiny_opts(4)
            },
        );
        let jpegs: Vec<Vec<u8>> = (0..6)
            .map(|i| synthetic_jpeg(&ImageSpec::new(320, 240, 0), 70 + i))
            .collect();
        for j in &jpegs {
            let _ = server.infer(j.clone()).unwrap();
        }
        let before = server.metrics().preproc_cache;
        assert_eq!(before.entries, 6);
        assert!(before.bytes > 0);

        // Shrink to hold roughly one tensor: immediate LRU eviction.
        let one_tensor = 3 * 32 * 32 * 4;
        server.set_preproc_cache_bytes(one_tensor);
        let shrunk = server.metrics().preproc_cache;
        assert!(shrunk.bytes <= one_tensor, "stats {shrunk:?}");
        assert!(shrunk.evictions >= 5, "stats {shrunk:?}");
        // Serving continues mid-shrink.
        let _ = server.infer(jpegs[0].clone()).unwrap();

        // Disable entirely: drains, and new work stops inserting.
        server.set_preproc_cache_bytes(0);
        assert_eq!(server.metrics().preproc_cache.entries, 0);
        let _ = server.infer(jpegs[1].clone()).unwrap();
        assert_eq!(server.metrics().preproc_cache.entries, 0);

        // Re-enable at runtime: the per-job budget check picks it up and
        // a repeat becomes a hit again.
        server.set_preproc_cache_bytes(8 << 20);
        let miss = server.infer(jpegs[2].clone()).unwrap();
        let hit = server.infer(jpegs[2].clone()).unwrap();
        let after = server.metrics().preproc_cache;
        assert!(after.entries >= 1, "stats {after:?}");
        assert!(
            hit.preproc.as_secs_f64() < miss.preproc.as_secs_f64() / 2.0,
            "hit {:?} vs miss {:?}",
            hit.preproc,
            miss.preproc
        );
    }

    /// Satellite: growing and shrinking the preproc pool mid-burst drops
    /// no requests — queued jobs stay in the shared channel for the
    /// survivors, and workers only retire between jobs.
    #[test]
    fn preproc_pool_grow_shrink_drops_no_requests() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                preproc_workers: 1,
                ..tiny_opts(4)
            },
        );
        let n = 48;
        let mut receivers = Vec::new();
        for round in 0..4 {
            for i in 0..n / 4 {
                receivers.push(server.submit(synthetic_jpeg(
                    &ImageSpec::new(160, 120, 0),
                    (round * 100 + i) as u64,
                )));
            }
            // Resize while the burst is in flight: 1 → 4 → 1 → 3.
            server.set_preproc_workers([4, 1, 3, 1][round]);
        }
        let mut ok = 0;
        for rx in receivers {
            match rx.recv().unwrap() {
                Ok(r) => {
                    assert_eq!(r.output.len(), 10);
                    ok += 1;
                }
                Err(e) => panic!("request dropped across pool resize: {e}"),
            }
        }
        assert_eq!(ok, n);
        assert_eq!(server.metrics().completed, n as u64);

        // Surplus workers retire (no thread leak): live drains to the
        // final target of 1 within a few poll intervals.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let k = server.knobs();
            if k.preproc_workers_live == 1 {
                assert_eq!(k.preproc_workers, 1);
                break;
            }
            assert!(Instant::now() < deadline, "workers never retired: {k:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
        // And a grow after the shrink still works.
        server.set_preproc_workers(2);
        assert_eq!(server.knobs().preproc_workers_live, 2);
        let r = server
            .infer(synthetic_jpeg(&ImageSpec::new(48, 48, 0), 999))
            .unwrap();
        assert_eq!(r.output.len(), 10);
    }

    /// Satellite: outputs are bit-identical while a controller flaps
    /// every knob mid-run (the thread-invariance harness extended to
    /// runtime reconfiguration).
    #[test]
    fn outputs_bit_identical_while_knobs_flap() {
        let jpegs: Vec<Vec<u8>> = (0..4)
            .map(|i| synthetic_jpeg(&ImageSpec::new(96, 80, 0), 80 + i))
            .collect();
        let serve_all = |server: &LiveServer| -> Vec<Vec<f32>> {
            let mut outs = Vec::new();
            for _ in 0..3 {
                for j in &jpegs {
                    outs.push(server.infer(j.clone()).unwrap().output);
                }
            }
            outs
        };
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let baseline = serve_all(&LiveServer::start(model, tiny_opts(4)));

        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = Arc::new(LiveServer::start(model, tiny_opts(4)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flapper = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    server.set_max_batch([1, 3, 8][i % 3]);
                    server.set_batch_linger(Duration::from_micros([100, 2000, 500][i % 3]));
                    server.set_backend_threads([1, 4, 2][i % 3]);
                    server.set_preproc_workers([2, 4, 1][i % 3]);
                    server.set_preproc_cache_bytes([0, 8 << 20, 1 << 16][i % 3]);
                    i += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };
        let flapped = serve_all(&server);
        stop.store(true, Ordering::Relaxed);
        flapper.join().unwrap();
        assert_eq!(baseline, flapped, "knob flapping must never change results");
        assert_eq!(server.metrics().completed, 12);
    }

    #[test]
    fn metrics_consistent_with_results() {
        let server = tiny_server(4);
        let receivers: Vec<_> = (0..10)
            .map(|i| server.submit(synthetic_jpeg(&ImageSpec::new(48, 48, 0), i)))
            .collect();
        let results: Vec<LiveResult> = receivers
            .iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        let m = server.metrics();
        assert_eq!(m.completed, 10);
        assert_eq!(m.latency.count, 10);
        assert_eq!(m.breakdown.count(stages::INFERENCE), 10);
        assert!(m.throughput > 0.0);
        assert!(m.mean_batch >= 1.0);
        assert!(m.rejected == 0 && m.expired == 0);
        // Breakdown means must agree with the per-request results.
        let mean_pre: f64 = results.iter().map(|r| r.preproc.as_secs_f64()).sum::<f64>() / 10.0;
        assert!((m.breakdown.mean(stages::PREPROC) - mean_pre).abs() < 1e-9);
        // Shares are well-formed and within the round trip.
        let s = m.summary();
        assert!(s.queue_share() >= 0.0 && s.preproc_share() >= 0.0);
        assert!(s.queue_share() + s.preproc_share() + s.inference_share() <= 1.0 + 1e-9);
        assert!(m.queue_depth_peak >= 1.0);
        // Single-lane servers report exactly one (default) lane.
        assert_eq!(m.lanes.len(), 1);
        assert_eq!(m.lanes[0].completed, 10);
        assert_eq!(m.lanes[0].shed, 0);
        assert!(m.lanes[0].p99_us > 0);
    }

    // ------------------------------------------------ multi-tenant lanes

    use vserve_sched::Priority;

    fn two_model_zoo() -> Vec<ZooModel> {
        vec![
            ZooModel {
                name: "small".to_string(),
                model: Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3),
                input_side: 32,
            },
            ZooModel {
                name: "large".to_string(),
                model: Model::from_graph(models::micro_cnn(48, 7).unwrap(), 5),
                input_side: 48,
            },
        ]
    }

    /// Tentpole: two co-located models serve bit-identical outputs to
    /// their solo runs, and no request is dropped under co-location —
    /// lanes isolate scheduling, never numerics.
    #[test]
    fn zoo_two_lanes_serve_bit_identical_outputs() {
        let jpegs: Vec<Vec<u8>> = (0..6)
            .map(|i| synthetic_jpeg(&ImageSpec::new(64, 56, 0), 200 + i))
            .collect();
        // Solo baselines, one single-model server per zoo entry.
        let solo_small: Vec<Vec<f32>> = {
            let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
            let server = LiveServer::start(model, tiny_opts(4));
            jpegs
                .iter()
                .map(|j| server.infer(j.clone()).unwrap().output)
                .collect()
        };
        let solo_large: Vec<Vec<f32>> = {
            let model = Model::from_graph(models::micro_cnn(48, 7).unwrap(), 5);
            let server = LiveServer::start(
                model,
                LiveOptions {
                    input_side: 48,
                    ..tiny_opts(4)
                },
            );
            jpegs
                .iter()
                .map(|j| server.infer(j.clone()).unwrap().output)
                .collect()
        };
        // Co-located zoo with one tenant per model, interleaved load.
        let server = LiveServer::start_zoo(
            two_model_zoo(),
            LiveOptions {
                tenants: vec![
                    TenantSpec::new("lc", "small")
                        .priority(Priority::High)
                        .weight(4.0),
                    TenantSpec::new("be", "large").priority(Priority::Low),
                ],
                ..tiny_opts(4)
            },
        )
        .unwrap();
        assert_eq!(server.lane_count(), 2);
        assert_eq!(server.lane_of("lc"), Some(0));
        assert_eq!(server.lane_of("large"), Some(1), "model-name fallback");
        let mut rx_small = Vec::new();
        let mut rx_large = Vec::new();
        for j in &jpegs {
            rx_small.push(server.submit_lane(0, j.clone()));
            rx_large.push(server.submit_lane(1, j.clone()));
        }
        for (i, rx) in rx_small.into_iter().enumerate() {
            let out = rx.recv().unwrap().unwrap().output;
            assert_eq!(out, solo_small[i], "lane small diverged on payload {i}");
        }
        for (i, rx) in rx_large.into_iter().enumerate() {
            let out = rx.recv().unwrap().unwrap().output;
            assert_eq!(out, solo_large[i], "lane large diverged on payload {i}");
        }
        let m = server.metrics();
        assert_eq!(m.completed, 12, "no request dropped under co-location");
        assert_eq!(m.lanes.len(), 2);
        assert_eq!(m.lanes[0].completed, 6);
        assert_eq!(m.lanes[1].completed, 6);
        assert_eq!(m.lanes[0].name, "lc");
        assert_eq!(m.lanes[1].model, "large");
    }

    /// Tentpole: an exhausted token bucket sheds typed `QuotaExceeded`
    /// before any work is queued; the lane counts the shed.
    #[test]
    fn lane_quota_sheds_typed_quota_exceeded() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                // Effectively zero refill, burst of 2: exactly two
                // admissions, everything after sheds.
                tenants: vec![TenantSpec::new("metered", "default").quota(1e-9, 2)],
                ..tiny_opts(4)
            },
        );
        let jpeg = synthetic_jpeg(&ImageSpec::new(40, 40, 0), 77);
        for _ in 0..2 {
            let r = server.infer(jpeg.clone()).unwrap();
            assert_eq!(r.output.len(), 10);
        }
        for _ in 0..3 {
            let err = server.infer(jpeg.clone()).unwrap_err();
            assert!(matches!(err, LiveError::QuotaExceeded), "got {err}");
        }
        let m = server.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.lanes[0].shed, 3);
        // Quota sheds are admission sheds, not queue overloads.
        assert_eq!(m.rejected, 0);
    }

    /// Tentpole: EDF admission is optimistic until the lane has cost
    /// evidence (the first request on a 1 µs SLO still serves), then
    /// sheds typed `SloInfeasible` once the learned unit cost proves the
    /// deadline infeasible.
    #[test]
    fn lane_slo_sheds_typed_slo_infeasible_after_evidence() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                tenants: vec![TenantSpec::new("strict", "default").deadline_us(1)],
                ..tiny_opts(4)
            },
        );
        let jpeg = synthetic_jpeg(&ImageSpec::new(40, 40, 0), 78);
        // Cold lane: no evidence, optimistic admission, real serving.
        let r = server.infer(jpeg.clone()).unwrap();
        assert_eq!(r.output.len(), 10);
        // Warm lane: measured unit cost (plus linger) >> 1 µs.
        let err = server.infer(jpeg.clone()).unwrap_err();
        assert!(matches!(err, LiveError::SloInfeasible), "got {err}");
        let m = server.metrics();
        assert_eq!(m.completed, 1);
        assert_eq!(m.lanes[0].shed, 1);
        // A generous SLO admits: same server, fresh lane? No — the SLO
        // is per-lane config; instead check the per-request deadline
        // path still uses DeadlineExceeded, not SloInfeasible.
        drop(server);
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(model, tiny_opts(4));
        let err = server
            .submit_with_deadline(jpeg, Some(Duration::ZERO))
            .recv()
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, LiveError::DeadlineExceeded), "got {err}");
    }

    /// Satellite (interference attribution): a best-effort flood
    /// provably inflates the latency-critical tenant's batch-wait
    /// (queue) span, and the per-tenant trace tags attribute it — the
    /// LC tenant's spans are separable from the co-tenant's.
    #[test]
    fn best_effort_flood_inflates_lc_batch_wait_span() {
        // A side-96 model makes a batch forward cost hundreds of
        // microseconds, so the flood provably occupies the single
        // inference worker; at side 32 the BE batches drain faster
        // than scheduling noise and the interference signal vanishes.
        let opts = |tr: Tracer| LiveOptions {
            tenants: vec![
                TenantSpec::new("lc", "default")
                    .priority(Priority::High)
                    .weight(4.0),
                TenantSpec::new("be", "default").priority(Priority::Low),
            ],
            trace: tr,
            max_queue_delay: Duration::from_millis(1),
            input_side: 96,
            ..tiny_opts(4)
        };
        let lc_queue_mean = |server: &LiveServer, tag: u32| -> f64 {
            let snap = server.tracer().snapshot();
            let n = snap.stage_count_tenant(stages::QUEUE, tag).max(1);
            snap.stage_total_tenant(stages::QUEUE, tag) / n as f64
        };
        let jpeg = synthetic_jpeg(&ImageSpec::new(48, 48, 0), 90);
        // Solo: the LC tenant alone on an idle server. Submit the four
        // requests back-to-back exactly as the flooded phase does, so
        // batch formation (full batch at max_batch, no linger) is
        // symmetric and the only variable is the co-tenant flood.
        let model = Model::from_graph(models::micro_cnn(96, 10).unwrap(), 3);
        let server = LiveServer::start(model, opts(Tracer::with_capacity(4096)));
        let solo_rx: Vec<_> = (0..4)
            .map(|_| server.submit_lane(0, jpeg.clone()))
            .collect();
        for rx in solo_rx {
            let _ = rx.recv().unwrap().unwrap();
        }
        let solo = lc_queue_mean(&server, 1);
        drop(server);
        // Co-located: a BE flood lands first and occupies the shared
        // inference worker; the same LC requests now wait behind
        // co-tenant batches.
        let model = Model::from_graph(models::micro_cnn(96, 10).unwrap(), 3);
        let server = LiveServer::start(model, opts(Tracer::with_capacity(4096)));
        let flood: Vec<_> = (0..24)
            .map(|i| server.submit_lane(1, synthetic_jpeg(&ImageSpec::new(48, 48, 0), 300 + i)))
            .collect();
        let mut lc_rx = Vec::new();
        for _ in 0..4 {
            lc_rx.push(server.submit_lane(0, jpeg.clone()));
        }
        for rx in lc_rx {
            let _ = rx.recv().unwrap().unwrap();
        }
        for rx in flood {
            let _ = rx.recv().unwrap().unwrap();
        }
        let flooded = lc_queue_mean(&server, 1);
        // Attribution: both tenants' spans are present and separable.
        let snap = server.tracer().snapshot();
        assert!(snap.stage_count_tenant(stages::QUEUE, 1) >= 4);
        assert!(snap.stage_count_tenant(stages::QUEUE, 2) >= 24);
        assert!(
            snap.spans_for_tenant(1).iter().all(|s| s.tenant == 1),
            "tenant filter must only return the LC tenant's spans"
        );
        assert!(
            flooded > solo,
            "BE flood must inflate LC batch wait: solo {solo:.6}s vs flooded {flooded:.6}s"
        );
        drop(server);
    }

    /// Lane-safety: interleaved load across two active lanes with
    /// distinct priorities drops nothing, and per-lane knob setters
    /// retune one lane without touching the other.
    #[test]
    fn per_lane_knobs_and_no_drop_across_active_lanes() {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        let server = LiveServer::start(
            model,
            LiveOptions {
                tenants: vec![
                    TenantSpec::new("a", "default").weight(3.0),
                    TenantSpec::new("b", "default"),
                ],
                ..tiny_opts(4)
            },
        );
        server.set_lane_max_batch(0, 2);
        server.set_lane_batch_linger(1, Duration::from_micros(500));
        let n = 20;
        let receivers: Vec<_> = (0..n)
            .map(|i| {
                server.submit_lane(
                    i % 2,
                    synthetic_jpeg(&ImageSpec::new(40, 40, 0), 400 + i as u64),
                )
            })
            .collect();
        for rx in receivers {
            let r = rx.recv().unwrap().unwrap();
            assert_eq!(r.output.len(), 10);
            // Lane 0's retuned cap bounds its batches.
        }
        let m = server.metrics();
        assert_eq!(m.completed, n as u64);
        assert_eq!(m.lanes[0].completed + m.lanes[1].completed, n as u64);
        assert_eq!(m.lanes[0].completed, (n / 2) as u64);
        // Global setter still reaches every lane.
        server.set_max_batch(6);
        assert_eq!(server.knobs().max_batch, 6);
    }

    /// `VSERVE_TENANTS` feeds `LiveOptions::default().tenants`
    /// (serial-safe: the harness runs --test-threads=1).
    #[test]
    fn tenants_env_override_applies_to_default() {
        std::env::set_var(
            vserve_sched::TENANTS_ENV,
            "lc=resnet18,weight=4,prio=high,deadline_ms=50,quota=100:10;be=vit_large",
        );
        let t = LiveOptions::default().tenants;
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].name, "lc");
        assert_eq!(t[0].model, "resnet18");
        assert_eq!(t[0].priority, Priority::High);
        assert_eq!(t[0].deadline_us, Some(50_000));
        assert_eq!(t[1].name, "be");
        std::env::set_var(vserve_sched::TENANTS_ENV, "not=a,valid[spec");
        assert!(LiveOptions::default().tenants.is_empty());
        std::env::remove_var(vserve_sched::TENANTS_ENV);
        assert!(LiveOptions::default().tenants.is_empty());
    }
}
