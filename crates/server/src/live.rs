//! A real, thread-based mini inference server.
//!
//! Where [`crate::Experiment`] *models* the paper's server with calibrated
//! costs, this module *is* a server: crossbeam channels connect real
//! preprocessing workers (JPEG decode via `vserve-codec`, resize +
//! normalize via `vserve-tensor`), a dynamic batcher with a bounded
//! queueing delay, and inference workers executing a real `vserve-dnn`
//! model. It exists to validate the pipeline structure end-to-end and to
//! let the examples measure genuine per-stage times on the host machine.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use vserve_dnn::{models, Model};
//! use vserve_server::live::{LiveOptions, LiveServer};
//! use vserve_workload::synthetic_jpeg;
//! use vserve_device::ImageSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = Model::from_graph(models::micro_cnn(32, 10)?, 7);
//! let server = LiveServer::start(model, LiveOptions { input_side: 32, ..LiveOptions::default() });
//! let jpeg = synthetic_jpeg(&ImageSpec::new(64, 48, 0), 1);
//! let result = server.infer(jpeg)?;
//! assert_eq!(result.output.len(), 10);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use vserve_dnn::Model;
use vserve_tensor::{ops, Tensor};

/// Configuration for a [`LiveServer`].
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Preprocessing worker threads.
    pub preproc_workers: usize,
    /// Inference worker threads.
    pub inference_workers: usize,
    /// Maximum batch size assembled by the batcher.
    pub max_batch: usize,
    /// Maximum time the batcher waits to fill a batch.
    pub max_queue_delay: Duration,
    /// Side of the square model input.
    pub input_side: usize,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            preproc_workers: 2,
            inference_workers: 1,
            max_batch: 8,
            max_queue_delay: Duration::from_millis(2),
            input_side: 224,
        }
    }
}

/// Per-request result with measured stage times.
#[derive(Debug, Clone)]
pub struct LiveResult {
    /// Model output (flat logits/probabilities).
    pub output: Vec<f32>,
    /// Time spent decoding + resizing + normalizing.
    pub preproc: Duration,
    /// Time spent waiting (ingress queue + batcher).
    pub queue: Duration,
    /// Time spent in model execution (whole batch wall time).
    pub inference: Duration,
    /// Submission-to-response round trip.
    pub total: Duration,
}

/// Errors returned by [`LiveServer::infer`].
#[derive(Debug)]
pub enum LiveError {
    /// The JPEG payload failed to decode.
    Decode(vserve_codec::DecodeJpegError),
    /// The model rejected the preprocessed tensor.
    Model(vserve_dnn::DnnError),
    /// The server shut down before responding.
    Disconnected,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Decode(e) => write!(f, "decode failed: {e}"),
            LiveError::Model(e) => write!(f, "model failed: {e}"),
            LiveError::Disconnected => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for LiveError {}

struct Job {
    jpeg: Vec<u8>,
    submitted: Instant,
    reply: Sender<Result<LiveResult, LiveError>>,
}

struct Ready {
    tensor: Tensor,
    submitted: Instant,
    preproc: Duration,
    preproc_done: Instant,
    reply: Sender<Result<LiveResult, LiveError>>,
}

/// A running live server; dropping it shuts down all worker threads.
pub struct LiveServer {
    ingress: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for LiveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveServer")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl LiveServer {
    /// Starts preprocessing, batching, and inference threads around
    /// `model`.
    pub fn start(model: Model, opts: LiveOptions) -> Self {
        let model = Arc::new(model);
        let (ingress_tx, ingress_rx) = unbounded::<Job>();
        let (ready_tx, ready_rx) = unbounded::<Ready>();
        let (batch_tx, batch_rx) = bounded::<Vec<Ready>>(4);
        let mut handles = Vec::new();

        // Preprocessing workers: decode → resize → normalize.
        let side = opts.input_side;
        for _ in 0..opts.preproc_workers.max(1) {
            let rx = ingress_rx.clone();
            let tx = ready_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let start = Instant::now();
                    match vserve_codec::decode(&job.jpeg) {
                        Ok(img) => {
                            let tensor = ops::standard_preprocess(&img, side);
                            let done = Instant::now();
                            let ready = Ready {
                                tensor,
                                submitted: job.submitted,
                                preproc: done - start,
                                preproc_done: done,
                                reply: job.reply,
                            };
                            if tx.send(ready).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = job.reply.send(Err(LiveError::Decode(e)));
                        }
                    }
                }
            }));
        }
        drop(ready_tx);

        // Dynamic batcher: fill up to max_batch or wait max_queue_delay.
        let max_batch = opts.max_batch.max(1);
        let max_delay = opts.max_queue_delay;
        {
            let batch_tx = batch_tx.clone();
            handles.push(std::thread::spawn(move || {
                loop {
                    let first = match ready_rx.recv() {
                        Ok(r) => r,
                        Err(_) => return,
                    };
                    let deadline = Instant::now() + max_delay;
                    let mut batch = vec![first];
                    while batch.len() < max_batch {
                        let left = deadline.saturating_duration_since(Instant::now());
                        match ready_rx.recv_timeout(left) {
                            Ok(r) => batch.push(r),
                            Err(RecvTimeoutError::Timeout) => break,
                            Err(RecvTimeoutError::Disconnected) => {
                                let _ = batch_tx.send(batch);
                                return;
                            }
                        }
                    }
                    if batch_tx.send(batch).is_err() {
                        return;
                    }
                }
            }));
        }
        drop(batch_tx);

        // Inference workers: run the real model per batch item.
        for _ in 0..opts.inference_workers.max(1) {
            let rx = batch_rx.clone();
            let model = Arc::clone(&model);
            handles.push(std::thread::spawn(move || {
                while let Ok(batch) = rx.recv() {
                    let start = Instant::now();
                    let outputs: Vec<_> = batch
                        .iter()
                        .map(|r| model.forward(&r.tensor))
                        .collect();
                    let wall = start.elapsed();
                    let finished = Instant::now();
                    for (ready, out) in batch.into_iter().zip(outputs) {
                        let msg = match out {
                            Ok(t) => Ok(LiveResult {
                                output: t.into_vec(),
                                preproc: ready.preproc,
                                queue: start.saturating_duration_since(ready.preproc_done),
                                inference: wall,
                                total: finished.saturating_duration_since(ready.submitted),
                            }),
                            Err(e) => Err(LiveError::Model(e)),
                        };
                        let _ = ready.reply.send(msg);
                    }
                }
            }));
        }

        LiveServer {
            ingress: Some(ingress_tx),
            handles,
        }
    }

    /// Submits a JPEG asynchronously; the returned channel yields the
    /// result.
    pub fn submit(&self, jpeg: Vec<u8>) -> Receiver<Result<LiveResult, LiveError>> {
        let (tx, rx) = bounded(1);
        let job = Job {
            jpeg,
            submitted: Instant::now(),
            reply: tx,
        };
        if let Some(ingress) = &self.ingress {
            let _ = ingress.send(job);
        }
        rx
    }

    /// Submits a JPEG and blocks for the result.
    ///
    /// # Errors
    ///
    /// Returns [`LiveError`] if decoding or model execution fails, or if
    /// the server shuts down first.
    pub fn infer(&self, jpeg: Vec<u8>) -> Result<LiveResult, LiveError> {
        self.submit(jpeg)
            .recv()
            .map_err(|_| LiveError::Disconnected)?
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.ingress.take(); // close ingress: workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vserve_device::ImageSpec;
    use vserve_dnn::models;
    use vserve_workload::synthetic_jpeg;

    fn tiny_server(max_batch: usize) -> LiveServer {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        LiveServer::start(
            model,
            LiveOptions {
                preproc_workers: 2,
                inference_workers: 1,
                max_batch,
                max_queue_delay: Duration::from_millis(2),
                input_side: 32,
            },
        )
    }

    #[test]
    fn single_request_round_trips() {
        let server = tiny_server(4);
        let jpeg = synthetic_jpeg(&ImageSpec::new(48, 40, 0), 5);
        let r = server.infer(jpeg).unwrap();
        assert_eq!(r.output.len(), 10);
        let sum: f32 = r.output.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "softmax sum {sum}");
        assert!(r.total >= r.inference);
    }

    #[test]
    fn many_concurrent_requests_all_answered() {
        let server = tiny_server(8);
        let receivers: Vec<_> = (0..40)
            .map(|i| server.submit(synthetic_jpeg(&ImageSpec::new(40, 40, 0), i)))
            .collect();
        for rx in receivers {
            let r = rx.recv().unwrap().unwrap();
            assert_eq!(r.output.len(), 10);
        }
    }

    #[test]
    fn bad_jpeg_reports_decode_error() {
        let server = tiny_server(4);
        let err = server.infer(vec![1, 2, 3]).unwrap_err();
        assert!(matches!(err, LiveError::Decode(_)));
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = tiny_server(4);
        let jpeg = synthetic_jpeg(&ImageSpec::new(32, 32, 0), 9);
        let _ = server.infer(jpeg).unwrap();
        drop(server); // must not hang
    }
}
