//! Server configuration and the Fig 3 software-ladder presets.

use vserve_device::EngineKind;

/// Where the preprocessing stage executes (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PreprocWhere {
    /// Host CPU worker pool (libjpeg-style path).
    Cpu,
    /// On the GPU via batched decode kernels (DALI/nvJPEG-style path).
    #[default]
    Gpu,
}

impl std::fmt::Display for PreprocWhere {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PreprocWhere::Cpu => "cpu",
            PreprocWhere::Gpu => "gpu",
        })
    }
}

/// Which CPU preprocessing implementation the cost model replays.
///
/// Mirrors [`LiveOptions::fast_preproc`](crate::live::LiveOptions::fast_preproc):
/// `Fast` charges `CpuModel::preprocess_time_fast` (DCT-domain scaled
/// decode + fused resize/normalize) instead of the unfused baseline
/// chain. GPU preprocessing is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PreprocPath {
    /// Full-resolution decode, then separate resize and normalize passes.
    #[default]
    Baseline,
    /// Scaled decode + fused resize→normalize→tensor kernel.
    Fast,
}

/// How requests reach the server (§2.1's client→server leg).
///
/// Mirrors the real deployment split between driving `LiveServer`
/// in-process and going through the `vserve-net` TCP front-end: `Tcp`
/// charges `CpuModel::rpc_time()` (frame parse + socket syscalls, the
/// paper's serialization row) and `CpuModel::serialize_time(payload)`
/// (the client→server data-transfer row) per request, recorded under the
/// `0-net-transfer` / `0-deserialize` breakdown stages. `InProcess`
/// charges nothing — the rows stay absent, exactly like the live server
/// driven without a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RpcPath {
    /// Requests are injected in-process; no RPC leg exists.
    #[default]
    InProcess,
    /// Requests arrive over the framed TCP protocol.
    Tcp,
}

impl std::fmt::Display for RpcPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RpcPath::InProcess => "in-process",
            RpcPath::Tcp => "tcp",
        })
    }
}

/// Which pipeline stages run, for the stage-isolation study of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StageMode {
    /// Full pipeline: preprocessing and inference.
    #[default]
    EndToEnd,
    /// Preprocessing only; requests complete after the preprocessed
    /// tensor is ready on the device.
    PreprocOnly,
    /// Inference only: clients send the already-preprocessed fp32 input
    /// tensor, ≈5× larger than the medium image's compressed form — the
    /// transfer that produces the §4.4 outlier.
    InferenceOnly,
}

/// The profile of the deployed model, from `vserve-dnn` graph accounting.
///
/// # Examples
///
/// ```
/// use vserve_server::ModelProfile;
///
/// let vit = ModelProfile::vit_base();
/// assert_eq!(vit.input_side, 224);
/// assert!((vit.flops - 17.5e9).abs() < 1e9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Human-readable name.
    pub name: String,
    /// FLOPs (MACs) per image at `input_side²`.
    pub flops: f64,
    /// Side of the square DNN input in pixels.
    pub input_side: usize,
}

impl ModelProfile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, flops: f64, input_side: usize) -> Self {
        ModelProfile {
            name: name.into(),
            flops,
            input_side,
        }
    }

    /// ViT-Base/16 at 224² — the paper's primary model.
    pub fn vit_base() -> Self {
        ModelProfile::new("vit-base", 17.5e9, 224)
    }

    /// ResNet-50 at 224².
    pub fn resnet50() -> Self {
        ModelProfile::new("resnet-50", 4.1e9, 224)
    }

    /// TinyViT-5M at 224².
    pub fn tiny_vit() -> Self {
        ModelProfile::new("tinyvit-5m", 1.3e9, 224)
    }
}

/// Full serving-system configuration.
///
/// The defaults are the paper's throughput-optimized setup (§2.3):
/// TensorRT engine, GPU preprocessing, dynamic batching, tuned worker and
/// instance counts.
///
/// # Examples
///
/// ```
/// use vserve_server::{PreprocWhere, ServerConfig};
///
/// let tuned = ServerConfig::optimized();
/// let cpu_pre = ServerConfig { preproc: PreprocWhere::Cpu, ..ServerConfig::optimized() };
/// assert!(tuned.dynamic_batching && cpu_pre.preproc == PreprocWhere::Cpu);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Where preprocessing runs.
    pub preproc: PreprocWhere,
    /// Inference backend.
    pub engine: EngineKind,
    /// CPU preprocessing worker processes (used when `preproc == Cpu`).
    pub preproc_workers: usize,
    /// Concurrent GPU decode streams per GPU (used when `preproc == Gpu`).
    pub gpu_preproc_streams: usize,
    /// Images per GPU preprocessing batch.
    pub preproc_batch: usize,
    /// Model instances (CUDA streams) per GPU.
    pub instances_per_gpu: usize,
    /// Maximum inference batch size.
    pub max_batch: usize,
    /// Dynamic batcher: maximum queueing delay before a partial batch is
    /// launched, seconds.
    pub max_queue_delay_s: f64,
    /// Whether dynamic batching is enabled; when off, the batcher waits
    /// for a full `max_batch` (up to a long timeout), mimicking fixed
    /// client-side batches.
    pub dynamic_batching: bool,
    /// Which stages execute (Fig 7 isolation).
    pub stage_mode: StageMode,
    /// CPU preprocessing implementation the cost model replays (used when
    /// `preproc == Cpu`).
    pub preproc_path: PreprocPath,
    /// Fraction of requests served from the content-addressed
    /// preprocessed-tensor cache (CPU preprocessing only): each such
    /// request pays `CpuModel::cache_hit_time` instead of preprocessing.
    /// `0.0` disables the cache in the model; must be in `[0, 1]`.
    pub preproc_cache_hit_rate: f64,
    /// How requests reach the server: in-process injection (no RPC leg)
    /// or the framed TCP front-end (per-request transfer + deserialize
    /// charges from the `CpuModel` rpc knobs).
    pub rpc: RpcPath,
    /// Front-end server shards behind the router tier (`vserve-net`'s
    /// `Router`). Scales dispatch and CPU-preprocessing capacity by the
    /// shard count; when `> 1` under [`RpcPath::Tcp`], each request is
    /// charged one extra `CpuModel::rpc_time()` router hop. `0` is
    /// treated as `1`.
    pub shards: usize,
    /// Tenant lanes mirrored from the live server's multi-tenant mode:
    /// with two or more entries, arrivals are assigned to lanes
    /// round-robin (deterministic), each lane's batch queue is assembled
    /// independently, and batches dispatch per-lane via the same
    /// weighted-fair/strict-priority DRR picker the live scheduler uses
    /// — the deterministic interference-replay twin. Empty (the
    /// default) keeps the single-lane batcher. Per-tenant quota and
    /// deadline admission are a live-server concern and are ignored
    /// here: the sim replays scheduling interference, not shedding.
    pub tenants: Vec<vserve_sched::TenantSpec>,
}

impl ServerConfig {
    /// The paper's throughput-optimized configuration (TrIS + TensorRT +
    /// DALI GPU preprocessing + tuned server parameters).
    pub fn optimized() -> Self {
        ServerConfig {
            preproc: PreprocWhere::Gpu,
            engine: EngineKind::TensorRt,
            preproc_workers: 14,
            gpu_preproc_streams: 2,
            preproc_batch: 16,
            instances_per_gpu: 2,
            max_batch: 64,
            max_queue_delay_s: 2e-3,
            dynamic_batching: true,
            stage_mode: StageMode::EndToEnd,
            preproc_path: PreprocPath::Baseline,
            preproc_cache_hit_rate: 0.0,
            rpc: RpcPath::InProcess,
            shards: 1,
            tenants: Vec::new(),
        }
    }

    /// The same configuration with CPU preprocessing (the paper's second
    /// arm in every experiment).
    pub fn optimized_cpu_preproc() -> Self {
        ServerConfig {
            preproc: PreprocWhere::Cpu,
            ..Self::optimized()
        }
    }

    /// TrIS defaults before the paper's parameter search (Fig 3 rung 5→6):
    /// one instance, few workers, default batching limits.
    pub fn tris_defaults(engine: EngineKind) -> Self {
        ServerConfig {
            preproc: PreprocWhere::Gpu,
            engine,
            preproc_workers: 4,
            gpu_preproc_streams: 1,
            preproc_batch: 8,
            instances_per_gpu: 1,
            max_batch: 16,
            max_queue_delay_s: 5e-3,
            dynamic_batching: true,
            stage_mode: StageMode::EndToEnd,
            preproc_path: PreprocPath::Baseline,
            preproc_cache_hit_rate: 0.0,
            rpc: RpcPath::InProcess,
            shards: 1,
            tenants: Vec::new(),
        }
    }

    /// Fixed-batch variant (Fig 3 rung 4: TrIS without dynamic batching).
    pub fn with_fixed_batching(mut self) -> Self {
        self.dynamic_batching = false;
        self
    }

    /// Returns this configuration restricted to one pipeline stage.
    pub fn with_stage_mode(mut self, mode: StageMode) -> Self {
        self.stage_mode = mode;
        self
    }

    /// Enables the scaled-decode + fused-kernel fast path in the cost
    /// model (CPU preprocessing only).
    pub fn with_fast_preproc(mut self) -> Self {
        self.preproc_path = PreprocPath::Fast;
        self
    }

    /// Routes modeled requests through the framed TCP front-end: every
    /// request is charged the `CpuModel` rpc knobs' transfer +
    /// deserialize time before dispatch, replaying what `vserve-net`
    /// measures on a real socket.
    pub fn with_rpc(mut self, rpc: RpcPath) -> Self {
        self.rpc = rpc;
        self
    }

    /// Splits the front-end into `shards` servers behind the router tier
    /// (`vserve-net`'s `Router`): dispatch and CPU-preprocessing
    /// capacity scale with the shard count, and requests arriving over
    /// [`RpcPath::Tcp`] pay one extra `CpuModel::rpc_time()` router hop
    /// when `shards > 1`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the modeled preprocessed-tensor cache hit rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn with_cache_hit_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "hit rate {rate} not in [0,1]");
        self.preproc_cache_hit_rate = rate;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_is_tensorrt_gpu() {
        let c = ServerConfig::optimized();
        assert_eq!(c.engine, EngineKind::TensorRt);
        assert_eq!(c.preproc, PreprocWhere::Gpu);
        assert!(c.dynamic_batching);
    }

    #[test]
    fn builders_compose() {
        let c = ServerConfig::tris_defaults(EngineKind::OnnxRuntime)
            .with_fixed_batching()
            .with_stage_mode(StageMode::PreprocOnly);
        assert!(!c.dynamic_batching);
        assert_eq!(c.stage_mode, StageMode::PreprocOnly);
    }

    #[test]
    fn profiles_have_sane_flops() {
        assert!(ModelProfile::tiny_vit().flops < ModelProfile::resnet50().flops);
        assert!(ModelProfile::resnet50().flops < ModelProfile::vit_base().flops);
    }
}
