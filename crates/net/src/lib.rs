//! `vserve-net` — a real TCP serving front-end for the live server.
//!
//! The paper's end-to-end breakdown includes two stages that only exist
//! when requests cross a process boundary: client→server **data
//! transfer** and request **serialization**. `LiveServer` alone can only
//! be driven in-process, so those rows are silently zero. This crate puts
//! a wire between client and server so they are measured, not assumed:
//!
//! * [`wire`] — a length-prefixed framed protocol (request = JPEG payload
//!   + model name + target side + optional deadline + request id;
//!   response = classification output + per-stage breakdown, or a typed
//!   [`Status`] such as `Overloaded`). The decoder is zero-copy and total:
//!   untrusted bytes can make it return [`wire::WireError`], never panic
//!   or over-allocate.
//! * [`server`] — a `std::net` listener with a thread-per-connection
//!   acceptor behind a bounded connection cap (backpressure at accept),
//!   which stamps `transfer`/`deserialize` stage times into the shared
//!   `StageBreakdown` and submits into an embedded
//!   [`LiveServer`](vserve_server::live::LiveServer); shutdown drains
//!   in-flight work before closing.
//! * [`client`] — a blocking client with connection pooling and in-flight
//!   pipelining over each socket; per-request deadlines are propagated
//!   into the frame so the server sheds late work.
//!
//! The wire protocol also carries a `VRM1` **metrics-scrape frame** — its
//! `GET /metrics`: [`scrape`] (or [`NetClient::scrape`]) returns the
//! plain-text exposition [`NetServer::exposition`] renders (counters,
//! per-stage times, latency quantiles, preproc-cache stats), so a running
//! server can be polled by anything that speaks the framed protocol.
//!
//! The `net` bench bin in `vserve-bench` drives this loopback vs
//! in-process to measure the RPC overhead share per payload size, and
//! `vserve-server`'s simulator replays that share via the
//! `ServerConfig::rpc` / `CpuModel::{rpc_fixed_s, serialize_bytes_per_s}`
//! knobs.
//!
//! # Examples
//!
//! ```
//! use vserve_dnn::{models, Model};
//! use vserve_net::{ClientOptions, NetClient, NetOptions, NetServer};
//! use vserve_server::live::LiveOptions;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = Model::from_graph(models::micro_cnn(32, 10)?, 7);
//! let server = NetServer::bind(
//!     model,
//!     NetOptions {
//!         live: LiveOptions { input_side: 32, backend_threads: 1, ..LiveOptions::default() },
//!         ..NetOptions::default()
//!     },
//! )?;
//! let client = NetClient::connect(server.local_addr(), ClientOptions::default())?;
//! # // A tiny JPEG via the workload generator would go here; see
//! # // examples/net_roundtrip.rs for the full round trip.
//! drop(client);
//! # Ok(())
//! # }
//! ```
//!
//! (See `examples/net_roundtrip.rs` for the full server + pooled-client
//! round trip with the per-stage table.)

pub mod client;
#[cfg(unix)]
pub mod conn;
#[cfg(unix)]
pub mod poller;
pub mod router;
pub mod server;
pub mod wire;

pub use client::{scrape, ClientOptions, NetClient, NetError, NetResult};
#[cfg(unix)]
pub use poller::fd_soft_limit;
pub use router::{Router, RouterClient, RouterOptions, ShardPolicy};
pub use server::{NetMetrics, NetOptions, NetServer};
pub use wire::{
    FrameAssembler, MetricsRequest, RequestFrame, ResponseFrame, StageMicros, Status, WireError,
    MAX_FRAME_LEN,
};

/// Environment variable read by [`NetOptions::default`] for the listen
/// address (`host:port`; port 0 picks an ephemeral port).
pub const NET_ADDR_ENV: &str = "VSERVE_NET_ADDR";

/// Environment variable read by [`NetOptions::default`] for the maximum
/// concurrently accepted connections.
pub const NET_MAX_CONNS_ENV: &str = "VSERVE_NET_MAX_CONNS";

/// Environment variable read by [`ClientOptions::default`] for the
/// client's connection-pool size.
pub const NET_POOL_ENV: &str = "VSERVE_NET_POOL";

/// Environment variable read by [`NetOptions::default`] selecting the
/// server implementation: `1`/`true` for the evented readiness loop
/// (default on Unix), `0`/`false` for the thread-per-connection
/// baseline.
pub const NET_EVENTED_ENV: &str = "VSERVE_NET_EVENTED";

/// Environment variable read by [`NetOptions::default`] for the
/// per-connection in-flight request cap (flow control).
pub const NET_INFLIGHT_ENV: &str = "VSERVE_NET_INFLIGHT_PER_CONN";

/// Environment variable read by [`RouterOptions::default`] for the
/// number of server shards behind the router.
pub const NET_SHARDS_ENV: &str = "VSERVE_NET_SHARDS";

/// Default listen address: loopback, ephemeral port.
pub const DEFAULT_ADDR: &str = "127.0.0.1:0";

/// Default connection cap for [`NetOptions`].
pub const DEFAULT_MAX_CONNS: usize = 64;

/// Default pool size for [`ClientOptions`].
pub const DEFAULT_POOL: usize = 2;

/// Default per-connection in-flight request cap.
pub const DEFAULT_INFLIGHT_PER_CONN: usize = 128;

/// Default shard count for [`RouterOptions`].
pub const DEFAULT_SHARDS: usize = 2;

pub(crate) fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

pub(crate) fn env_bool(var: &str, default: bool) -> bool {
    match std::env::var(var) {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "yes" | "on" => true,
            "0" | "false" | "no" | "off" => false,
            _ => default,
        },
        Err(_) => default,
    }
}
