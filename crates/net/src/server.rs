//! The TCP front-end: accept connections, read request frames, serve
//! them through an embedded [`LiveServer`], write response frames back.
//!
//! # Structure
//!
//! One acceptor thread owns the listener. It reserves a connection slot
//! *before* calling `accept` — when [`NetOptions::max_conns`] connections
//! are live it blocks on a condvar, so overload pushes back at the TCP
//! accept queue instead of spawning unbounded threads (the same
//! backpressure philosophy as the live server's bounded ingress).
//!
//! Each connection gets a reader thread and a writer thread joined by a
//! bounded channel of pending responses:
//!
//! * the **reader** pulls frames off the socket (measuring the
//!   data-transfer time per frame), decodes them (measuring
//!   deserialization), submits the payload into the [`LiveServer`] with
//!   the frame's propagated deadline, and enqueues the reply handle;
//! * the **writer** resolves pending replies *in request order* — which
//!   is what makes pipelining safe for clients that match responses by
//!   position as well as by id — encodes them, and writes them back.
//!
//! The bounded pending channel caps per-connection pipelining
//! ([`NetOptions::max_inflight_per_conn`]): a client that fires requests
//! without reading responses eventually blocks in its socket, not in
//! server memory.
//!
//! # Shutdown
//!
//! Dropping the [`NetServer`] is graceful: the acceptor is woken and
//! exits, every connection's read half is shut down (readers see EOF and
//! stop taking new frames), writers drain every in-flight response, and
//! only then is the embedded live server dropped. In-flight requests are
//! answered, not abandoned.
//!
//! # Failure mapping
//!
//! A malformed frame gets a typed [`Status::BadFrame`] response and the
//! connection closes (framing can no longer be trusted); every other
//! failure — [`Status::Overloaded`] sheds, [`Status::DeadlineExceeded`],
//! decode/model errors — is a normal response frame on a healthy
//! connection. Remote clients can therefore distinguish "server is
//! protecting itself" from "connection died", which the loopback E2E test
//! pins.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver as MpscReceiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vserve_dnn::Model;
use vserve_metrics::StageBreakdown;
use vserve_pipeline::{PipelineRunner, PipelineSpec};
use vserve_server::live::{LiveError, LiveMetrics, LiveOptions, LiveResult, LiveServer, ZooModel};
use vserve_server::{stages, ServingSummary};
use vserve_trace::expose::Exposition;
use vserve_trace::Tracer;
use vserve_tune::{TuneOptions, Tuner};

use crate::wire::{
    self, encode_response, RequestFrame, ResponseFrame, StageMicros, Status, WireError,
};
use crate::{
    env_bool, env_usize, DEFAULT_ADDR, DEFAULT_INFLIGHT_PER_CONN, DEFAULT_MAX_CONNS, NET_ADDR_ENV,
    NET_EVENTED_ENV, NET_INFLIGHT_ENV, NET_MAX_CONNS_ENV,
};

/// Configuration for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    /// Defaults to [`NET_ADDR_ENV`] or `127.0.0.1:0`.
    pub addr: String,
    /// Maximum concurrently served connections; further connects queue in
    /// the kernel's accept backlog. Defaults to [`NET_MAX_CONNS_ENV`] or
    /// 64.
    pub max_conns: usize,
    /// Maximum responses pending per connection before the server stops
    /// pulling new frames off that socket (per-connection flow control).
    /// Defaults to [`NET_INFLIGHT_ENV`] or 128.
    pub max_inflight_per_conn: usize,
    /// Serve with the readiness-driven event loop (one thread multiplexing
    /// every connection via epoll/poll) instead of thread-per-connection.
    /// Defaults to [`NET_EVENTED_ENV`], or `true` on Unix. Forced off on
    /// non-Unix targets, where no poller backend exists.
    pub evented: bool,
    /// Evented mode: a connection whose unflushed reply bytes exceed this
    /// stops being read until the client drains its socket — a stalled
    /// reader stalls its own sender instead of growing server memory.
    pub write_hwm_bytes: usize,
    /// Evented mode: how long graceful shutdown waits for in-flight
    /// replies to flush before force-closing connections.
    pub drain_timeout: Duration,
    /// Name the deployed model answers to; frames naming anything else
    /// get [`Status::UnknownModel`]. An empty model name in a frame
    /// always matches.
    pub model_name: String,
    /// Options for the embedded [`LiveServer`].
    pub live: LiveOptions,
    /// Run the self-tuning controller ([`vserve_tune::Tuner`]) against
    /// the embedded live server. Defaults to [`TuneOptions::from_env`]
    /// when `VSERVE_TUNE` is set ([`TuneOptions::enabled_from_env`]),
    /// `None` — static knobs — otherwise.
    pub tune: Option<TuneOptions>,
    /// Register a cascade pipeline executor over the embedded live
    /// server's lanes at bind time; `VRQ2` frames naming it (in the
    /// tenant or model field) dispatch whole cascades. Defaults to
    /// [`PipelineSpec::from_env`] — the `VSERVE_PIPELINE` chain syntax,
    /// with dynamic fan-out capped by `VSERVE_PIPELINE_FANOUT_CAP` —
    /// `None` otherwise.
    pub pipeline: Option<PipelineSpec>,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            addr: std::env::var(NET_ADDR_ENV).unwrap_or_else(|_| DEFAULT_ADDR.to_owned()),
            max_conns: env_usize(NET_MAX_CONNS_ENV, DEFAULT_MAX_CONNS),
            max_inflight_per_conn: env_usize(NET_INFLIGHT_ENV, DEFAULT_INFLIGHT_PER_CONN),
            evented: env_bool(NET_EVENTED_ENV, cfg!(unix)),
            write_hwm_bytes: 1 << 20,
            drain_timeout: Duration::from_secs(5),
            model_name: "default".to_owned(),
            live: LiveOptions::default(),
            tune: TuneOptions::enabled_from_env().then(TuneOptions::from_env),
            pipeline: PipelineSpec::from_env(),
        }
    }
}

/// Network-layer counters and stage times, alongside the embedded live
/// server's metrics.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    /// Connections accepted since bind.
    pub accepted: u64,
    /// Connections currently being served.
    pub active: usize,
    /// Request frames successfully parsed.
    pub frames: u64,
    /// Frames rejected as malformed (each closes its connection).
    pub bad_frames: u64,
    /// Connections currently draining: no longer read, finishing
    /// in-flight replies before close (evented mode).
    pub draining: usize,
    /// Largest unflushed reply buffer any connection has held, in bytes
    /// (evented mode) — the observable face of the write-side flow
    /// control.
    pub write_buffer_hwm_bytes: u64,
    /// Network-layer stage times: one
    /// [`stages::NET_TRANSFER`]/[`stages::DESERIALIZE`] observation per
    /// *completed* request, so per-stage counts line up with the live
    /// breakdown when merged.
    pub net_breakdown: StageBreakdown,
    /// The embedded live server's metrics.
    pub live: LiveMetrics,
}

impl NetMetrics {
    /// Reduces to the shared [`ServingSummary`] shape with the network
    /// stages merged into the live breakdown — this is where the paper's
    /// data-transfer and serialization rows appear next to queue /
    /// preproc / inference.
    ///
    /// The latency distribution remains the live server's (submission →
    /// response); the RPC leg appears as the extra breakdown rows, and
    /// [`ServingSummary::rpc_share`] reads them.
    pub fn summary(&self) -> ServingSummary {
        let mut s = self.live.summary();
        s.breakdown.merge(&self.net_breakdown);
        s
    }
}

pub(crate) struct NetMetricsInner {
    accepted: u64,
    pub(crate) frames: u64,
    pub(crate) bad_frames: u64,
    pub(crate) breakdown: StageBreakdown,
}

/// A pending item the writer resolves in order.
enum Pending {
    /// A submitted request: block on the live server's reply, then encode.
    Wait {
        id: u64,
        transfer: Duration,
        deserialize: Duration,
        wait: Box<dyn FnOnce() -> Result<LiveResult, LiveError> + Send>,
    },
    /// An immediate typed status (bad frame, unknown model, shutdown).
    Reply {
        id: u64,
        status: Status,
        msg: String,
    },
}

pub(crate) struct NetShared {
    shutdown: AtomicBool,
    /// Live connection count, guarded with [`Self::cv`] for the
    /// accept-side backpressure wait (threaded mode; the evented loop
    /// updates it for the `active` metric).
    slots: Mutex<usize>,
    cv: Condvar,
    max_conns: usize,
    pub(crate) model_name: String,
    next_conn: AtomicU64,
    /// Read-half handles of live connections, for shutdown wakeup
    /// (threaded mode only; the evented loop owns its streams).
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Join handles of connection threads (the acceptor pushes, drop
    /// drains).
    handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: Mutex<NetMetricsInner>,
    /// Bumped by [`NetServer::drain_connections`]; the evented loop
    /// compares against its last-seen value.
    drain_req: AtomicU64,
    /// Connections currently draining (evented mode gauge).
    draining: AtomicU64,
    /// Lifetime write-buffer high-water mark in bytes (evented gauge).
    write_hwm: AtomicU64,
    /// Knob reconfigurations applied by the tuner; shared with the
    /// controller thread, stays 0 when tuning is off. Scrapes read it
    /// regardless so dashboards keep a stable schema.
    tune_decisions: Arc<AtomicU64>,
}

impl NetShared {
    pub(crate) fn lock_metrics(&self) -> MutexGuard<'_, NetMetricsInner> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn release_slot(&self) {
        let mut n = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        self.cv.notify_all();
    }

    fn set_active(&self, n: usize) {
        *self.slots.lock().unwrap_or_else(|e| e.into_inner()) = n;
    }

    fn note_write_hwm(&self, bytes: u64) {
        self.write_hwm.fetch_max(bytes, Ordering::Relaxed);
    }
}

/// Which serving engine is running behind [`NetServer`].
enum Engine {
    /// One acceptor thread + two threads per connection (the PR-4
    /// baseline, kept as the comparison point and the non-Unix fallback).
    Threaded { acceptor: Option<JoinHandle<()>> },
    /// One event-loop thread multiplexing every connection through a
    /// readiness poller.
    #[cfg(unix)]
    Evented {
        driver: Option<JoinHandle<()>>,
        wake: crate::poller::WakeHandle,
    },
}

/// A running TCP front-end; dropping it drains in-flight requests,
/// closes every connection, and shuts the embedded live server down.
pub struct NetServer {
    local_addr: SocketAddr,
    live: Arc<LiveServer>,
    shared: Arc<NetShared>,
    engine: Engine,
    /// The self-tuning controller, when enabled; stopped first on drop so
    /// knobs hold still while connections drain.
    tuner: Option<Tuner>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.local_addr)
            .finish()
    }
}

impl NetServer {
    /// Binds the listener, starts the embedded [`LiveServer`] around
    /// `model`, and spawns the acceptor.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind(model: Model, opts: NetOptions) -> std::io::Result<NetServer> {
        let live = Arc::new(LiveServer::start(model, opts.live.clone()));
        Self::bind_with(live, opts)
    }

    /// Binds a multi-model deployment: one lane per tenant in
    /// `opts.live.tenants` (or one per zoo model when no tenants are
    /// configured), with `VRQ2` tenant headers and model names routing
    /// across the zoo.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the zoo/tenant configuration is
    /// rejected by [`LiveServer::start_zoo`], or the bind error if the
    /// address is unavailable.
    pub fn bind_zoo(zoo: Vec<ZooModel>, opts: NetOptions) -> std::io::Result<NetServer> {
        let live = LiveServer::start_zoo(zoo, opts.live.clone())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        Self::bind_with(Arc::new(live), opts)
    }

    fn bind_with(live: Arc<LiveServer>, opts: NetOptions) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&opts.addr)?;
        let local_addr = listener.local_addr()?;
        if let Some(spec) = opts.pipeline.clone() {
            // A spec whose lanes don't resolve on this deployment is a
            // configuration error, surfaced at bind like a bad zoo.
            let name = spec.name.clone();
            let runner = PipelineRunner::new(live.pipeline_handle(), spec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            live.register_pipeline(&name, Arc::new(runner));
        }
        let tuner = opts
            .tune
            .map(|tune_opts| Tuner::start(Arc::clone(&live), tune_opts));
        let tune_decisions = tuner
            .as_ref()
            .map(|t| t.decisions())
            .unwrap_or_else(|| Arc::new(AtomicU64::new(0)));
        let shared = Arc::new(NetShared {
            shutdown: AtomicBool::new(false),
            slots: Mutex::new(0),
            cv: Condvar::new(),
            max_conns: opts.max_conns.max(1),
            model_name: opts.model_name.clone(),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            metrics: Mutex::new(NetMetricsInner {
                accepted: 0,
                frames: 0,
                bad_frames: 0,
                breakdown: StageBreakdown::new(),
            }),
            drain_req: AtomicU64::new(0),
            draining: AtomicU64::new(0),
            write_hwm: AtomicU64::new(0),
            tune_decisions,
        });
        let max_inflight = opts.max_inflight_per_conn.max(1);
        #[cfg(unix)]
        if opts.evented {
            let waker = crate::poller::Waker::new()?;
            let wake = waker.handle()?;
            let poller = crate::poller::Poller::new()?;
            let driver = {
                let shared = Arc::clone(&shared);
                let live = Arc::clone(&live);
                let write_hwm = opts.write_hwm_bytes.max(1);
                let drain_timeout = opts.drain_timeout;
                std::thread::spawn(move || {
                    event_loop(
                        listener,
                        poller,
                        waker,
                        shared,
                        live,
                        max_inflight,
                        write_hwm,
                        drain_timeout,
                    )
                })
            };
            return Ok(NetServer {
                local_addr,
                live,
                shared,
                engine: Engine::Evented {
                    driver: Some(driver),
                    wake,
                },
                tuner,
            });
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            let live = Arc::clone(&live);
            std::thread::spawn(move || accept_loop(listener, shared, live, max_inflight))
        };
        Ok(NetServer {
            local_addr,
            live,
            shared,
            engine: Engine::Threaded {
                acceptor: Some(acceptor),
            },
            tuner,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshots network-layer counters plus the live server's metrics.
    pub fn metrics(&self) -> NetMetrics {
        let m = self.shared.lock_metrics();
        let active = *self.shared.slots.lock().unwrap_or_else(|e| e.into_inner());
        NetMetrics {
            accepted: m.accepted,
            active,
            frames: m.frames,
            bad_frames: m.bad_frames,
            draining: self.shared.draining.load(Ordering::Relaxed) as usize,
            write_buffer_hwm_bytes: self.shared.write_hwm.load(Ordering::Relaxed),
            net_breakdown: m.breakdown.clone(),
            live: self.live.metrics(),
        }
    }

    /// Gracefully drains every *current* connection: stops reading from
    /// them, finishes their in-flight replies, flushes, and closes — while
    /// continuing to accept new connections. Clients observe all
    /// outstanding responses followed by EOF; a pooled [`NetClient`]
    /// transparently reconnects on its next submit.
    ///
    /// [`NetClient`]: crate::client::NetClient
    pub fn drain_connections(&self) {
        self.shared.drain_req.fetch_add(1, Ordering::SeqCst);
        match &self.engine {
            Engine::Threaded { .. } => {
                // EOF every reader: in-flight replies drain through the
                // writers, then the connection threads exit.
                if let Ok(conns) = self.shared.conns.lock() {
                    for stream in conns.values() {
                        let _ = stream.shutdown(Shutdown::Read);
                    }
                }
            }
            #[cfg(unix)]
            Engine::Evented { wake, .. } => wake.wake(),
        }
    }

    /// Renders the plain-text metrics exposition — the same document a
    /// `VRM1` scrape frame receives over the wire.
    pub fn exposition(&self) -> String {
        render_exposition(&self.shared, &self.live)
    }

    /// The embedded live server's tracer, for snapshotting spans recorded
    /// by both the network layer and the serving pipeline.
    pub fn tracer(&self) -> &Tracer {
        self.live.tracer()
    }
}

/// Renders the metrics exposition document from the network counters and
/// the embedded live server's metrics. Stage rows merge the network-layer
/// breakdown into the live one, mirroring [`NetMetrics::summary`].
pub(crate) fn render_exposition(shared: &NetShared, live: &LiveServer) -> String {
    let (accepted, frames, bad_frames, net_breakdown) = {
        let m = shared.lock_metrics();
        (m.accepted, m.frames, m.bad_frames, m.breakdown.clone())
    };
    let active = *shared.slots.lock().unwrap_or_else(|e| e.into_inner());
    let lm = live.metrics();
    let mut breakdown = lm.breakdown.clone();
    breakdown.merge(&net_breakdown);

    let mut e = Exposition::new();
    e.header("vserve_up", "gauge", "1 while the server is serving.")
        .gauge("vserve_up", 1.0);
    e.header(
        "vserve_connections_accepted_total",
        "counter",
        "Connections accepted since bind.",
    )
    .counter("vserve_connections_accepted_total", accepted);
    e.header(
        "vserve_connections_active",
        "gauge",
        "Connections currently being served.",
    )
    .gauge("vserve_connections_active", active as f64);
    e.header(
        "vserve_conns_open",
        "gauge",
        "Connections currently open (registered with the event loop or served by threads).",
    )
    .gauge("vserve_conns_open", active as f64);
    e.header(
        "vserve_conns_draining",
        "gauge",
        "Connections finishing in-flight replies before close.",
    )
    .gauge(
        "vserve_conns_draining",
        shared.draining.load(Ordering::Relaxed) as f64,
    );
    e.header(
        "vserve_write_buffer_hwm_bytes",
        "gauge",
        "Largest unflushed reply buffer any connection has held.",
    )
    .gauge(
        "vserve_write_buffer_hwm_bytes",
        shared.write_hwm.load(Ordering::Relaxed) as f64,
    );
    e.header(
        "vserve_frames_total",
        "counter",
        "Request frames successfully parsed (inference and scrape).",
    )
    .counter("vserve_frames_total", frames);
    e.header(
        "vserve_bad_frames_total",
        "counter",
        "Frames rejected as malformed.",
    )
    .counter("vserve_bad_frames_total", bad_frames);
    e.header(
        "vserve_requests_completed_total",
        "counter",
        "Requests completed successfully.",
    )
    .counter("vserve_requests_completed_total", lm.completed);
    e.header(
        "vserve_requests_rejected_total",
        "counter",
        "Requests shed by ingress backpressure.",
    )
    .counter("vserve_requests_rejected_total", lm.rejected);
    e.header(
        "vserve_requests_expired_total",
        "counter",
        "Requests shed because their deadline passed.",
    )
    .counter("vserve_requests_expired_total", lm.expired);
    e.header(
        "vserve_throughput_rps",
        "gauge",
        "Completed requests per second since start.",
    )
    .gauge("vserve_throughput_rps", lm.throughput);
    e.header(
        "vserve_forward_calls_total",
        "counter",
        "Batched forward calls executed.",
    )
    .counter("vserve_forward_calls_total", lm.forward_calls);
    e.header(
        "vserve_batch_size_mean",
        "gauge",
        "Mean inference batch size actually formed.",
    )
    .gauge("vserve_batch_size_mean", lm.mean_batch);
    e.header(
        "vserve_queue_depth",
        "gauge",
        "Ingress + batcher queue depth (time-averaged and peak).",
    )
    .sample(
        "vserve_queue_depth",
        &[("kind", "mean")],
        lm.queue_depth_mean,
    )
    .sample(
        "vserve_queue_depth",
        &[("kind", "peak")],
        lm.queue_depth_peak,
    );

    // Per-tenant lane rows: one sample per lane, labeled by tenant and
    // model, so co-located tenants are separable on a dashboard.
    e.header(
        "vserve_lane_depth",
        "gauge",
        "Requests queued in each tenant lane.",
    );
    for l in &lm.lanes {
        e.sample(
            "vserve_lane_depth",
            &[("lane", l.name.as_str()), ("model", l.model.as_str())],
            l.depth as f64,
        );
    }
    e.header(
        "vserve_lane_completed",
        "counter",
        "Requests completed per tenant lane.",
    );
    for l in &lm.lanes {
        e.sample(
            "vserve_lane_completed",
            &[("lane", l.name.as_str()), ("model", l.model.as_str())],
            l.completed as f64,
        );
    }
    e.header(
        "vserve_lane_shed",
        "counter",
        "Requests shed at lane admission (quota or infeasible SLO).",
    );
    for l in &lm.lanes {
        e.sample(
            "vserve_lane_shed",
            &[("lane", l.name.as_str()), ("model", l.model.as_str())],
            l.shed as f64,
        );
    }
    e.header(
        "vserve_lane_p99_us",
        "gauge",
        "p99 round-trip latency per tenant lane, microseconds.",
    );
    for l in &lm.lanes {
        e.sample(
            "vserve_lane_p99_us",
            &[("lane", l.name.as_str()), ("model", l.model.as_str())],
            l.p99_us as f64,
        );
    }

    e.header(
        "vserve_latency_seconds",
        "summary",
        "Round-trip latency of completed requests (submission to reply).",
    );
    let l = &lm.latency;
    for (q, v) in [("0.5", l.p50), ("0.95", l.p95), ("0.99", l.p99)] {
        e.sample("vserve_latency_seconds", &[("quantile", q)], v);
    }
    e.gauge("vserve_latency_seconds_mean", l.mean)
        .counter("vserve_latency_seconds_count", l.count);

    e.header(
        "vserve_stage_seconds_total",
        "counter",
        "Total seconds attributed to each serving stage.",
    );
    let mut names = breakdown.stage_names();
    names.sort_unstable();
    for stage in &names {
        e.sample(
            "vserve_stage_seconds_total",
            &[("stage", stage)],
            breakdown.total(stage),
        );
    }
    e.header(
        "vserve_stage_seconds_mean",
        "gauge",
        "Mean seconds per observation for each serving stage.",
    );
    for stage in &names {
        e.sample(
            "vserve_stage_seconds_mean",
            &[("stage", stage)],
            breakdown.mean(stage),
        );
    }
    e.header(
        "vserve_stage_observations_total",
        "counter",
        "Observations recorded for each serving stage.",
    );
    for stage in &names {
        e.sample(
            "vserve_stage_observations_total",
            &[("stage", stage)],
            breakdown.count(stage) as f64,
        );
    }

    let c = &lm.preproc_cache;
    e.header(
        "vserve_preproc_cache_events_total",
        "counter",
        "Preprocessed-tensor cache activity by kind.",
    )
    .sample(
        "vserve_preproc_cache_events_total",
        &[("kind", "hit")],
        c.hits as f64,
    )
    .sample(
        "vserve_preproc_cache_events_total",
        &[("kind", "miss")],
        c.misses as f64,
    )
    .sample(
        "vserve_preproc_cache_events_total",
        &[("kind", "coalesced")],
        c.coalesced as f64,
    )
    .sample(
        "vserve_preproc_cache_events_total",
        &[("kind", "eviction")],
        c.evictions as f64,
    );
    e.header(
        "vserve_preproc_cache_resident",
        "gauge",
        "Current cache occupancy (entries and bytes) and byte budget.",
    )
    .sample(
        "vserve_preproc_cache_resident",
        &[("what", "entries")],
        c.entries as f64,
    )
    .sample(
        "vserve_preproc_cache_resident",
        &[("what", "bytes")],
        c.bytes as f64,
    )
    .sample(
        "vserve_preproc_cache_resident",
        &[("what", "capacity_bytes")],
        c.capacity_bytes as f64,
    );

    // Current effective knob values — what the batcher and pools are
    // actually running with right now, whether set at startup, via env,
    // or retuned online by the controller.
    let k = live.knobs();
    e.header(
        "vserve_tune_max_batch",
        "gauge",
        "Effective batcher size cap.",
    )
    .gauge("vserve_tune_max_batch", k.max_batch as f64);
    e.header(
        "vserve_tune_preproc_workers",
        "gauge",
        "Effective preprocessing worker target.",
    )
    .gauge("vserve_tune_preproc_workers", k.preproc_workers as f64);
    e.header(
        "vserve_tune_linger_us",
        "gauge",
        "Effective batch linger in microseconds.",
    )
    .gauge(
        "vserve_tune_linger_us",
        k.linger.as_micros().min(u64::MAX as u128) as f64,
    );
    e.header(
        "vserve_tune_decisions_total",
        "counter",
        "Knob reconfigurations applied by the self-tuning controller.",
    )
    .counter(
        "vserve_tune_decisions_total",
        shared.tune_decisions.load(Ordering::Relaxed),
    );

    e.header(
        "vserve_trace_enabled",
        "gauge",
        "1 when span tracing is recording.",
    )
    .gauge(
        "vserve_trace_enabled",
        if live.tracer().is_enabled() { 1.0 } else { 0.0 },
    );
    e.finish()
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // Stop the controller before tearing the front-end down: a knob
        // move mid-drain would race the live server's own shutdown.
        drop(self.tuner.take());
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match &mut self.engine {
            Engine::Threaded { acceptor } => {
                self.shared.cv.notify_all();
                // Wake the acceptor out of its blocking accept.
                let _ = TcpStream::connect(self.local_addr);
                if let Some(h) = acceptor.take() {
                    let _ = h.join();
                }
                // EOF every reader; writers then drain their pending
                // responses.
                if let Ok(conns) = self.shared.conns.lock() {
                    for stream in conns.values() {
                        let _ = stream.shutdown(Shutdown::Read);
                    }
                }
                let handles: Vec<_> = self
                    .shared
                    .handles
                    .lock()
                    .map(|mut h| h.drain(..).collect())
                    .unwrap_or_default();
                for h in handles {
                    let _ = h.join();
                }
            }
            #[cfg(unix)]
            Engine::Evented { driver, wake } => {
                // The loop sees the shutdown flag, stops accepting, drains
                // every connection (bounded by `drain_timeout`), and
                // exits.
                wake.wake();
                if let Some(h) = driver.take() {
                    let _ = h.join();
                }
            }
        }
        // The live server (still running until here so in-flight work can
        // finish) shuts down when its last Arc drops with `self.live`.
    }
}

/// Slab tokens for the evented loop: 0 and 1 are reserved, connections
/// start at [`TOKEN_BASE`]. The low 32 bits are `slab index + TOKEN_BASE`;
/// the high 32 bits carry a generation so a completion hook firing after
/// its connection closed (and the slab slot was reused) cannot be
/// misdelivered.
#[cfg(unix)]
const TOKEN_LISTENER: u64 = 0;
#[cfg(unix)]
const TOKEN_WAKER: u64 = 1;
#[cfg(unix)]
const TOKEN_BASE: u64 = 2;

#[cfg(unix)]
fn conn_token(generation: u32, idx: usize) -> u64 {
    ((generation as u64) << 32) | (idx as u64 + TOKEN_BASE)
}

#[cfg(unix)]
fn token_index(token: u64) -> Option<usize> {
    ((token & 0xFFFF_FFFF) as usize).checked_sub(TOKEN_BASE as usize)
}

/// The readiness-driven serving loop: one thread, every connection.
///
/// Invariants the loop maintains:
/// * the listener is registered iff `open < max_conns` and the server is
///   not shutting down (accept-side backpressure without a condvar);
/// * each connection's poller interest always matches
///   [`Conn::desired_interest`] — re-derived after every state change;
/// * a completion token `(token, seq)` is delivered at most once and
///   ignored unless the generation matches (stale hooks are harmless);
/// * on shutdown, every connection drains (in-flight replies flush)
///   before close, bounded by `drain_timeout`.
#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn event_loop(
    listener: TcpListener,
    mut poller: crate::poller::Poller,
    waker: crate::poller::Waker,
    shared: Arc<NetShared>,
    live: Arc<LiveServer>,
    max_inflight: usize,
    write_hwm: usize,
    drain_timeout: Duration,
) {
    use crate::conn::{Completions, Conn, ConnState, Ctx, Verdict};
    use crate::poller::Interest;
    use std::collections::HashSet;
    use std::os::fd::AsRawFd;

    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let lfd = listener.as_raw_fd();
    if poller.add(lfd, TOKEN_LISTENER, Interest::READ).is_err() {
        return;
    }
    if poller.add(waker.fd(), TOKEN_WAKER, Interest::READ).is_err() {
        return;
    }
    let wake = match waker.handle() {
        Ok(w) => w,
        Err(_) => return,
    };
    let completions: Completions = Arc::new(Mutex::new(Vec::new()));
    let tr = live.tracer().register("net-evented");

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut open = 0usize;
    let mut generation: u32 = 1;
    let mut accepting = true;
    let mut drain_seen = 0u64;
    let mut drain_deadline: Option<Instant> = None;
    let mut events = Vec::new();
    let mut touched: HashSet<usize> = HashSet::new();

    loop {
        let _ = poller.wait(&mut events, Some(Duration::from_millis(100)));
        waker.drain();
        touched.clear();

        let ctx = Ctx {
            shared: &shared,
            live: &live,
            tr: &tr,
            completions: &completions,
            wake: &wake,
            max_inflight,
            write_hwm,
        };

        // Server shutdown: stop accepting, drain everything, leave when
        // the last connection closes or the timeout expires.
        if shared.shutdown.load(Ordering::SeqCst) && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + drain_timeout);
            if accepting {
                let _ = poller.remove(lfd);
                accepting = false;
            }
            for (i, c) in conns.iter_mut().enumerate() {
                if let Some(c) = c {
                    c.begin_drain();
                    touched.insert(i);
                }
            }
        }

        // drain_connections(): drain current conns, keep accepting.
        let dr = shared.drain_req.load(Ordering::SeqCst);
        if dr != drain_seen && drain_deadline.is_none() {
            drain_seen = dr;
            for (i, c) in conns.iter_mut().enumerate() {
                if let Some(c) = c {
                    c.begin_drain();
                    touched.insert(i);
                }
            }
        }

        // Reply completions pushed by live-server hooks.
        let done: Vec<(u64, u64)> = {
            let mut g = completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        for (token, seq) in done {
            if let Some(idx) = token_index(token) {
                if let Some(Some(c)) = conns.get_mut(idx) {
                    if c.token == token {
                        c.on_completion(seq);
                        touched.insert(idx);
                    }
                }
            }
        }

        // Readiness events.
        for ei in 0..events.len() {
            let ev = events[ei];
            match ev.token {
                TOKEN_WAKER => {}
                TOKEN_LISTENER => {
                    while accepting && open < shared.max_conns {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                shared.lock_metrics().accepted += 1;
                                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                                let idx = free.pop().unwrap_or_else(|| {
                                    conns.push(None);
                                    conns.len() - 1
                                });
                                generation = generation.wrapping_add(1).max(1);
                                let token = conn_token(generation, idx);
                                match Conn::new(stream, conn_id, token) {
                                    Ok(c) => {
                                        if poller
                                            .add(c.stream.as_raw_fd(), token, Interest::READ)
                                            .is_ok()
                                        {
                                            conns[idx] = Some(c);
                                            open += 1;
                                            shared.set_active(open);
                                            touched.insert(idx);
                                        } else {
                                            free.push(idx);
                                        }
                                    }
                                    Err(_) => free.push(idx),
                                }
                            }
                            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(_) => break,
                        }
                    }
                    // At the cap: unregister so the backlog holds excess
                    // connects (backpressure-before-accept, evented form).
                    if accepting && open >= shared.max_conns {
                        let _ = poller.remove(lfd);
                        accepting = false;
                    }
                }
                token => {
                    if let Some(idx) = token_index(token) {
                        let alive = matches!(
                            conns.get(idx),
                            Some(Some(c)) if c.token == token
                        );
                        if !alive {
                            continue;
                        }
                        let c = conns[idx].as_mut().expect("checked above");
                        let verdict = if ev.hangup && !ev.readable {
                            // Hard error with nothing left to read.
                            Verdict::Close
                        } else if ev.readable {
                            c.on_readable(&ctx)
                        } else {
                            Verdict::Keep
                        };
                        if verdict == Verdict::Close {
                            close_conn(&mut poller, &mut conns, &mut free, &mut open, idx, &shared);
                            touched.remove(&idx);
                        } else {
                            touched.insert(idx);
                        }
                    }
                }
            }
        }

        // Flush + re-derive interest for every connection whose state
        // moved this tick.
        let idxs: Vec<usize> = touched.iter().copied().collect();
        for idx in idxs {
            let Some(Some(c)) = conns.get_mut(idx) else {
                continue;
            };
            let verdict = c.flush(&ctx);
            shared.note_write_hwm(c.out_hwm as u64);
            if verdict == Verdict::Close {
                close_conn(&mut poller, &mut conns, &mut free, &mut open, idx, &shared);
                continue;
            }
            let want = c.desired_interest(&ctx);
            if want != c.applied {
                let interest = Interest {
                    read: want.0,
                    write: want.1,
                };
                if poller
                    .modify(c.stream.as_raw_fd(), c.token, interest)
                    .is_ok()
                {
                    c.applied = want;
                }
            }
        }

        // Publish the draining gauge from actual state (cheap: one pass
        // over the slab, which is bounded by the connection cap).
        let draining = conns
            .iter()
            .flatten()
            .filter(|c| c.state == ConnState::Draining)
            .count();
        shared.draining.store(draining as u64, Ordering::Relaxed);

        // Capacity freed while gated: resume accepting.
        if !accepting && drain_deadline.is_none() && open < shared.max_conns {
            if poller.add(lfd, TOKEN_LISTENER, Interest::READ).is_ok() {
                accepting = true;
            }
        }

        if let Some(deadline) = drain_deadline {
            if open == 0 {
                return;
            }
            if Instant::now() >= deadline {
                // Drain timeout: force-close what remains.
                for idx in 0..conns.len() {
                    if conns[idx].is_some() {
                        close_conn(&mut poller, &mut conns, &mut free, &mut open, idx, &shared);
                    }
                }
                shared.draining.store(0, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Unregisters and drops one connection, updating the open count, the
/// active gauge, and the slab free list.
#[cfg(unix)]
fn close_conn(
    poller: &mut crate::poller::Poller,
    conns: &mut [Option<crate::conn::Conn>],
    free: &mut Vec<usize>,
    open: &mut usize,
    idx: usize,
    shared: &NetShared,
) {
    use std::os::fd::AsRawFd;
    if let Some(c) = conns[idx].take() {
        let _ = poller.remove(c.stream.as_raw_fd());
        let _ = c.stream.shutdown(Shutdown::Both);
        *open = open.saturating_sub(1);
        shared.set_active(*open);
        free.push(idx);
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<NetShared>,
    live: Arc<LiveServer>,
    max_inflight: usize,
) {
    loop {
        // Backpressure at accept: reserve a connection slot first, so at
        // the cap we stop accepting and excess connects wait in the
        // kernel backlog.
        {
            let mut n = shared.slots.lock().unwrap_or_else(|e| e.into_inner());
            while *n >= shared.max_conns && !shared.shutdown.load(Ordering::SeqCst) {
                n = shared.cv.wait(n).unwrap_or_else(|e| e.into_inner());
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            *n += 1;
        }
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                shared.release_slot();
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            shared.release_slot();
            return;
        }
        shared.lock_metrics().accepted += 1;
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(read_half) = stream.try_clone() {
            if let Ok(mut conns) = shared.conns.lock() {
                conns.insert(conn_id, read_half);
            }
        }
        let shared2 = Arc::clone(&shared);
        let live2 = Arc::clone(&live);
        let handle =
            std::thread::spawn(move || serve_conn(stream, conn_id, shared2, live2, max_inflight));
        if let Ok(mut hs) = shared.handles.lock() {
            hs.push(handle);
        }
    }
}

/// Runs one connection: the reader loop inline, the writer in a spawned
/// thread, joined by a bounded in-order pending queue.
fn serve_conn(
    mut stream: TcpStream,
    conn_id: u64,
    shared: Arc<NetShared>,
    live: Arc<LiveServer>,
    max_inflight: usize,
) {
    let (ptx, prx) = sync_channel::<Pending>(max_inflight);
    let writer = match stream.try_clone() {
        Ok(w) => {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || write_loop(w, prx, shared)))
        }
        Err(_) => None,
    };
    if writer.is_some() {
        read_loop(&mut stream, conn_id, &ptx, &shared, &live);
    }
    drop(ptx); // writer drains remaining pendings, then exits
    if let Some(w) = writer {
        let _ = w.join();
    }
    let _ = stream.shutdown(Shutdown::Both);
    if let Ok(mut conns) = shared.conns.lock() {
        conns.remove(&conn_id);
    }
    shared.release_slot();
}

/// Mask selecting the wire-id bits of a composed trace id; the upper 16
/// bits carry `conn_id + 1` so ids from different connections (and the
/// live server's own 1-based counter) cannot collide.
pub(crate) const TRACE_WIRE_ID_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;

fn read_loop(
    stream: &mut TcpStream,
    conn_id: u64,
    ptx: &SyncSender<Pending>,
    shared: &NetShared,
    live: &LiveServer,
) {
    // Per-connection trace track: network spans (transfer, deserialize)
    // land here and join the live pipeline's spans by composed id.
    let tr = live.tracer().register(&format!("net-conn-{conn_id}"));
    let mut body = Vec::new();
    loop {
        let transfer = match wire::read_frame_into(stream, &mut body) {
            Ok(Some(t)) => t,
            Ok(None) => return, // peer closed between frames
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Hostile length prefix: answer with a typed BadFrame and
                // close — the byte stream cannot be re-framed.
                shared.lock_metrics().bad_frames += 1;
                let _ = ptx.send(Pending::Reply {
                    id: 0,
                    status: Status::BadFrame,
                    msg: e.to_string(),
                });
                return;
            }
            Err(_) => return, // reset / shutdown / truncation
        };
        let t0 = Instant::now();
        if wire::is_metrics_request(&body) {
            // The framed protocol's `GET /metrics`: reply with an
            // ordinary Ok response carrying the exposition in `msg`.
            match wire::decode_metrics_request(&body) {
                Ok(m) => {
                    shared.lock_metrics().frames += 1;
                    let _ = ptx.send(Pending::Reply {
                        id: m.id,
                        status: Status::Ok,
                        msg: render_exposition(shared, live),
                    });
                    continue;
                }
                Err(WireError(reason)) => {
                    shared.lock_metrics().bad_frames += 1;
                    let _ = ptx.send(Pending::Reply {
                        id: 0,
                        status: Status::BadFrame,
                        msg: reason.to_owned(),
                    });
                    return;
                }
            }
        }
        let req = match wire::decode_request(&body) {
            Ok(r) => r,
            Err(WireError(reason)) => {
                shared.lock_metrics().bad_frames += 1;
                let _ = ptx.send(Pending::Reply {
                    id: 0,
                    status: Status::BadFrame,
                    msg: reason.to_owned(),
                });
                return;
            }
        };
        let id = req.id;
        let target = match route(&req, shared, live) {
            Ok(target) => target,
            Err((status, msg)) => {
                let close = status == Status::BadFrame;
                let _ = ptx.send(Pending::Reply { id, status, msg });
                if close {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = ptx.send(Pending::Reply {
                id,
                status: Status::ShuttingDown,
                msg: "server draining".to_owned(),
            });
            return;
        }
        let deadline = req.deadline();
        let jpeg = req.jpeg.to_vec();
        let deserialize = t0.elapsed();
        shared.lock_metrics().frames += 1;
        let trace_id = ((conn_id + 1) << 48) | (id & TRACE_WIRE_ID_MASK);
        let nbytes = body.len() as u64;
        tr.span(
            trace_id,
            stages::NET_TRANSFER,
            t0.checked_sub(transfer).unwrap_or(t0),
            t0,
            0,
            nbytes,
        );
        tr.span(trace_id, stages::DESERIALIZE, t0, Instant::now(), 0, nbytes);
        let rx = match target {
            Route::Lane(lane) => live.submit_lane_traced(lane, jpeg, deadline, Some(trace_id)),
            Route::Pipeline(name) => {
                live.submit_pipeline_traced(&name, jpeg, deadline, Some(trace_id))
            }
        };
        let wait: Box<dyn FnOnce() -> Result<LiveResult, LiveError> + Send> =
            Box::new(move || rx.recv().unwrap_or(Err(LiveError::Disconnected)));
        if ptx
            .send(Pending::Wait {
                id,
                transfer,
                deserialize,
                wait,
            })
            .is_err()
        {
            return; // writer died (socket error)
        }
    }
}

/// Where a parsed frame dispatches: a tenant lane of the live server, or
/// a registered cascade pipeline (whose executor fans the frame out
/// across lanes itself).
pub(crate) enum Route {
    Lane(usize),
    Pipeline(String),
}

/// Checks a parsed frame against the deployment and resolves where it
/// routes; `Err` is an immediate typed rejection (`BadFrame`
/// additionally closes the connection).
///
/// Routing order: an explicit tenant header (`VRQ2`) wins — a registered
/// pipeline of that name dispatches to its executor, otherwise the name
/// must match a deployed tenant. Without a tenant header the model name
/// routes the same way: the configured `model_name` alias and the empty
/// name land on lane 0, a pipeline name dispatches to its executor, and
/// any other name must match a zoo model (or tenant) the live server
/// hosts. Pipeline requests are ordinary `VRQ2` frames — no new wire
/// version — so any v2 client can drive a cascade by naming it.
pub(crate) fn route(
    req: &RequestFrame<'_>,
    shared: &NetShared,
    live: &LiveServer,
) -> Result<Route, (Status, String)> {
    let route = if !req.tenant.is_empty() {
        if live.has_pipeline(req.tenant) {
            Route::Pipeline(req.tenant.to_owned())
        } else {
            Route::Lane(live.lane_of(req.tenant).ok_or_else(|| {
                (
                    Status::UnknownModel,
                    format!("no tenant named {:?} here", req.tenant),
                )
            })?)
        }
    } else if req.model.is_empty() || req.model == shared.model_name {
        Route::Lane(0)
    } else if live.has_pipeline(req.model) {
        Route::Pipeline(req.model.to_owned())
    } else {
        Route::Lane(live.lane_of(req.model).ok_or_else(|| {
            (
                Status::UnknownModel,
                format!("no model named {:?} here", req.model),
            )
        })?)
    };
    if req.jpeg.is_empty() {
        return Err((Status::BadFrame, "empty payload".to_owned()));
    }
    Ok(route)
}

fn write_loop(mut stream: TcpStream, prx: MpscReceiver<Pending>, shared: Arc<NetShared>) {
    let mut out = Vec::new();
    while let Ok(p) = prx.recv() {
        out.clear();
        match p {
            Pending::Reply { id, status, msg } => {
                encode_response(
                    &mut out,
                    &ResponseFrame {
                        id,
                        status,
                        msg: &msg,
                        batch: 0,
                        stages: StageMicros::default(),
                        output: &[],
                    },
                );
            }
            Pending::Wait {
                id,
                transfer,
                deserialize,
                wait,
            } => match wait() {
                Ok(r) => {
                    {
                        let mut m = shared.lock_metrics();
                        m.breakdown
                            .record(stages::NET_TRANSFER, transfer.as_secs_f64());
                        m.breakdown
                            .record(stages::DESERIALIZE, deserialize.as_secs_f64());
                    }
                    let output = wire::output_bytes(&r.output);
                    encode_response(
                        &mut out,
                        &ResponseFrame {
                            id,
                            status: Status::Ok,
                            msg: "",
                            batch: r.batch_size as u32,
                            stages: StageMicros {
                                transfer_us: transfer.as_micros() as u64,
                                deserialize_us: deserialize.as_micros() as u64,
                                queue_us: r.queue.as_micros() as u64,
                                preproc_us: r.preproc.as_micros() as u64,
                                inference_us: r.inference.as_micros() as u64,
                                total_us: (r.total + transfer + deserialize).as_micros() as u64,
                            },
                            output: &output,
                        },
                    );
                }
                Err(e) => {
                    let status = match e {
                        LiveError::Overloaded => Status::Overloaded,
                        LiveError::DeadlineExceeded => Status::DeadlineExceeded,
                        LiveError::QuotaExceeded => Status::QuotaExceeded,
                        LiveError::SloInfeasible => Status::SloInfeasible,
                        LiveError::Decode(_) => Status::DecodeFailed,
                        LiveError::Model(_) => Status::ModelFailed,
                        LiveError::Disconnected => Status::ShuttingDown,
                    };
                    encode_response(
                        &mut out,
                        &ResponseFrame {
                            id,
                            status,
                            msg: &e.to_string(),
                            batch: 0,
                            stages: StageMicros::default(),
                            output: &[],
                        },
                    );
                }
            },
        }
        if stream.write_all(&out).is_err() {
            return; // client went away; remaining replies have no reader
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientOptions, NetClient};
    use vserve_dnn::models;
    use vserve_workload::synthetic_jpeg;

    fn tiny_live() -> LiveOptions {
        LiveOptions {
            input_side: 32,
            backend_threads: 1,
            max_queue_delay: Duration::from_millis(2),
            ..LiveOptions::default()
        }
    }

    fn bind_tiny(opts: NetOptions) -> NetServer {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        NetServer::bind(model, opts).expect("bind loopback")
    }

    fn spec(side: usize, seed: u64) -> Vec<u8> {
        synthetic_jpeg(&vserve_device::ImageSpec::new(side, side, 0), seed)
    }

    #[test]
    fn serves_one_request_with_net_stages() {
        let server = bind_tiny(NetOptions {
            live: tiny_live(),
            ..NetOptions::default()
        });
        let client = NetClient::connect(server.local_addr(), ClientOptions::default()).unwrap();
        let r = client.infer(&spec(48, 1)).unwrap();
        assert_eq!(r.output.len(), 10);
        let sum: f32 = r.output.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "softmax sum {sum}");
        assert!(r.server_total >= r.inference);
        let m = server.metrics();
        assert_eq!(m.accepted as usize, ClientOptions::default().pool);
        assert_eq!(m.frames, 1);
        assert_eq!(m.bad_frames, 0);
        assert_eq!(m.live.completed, 1);
        // The merged summary now carries the paper's transfer and
        // serialization rows.
        let s = m.summary();
        assert_eq!(s.breakdown.count(stages::NET_TRANSFER), 1);
        assert_eq!(s.breakdown.count(stages::DESERIALIZE), 1);
        assert!(s.rpc_time() >= 0.0);
    }

    #[test]
    fn metrics_scrape_reflects_served_traffic() {
        let server = bind_tiny(NetOptions {
            live: tiny_live(),
            ..NetOptions::default()
        });
        let client = NetClient::connect(server.local_addr(), ClientOptions::default()).unwrap();
        for i in 0..3 {
            client.infer(&spec(48, i)).unwrap();
        }
        let doc = client.scrape().unwrap();
        assert!(doc.contains("vserve_up 1"), "{doc}");
        assert!(doc.contains("vserve_requests_completed_total 3"), "{doc}");
        assert!(doc.contains("# TYPE vserve_latency_seconds summary"));
        assert!(doc.contains("vserve_latency_seconds{quantile=\"0.99\"}"));
        assert!(doc.contains("vserve_stage_seconds_total{stage=\"4-inference\"}"));
        assert!(doc.contains("vserve_stage_seconds_total{stage=\"0-net-transfer\"}"));
        assert!(doc.contains("vserve_preproc_cache_events_total{kind=\"hit\"}"));
        // Effective knob values are scrapeable even with tuning off, and
        // the decision counter reads zero — no controller ran.
        let live = LiveOptions::default();
        assert!(
            doc.contains(&format!("vserve_tune_max_batch {}", live.max_batch)),
            "{doc}"
        );
        assert!(
            doc.contains(&format!(
                "vserve_tune_preproc_workers {}",
                live.preproc_workers
            )),
            "{doc}"
        );
        assert!(doc.contains("vserve_tune_linger_us"), "{doc}");
        assert!(doc.contains("vserve_tune_decisions_total 0"), "{doc}");
        // The in-process renderer serves the same document shape.
        assert!(server
            .exposition()
            .contains("vserve_requests_completed_total 3"));
        // A scrape counts as a parsed frame and leaves the pool usable.
        assert!(server.metrics().frames >= 4);
        assert_eq!(client.infer(&spec(48, 9)).unwrap().output.len(), 10);
    }

    #[test]
    fn malformed_bytes_get_typed_bad_frame_then_close() {
        let server = bind_tiny(NetOptions {
            live: tiny_live(),
            ..NetOptions::default()
        });
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        // A valid length prefix framing garbage: parse fails, typed reply.
        let mut frame = vec![0u8; 0];
        frame.extend_from_slice(&(wire::MIN_BODY_LEN as u32).to_le_bytes());
        frame.extend_from_slice(&[0xAB; wire::MIN_BODY_LEN]);
        raw.write_all(&frame).unwrap();
        let mut body = Vec::new();
        let t = wire::read_frame_into(&mut raw, &mut body).unwrap();
        assert!(t.is_some(), "server must answer, not just close");
        let resp = wire::decode_response(&body).unwrap();
        assert_eq!(resp.status, Status::BadFrame);
        // …and then the connection closes.
        assert!(wire::read_frame_into(&mut raw, &mut body)
            .map(|r| r.is_none())
            .unwrap_or(true));
        // Wait for the connection teardown to be reflected in metrics.
        for _ in 0..100 {
            if server.metrics().bad_frames == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.metrics().bad_frames, 1);
    }

    #[test]
    fn hostile_length_prefix_gets_bad_frame() {
        let server = bind_tiny(NetOptions {
            live: tiny_live(),
            ..NetOptions::default()
        });
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 16]).unwrap();
        let mut body = Vec::new();
        let t = wire::read_frame_into(&mut raw, &mut body).unwrap();
        assert!(t.is_some());
        assert_eq!(
            wire::decode_response(&body).unwrap().status,
            Status::BadFrame
        );
    }

    #[test]
    fn unknown_model_rejected_but_connection_survives() {
        let server = bind_tiny(NetOptions {
            live: tiny_live(),
            model_name: "resnet50".to_owned(),
            ..NetOptions::default()
        });
        let client = NetClient::connect(
            server.local_addr(),
            ClientOptions {
                model: "mobilenet".to_owned(),
                ..ClientOptions::default()
            },
        )
        .unwrap();
        let err = client.infer(&spec(48, 2)).unwrap_err();
        match err {
            crate::client::NetError::Server { status, .. } => {
                assert_eq!(status, Status::UnknownModel)
            }
            other => panic!("expected typed server rejection, got {other}"),
        }
        // Same client, right name: the pooled connections were not torn
        // down by the rejection.
        let client2 = NetClient::connect(
            server.local_addr(),
            ClientOptions {
                model: "resnet50".to_owned(),
                ..ClientOptions::default()
            },
        )
        .unwrap();
        assert_eq!(client2.infer(&spec(48, 2)).unwrap().output.len(), 10);
        drop(client);
    }

    #[test]
    fn connection_cap_backpressures_at_accept() {
        let server = bind_tiny(NetOptions {
            max_conns: 1,
            live: tiny_live(),
            ..NetOptions::default()
        });
        let c1 = NetClient::connect(
            server.local_addr(),
            ClientOptions {
                pool: 1,
                ..ClientOptions::default()
            },
        )
        .unwrap();
        assert_eq!(c1.infer(&spec(48, 3)).unwrap().output.len(), 10);
        // A second connect succeeds at the TCP level (kernel backlog) but
        // is not *served* until the first connection closes.
        let second = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(server.metrics().accepted, 1, "cap must hold accepts");
        drop(c1);
        // Slot freed: the queued connection gets served.
        for _ in 0..100 {
            if server.metrics().accepted == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.metrics().accepted, 2);
        drop(second);
    }

    #[test]
    fn drop_while_client_connected_is_clean() {
        let server = bind_tiny(NetOptions {
            live: tiny_live(),
            ..NetOptions::default()
        });
        let addr = server.local_addr();
        let client = NetClient::connect(addr, ClientOptions::default()).unwrap();
        let _ = client.infer(&spec(48, 4)).unwrap();
        drop(server); // must drain and join, not hang
                      // The socket is gone; any further call fails cleanly (any error
                      // variant is acceptable — what matters is no hang, no panic).
        let _ = client.infer(&spec(48, 5)).unwrap_err();
    }
}
