//! Per-connection state machines for the evented front-end.
//!
//! Each accepted socket becomes a [`Conn`] driven entirely by readiness
//! callbacks from the event loop in `server.rs` — no thread ever blocks
//! on a connection. The state machine is:
//!
//! ```text
//!             readable                    EOF / bad frame / drain
//!   ┌──────┐ ─────────► frames submitted ───────────────────────┐
//!   │ Open │ ◄───────── replies flushed                         ▼
//!   └──────┘  writable                                   ┌──────────┐
//!      ▲  read paused while inflight ≥ cap               │ Draining │
//!      │  or write buffer ≥ high-water                   └──────────┘
//!      │                                                       │
//!      └─── hard error (reset / hangup) ──► closed ◄── in-flight
//!                                                      resolved + flushed
//! ```
//!
//! * **Open** — frames are assembled incrementally ([`FrameAssembler`]),
//!   decoded, and submitted to the live server with a completion hook;
//!   replies are resolved *in request order* and flushed greedily, with
//!   the unflushed remainder buffered and gated on write readiness.
//! * **Draining** — no more reads; in-flight requests finish, their
//!   replies flush, then the socket closes. Entered on client half-close
//!   (EOF), on a malformed frame (after the typed `BadFrame` reply), and
//!   on server-initiated drain ([`NetServer::drain_connections`] /
//!   shutdown).
//!
//! Flow control is two-sided: the connection stops *reading* (and
//! therefore stops admitting frames) while it has
//! [`max_inflight_per_conn`](crate::NetOptions::max_inflight_per_conn)
//! requests outstanding or more than
//! [`write_hwm_bytes`](crate::NetOptions::write_hwm_bytes) of unflushed
//! replies — a stalled reader eventually stalls its own sender via TCP
//! backpressure instead of growing server memory.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vserve_server::live::{LiveError, LiveResult, LiveServer, ReplyReceiver};
use vserve_server::stages;
use vserve_trace::TraceHandle;

use crate::poller::WakeHandle;
use crate::server::{render_exposition, NetShared, TRACE_WIRE_ID_MASK};
use crate::wire::{self, FrameAssembler, ResponseFrame, StageMicros, Status, WireError};

/// Completion tokens pushed by reply hooks: `(conn_token, slot_seq)`.
pub(crate) type Completions = Arc<Mutex<Vec<(u64, u64)>>>;

/// Everything a connection needs from the event loop's environment.
pub(crate) struct Ctx<'a> {
    pub shared: &'a NetShared,
    pub live: &'a LiveServer,
    pub tr: &'a TraceHandle,
    pub completions: &'a Completions,
    pub wake: &'a WakeHandle,
    pub max_inflight: usize,
    pub write_hwm: usize,
}

/// Lifecycle phase; `Closed` is expressed by the loop dropping the conn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    Open,
    Draining,
}

/// One in-order response slot. Requests enter as `Waiting`; immediate
/// replies (scrape, typed rejections) enter pre-encoded as `Ready`.
enum Slot {
    Waiting {
        seq: u64,
        id: u64,
        transfer: Duration,
        deserialize: Duration,
        rx: ReplyReceiver,
        done: bool,
    },
    Ready {
        buf: Vec<u8>,
    },
}

/// What the event loop should do with the connection after a callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Keep the connection registered.
    Keep,
    /// Fully served (or errored): unregister, close, free the slot.
    Close,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Slab token (generation | index) completions and poll events carry.
    pub token: u64,
    /// Monotonic connection id composed into trace ids.
    pub conn_id: u64,
    pub state: ConnState,
    asm: FrameAssembler,
    /// Unflushed encoded reply bytes; `out_pos` is the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    slots: VecDeque<Slot>,
    next_seq: u64,
    inflight: usize,
    /// Set once reads stop forever (EOF, bad frame, drain).
    read_closed: bool,
    /// Interest last applied to the poller, `(read, write)`.
    pub applied: (bool, bool),
    /// Lifetime high-water mark of the write buffer, for the gauge.
    pub out_hwm: usize,
}

impl Conn {
    pub fn new(stream: TcpStream, conn_id: u64, token: u64) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            token,
            conn_id,
            state: ConnState::Open,
            asm: FrameAssembler::new(),
            out: Vec::new(),
            out_pos: 0,
            slots: VecDeque::new(),
            next_seq: 0,
            inflight: 0,
            read_closed: false,
            applied: (true, false),
            out_hwm: 0,
        })
    }

    fn out_len(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Reading is paused while flow control binds (in-flight cap hit, or
    /// the write buffer past its high-water mark).
    fn read_paused(&self, ctx: &Ctx<'_>) -> bool {
        self.inflight >= ctx.max_inflight || self.out_len() >= ctx.write_hwm
    }

    /// The readiness interest the poller should watch for this conn.
    pub fn desired_interest(&self, ctx: &Ctx<'_>) -> (bool, bool) {
        let read = self.state == ConnState::Open && !self.read_closed && !self.read_paused(ctx);
        let write = self.out_len() > 0;
        (read, write)
    }

    /// Server-initiated drain: stop reading, finish in-flight, flush,
    /// close.
    pub fn begin_drain(&mut self) {
        self.read_closed = true;
        self.state = ConnState::Draining;
    }

    /// Handles read readiness: drain the socket nonblockingly, assemble
    /// frames, admit as many as flow control allows. Returns `Close` only
    /// on a hard error (reset); EOF and protocol errors transition to
    /// `Draining` so buffered replies still go out.
    pub fn on_readable(&mut self, ctx: &Ctx<'_>) -> Verdict {
        if self.read_closed {
            return Verdict::Keep;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // Admit buffered frames first so the pause check below sees
            // the true in-flight count.
            self.admit_frames(ctx);
            if self.read_closed || self.read_paused(ctx) {
                return Verdict::Keep;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Half-close: the peer is done sending. Finish what
                    // is in flight and reply-flush before closing.
                    self.begin_drain();
                    return Verdict::Keep;
                }
                Ok(n) => {
                    if let Err(WireError(reason)) = self.asm.extend(&chunk[..n]) {
                        self.reject_bad_frame(ctx, reason);
                        return Verdict::Keep;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Verdict::Keep,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Verdict::Close,
            }
        }
    }

    /// Pulls complete frames out of the assembler while flow control
    /// admits them.
    fn admit_frames(&mut self, ctx: &Ctx<'_>) {
        while !self.read_closed && !self.read_paused(ctx) {
            match self.asm.next_frame() {
                Ok(Some((body, transfer))) => {
                    // `process_frame` needs `&mut self` while `body`
                    // borrows `self.asm`, so the body is copied out — one
                    // copy per request, mirroring the threaded reader's
                    // per-frame buffer.
                    let body = body.to_vec();
                    self.process_frame(&body, transfer, ctx);
                }
                Ok(None) => break,
                Err(WireError(reason)) => {
                    self.reject_bad_frame(ctx, reason);
                    break;
                }
            }
        }
    }

    /// A malformed frame: typed `BadFrame` reply, then drain — the byte
    /// stream can no longer be re-framed.
    fn reject_bad_frame(&mut self, ctx: &Ctx<'_>, reason: &str) {
        ctx.shared.lock_metrics().bad_frames += 1;
        self.push_ready(0, Status::BadFrame, reason);
        self.begin_drain();
    }

    /// Encodes an immediate reply into an in-order `Ready` slot (or
    /// straight into the write buffer when nothing is ahead of it).
    fn push_ready(&mut self, id: u64, status: Status, msg: &str) {
        let frame = ResponseFrame {
            id,
            status,
            msg,
            batch: 0,
            stages: StageMicros::default(),
            output: &[],
        };
        if self.slots.is_empty() {
            wire::encode_response(&mut self.out, &frame);
            self.out_hwm = self.out_hwm.max(self.out_len());
        } else {
            let mut buf = Vec::new();
            wire::encode_response(&mut buf, &frame);
            self.slots.push_back(Slot::Ready { buf });
        }
    }

    /// Decodes and dispatches one complete frame body.
    fn process_frame(&mut self, body: &[u8], transfer: Duration, ctx: &Ctx<'_>) {
        let t0 = Instant::now();
        if wire::is_metrics_request(body) {
            match wire::decode_metrics_request(body) {
                Ok(m) => {
                    ctx.shared.lock_metrics().frames += 1;
                    let doc = render_exposition(ctx.shared, ctx.live);
                    self.push_ready(m.id, Status::Ok, &doc);
                }
                Err(WireError(reason)) => self.reject_bad_frame(ctx, reason),
            }
            return;
        }
        let req = match wire::decode_request(body) {
            Ok(r) => r,
            Err(WireError(reason)) => {
                self.reject_bad_frame(ctx, reason);
                return;
            }
        };
        let id = req.id;
        let target = match crate::server::route(&req, ctx.shared, ctx.live) {
            Ok(target) => target,
            Err((status, msg)) => {
                let close = status == Status::BadFrame;
                self.push_ready(id, status, &msg);
                if close {
                    self.begin_drain();
                }
                return;
            }
        };
        let deadline = req.deadline();
        let jpeg = req.jpeg.to_vec();
        let deserialize = t0.elapsed();
        ctx.shared.lock_metrics().frames += 1;
        let trace_id = ((self.conn_id + 1) << 48) | (id & TRACE_WIRE_ID_MASK);
        let nbytes = body.len() as u64;
        ctx.tr.span(
            trace_id,
            stages::NET_TRANSFER,
            t0.checked_sub(transfer).unwrap_or(t0),
            t0,
            0,
            nbytes,
        );
        ctx.tr
            .span(trace_id, stages::DESERIALIZE, t0, Instant::now(), 0, nbytes);
        let seq = self.next_seq;
        self.next_seq += 1;
        let token = self.token;
        let completions = Arc::clone(ctx.completions);
        let wake = ctx.wake.clone();
        let hook: Box<dyn FnOnce() + Send> = Box::new(move || {
            completions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((token, seq));
            wake.wake();
        });
        let rx = match target {
            crate::server::Route::Lane(lane) => {
                ctx.live
                    .submit_lane_hooked(lane, jpeg, deadline, Some(trace_id), hook)
            }
            crate::server::Route::Pipeline(name) => {
                ctx.live
                    .submit_pipeline_hooked(&name, jpeg, deadline, Some(trace_id), hook)
            }
        };
        self.slots.push_back(Slot::Waiting {
            seq,
            id,
            transfer,
            deserialize,
            rx,
            done: false,
        });
        self.inflight += 1;
    }

    /// Marks the slot carrying `seq` resolvable. Out-of-order completions
    /// are fine; replies still flush in request order.
    pub fn on_completion(&mut self, seq: u64) {
        for s in &mut self.slots {
            if let Slot::Waiting {
                seq: s_seq, done, ..
            } = s
            {
                if *s_seq == seq {
                    *done = true;
                    return;
                }
            }
        }
    }

    /// Resolves completed head slots into the write buffer, then writes
    /// as much as the socket accepts. Returns `Close` once a draining
    /// connection has fully flushed (or on a write error).
    pub fn flush(&mut self, ctx: &Ctx<'_>) -> Verdict {
        // Encode every resolved slot at the head, preserving order.
        loop {
            match self.slots.front() {
                Some(Slot::Ready { .. }) => {
                    if let Some(Slot::Ready { buf }) = self.slots.pop_front() {
                        self.out.extend_from_slice(&buf);
                    }
                }
                Some(Slot::Waiting { done: true, .. }) => {
                    if let Some(Slot::Waiting {
                        id,
                        transfer,
                        deserialize,
                        rx,
                        ..
                    }) = self.slots.pop_front()
                    {
                        self.inflight -= 1;
                        // The hook fired after the reply was sent, so a
                        // filled channel is guaranteed for replied
                        // requests; an empty one means the slot was
                        // dropped unreplied (live server shutdown).
                        let result = rx.try_recv().unwrap_or(Err(LiveError::Disconnected));
                        encode_result(&mut self.out, ctx.shared, id, transfer, deserialize, result);
                    }
                }
                _ => break,
            }
        }
        self.out_hwm = self.out_hwm.max(self.out_len());
        // Greedy write of whatever is buffered.
        while self.out_len() > 0 {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Verdict::Close,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Verdict::Close,
            }
        }
        if self.out_pos > 0 && self.out_len() == 0 {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 64 * 1024 {
            // Compact a large flushed prefix so the buffer does not grow
            // without bound under sustained partial writes.
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        if self.state == ConnState::Draining && self.slots.is_empty() && self.out_len() == 0 {
            return Verdict::Close;
        }
        Verdict::Keep
    }
}

/// Encodes a resolved live-server reply, recording the network-stage
/// breakdown rows for completed requests (matching the threaded writer:
/// one observation per *completed* request).
fn encode_result(
    out: &mut Vec<u8>,
    shared: &NetShared,
    id: u64,
    transfer: Duration,
    deserialize: Duration,
    result: Result<LiveResult, LiveError>,
) {
    match result {
        Ok(r) => {
            {
                let mut m = shared.lock_metrics();
                m.breakdown
                    .record(stages::NET_TRANSFER, transfer.as_secs_f64());
                m.breakdown
                    .record(stages::DESERIALIZE, deserialize.as_secs_f64());
            }
            let output = wire::output_bytes(&r.output);
            wire::encode_response(
                out,
                &ResponseFrame {
                    id,
                    status: Status::Ok,
                    msg: "",
                    batch: r.batch_size as u32,
                    stages: StageMicros {
                        transfer_us: transfer.as_micros() as u64,
                        deserialize_us: deserialize.as_micros() as u64,
                        queue_us: r.queue.as_micros() as u64,
                        preproc_us: r.preproc.as_micros() as u64,
                        inference_us: r.inference.as_micros() as u64,
                        total_us: (r.total + transfer + deserialize).as_micros() as u64,
                    },
                    output: &output,
                },
            );
        }
        Err(e) => {
            let status = match e {
                LiveError::Overloaded => Status::Overloaded,
                LiveError::DeadlineExceeded => Status::DeadlineExceeded,
                LiveError::QuotaExceeded => Status::QuotaExceeded,
                LiveError::SloInfeasible => Status::SloInfeasible,
                LiveError::Decode(_) => Status::DecodeFailed,
                LiveError::Model(_) => Status::ModelFailed,
                LiveError::Disconnected => Status::ShuttingDown,
            };
            wire::encode_response(
                out,
                &ResponseFrame {
                    id,
                    status,
                    msg: &e.to_string(),
                    batch: 0,
                    stages: StageMicros::default(),
                    output: &[],
                },
            );
        }
    }
}
