//! Blocking client with connection pooling and in-flight pipelining.
//!
//! A [`NetClient`] opens [`ClientOptions::pool`] connections up front and
//! round-robins requests across them. Each connection has one reader
//! thread that routes response frames to waiting callers **by request
//! id**, so any number of requests can be in flight on one socket at a
//! time — from many caller threads sharing the client, or from one thread
//! using [`NetClient::submit`] to fire before waiting (the open-loop load
//! generator's mode).
//!
//! Per-request deadlines ([`ClientOptions::deadline`] or
//! [`NetClient::infer_with_deadline`]) are encoded into the request frame
//! and enforced *server-side*: a late request comes back as a typed
//! [`Status::DeadlineExceeded`] frame rather than a client-side timeout,
//! so the server sheds the work instead of computing an answer nobody is
//! waiting for.
//!
//! A connection whose reader observes EOF or a transport error is marked
//! dead: its in-flight callers fail with [`NetError::Disconnected`], and
//! the next submission that lands on the slot transparently re-dials the
//! server — so a server-side graceful drain
//! ([`NetServer::drain_connections`](crate::NetServer::drain_connections))
//! costs clients one reconnect, not an error. Only when re-dialing also
//! fails (the server is really gone) does the slot stay dead and the
//! submission fall through to the next one. The client never panics on a
//! lost server.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::wire::{self, MetricsRequest, RequestFrame, StageMicros, Status};
use crate::{env_usize, DEFAULT_POOL, NET_POOL_ENV};

/// Configuration for a [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Connections opened to the server. Defaults to [`NET_POOL_ENV`]
    /// or 2.
    pub pool: usize,
    /// Default per-request deadline encoded into every frame (overridable
    /// per call); `None` sends no deadline.
    pub deadline: Option<Duration>,
    /// Model name sent in every frame; empty matches the server's
    /// deployed model.
    pub model: String,
    /// Tenant name sent in every frame. Empty (the default) keeps the
    /// client on the v1 wire protocol; non-empty upgrades frames to
    /// `VRQ2` and routes to that tenant's lane on multi-tenant servers.
    pub tenant: String,
    /// Target input side sent in every frame; 0 defers to the server.
    pub side: u16,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            pool: env_usize(NET_POOL_ENV, DEFAULT_POOL),
            deadline: None,
            model: String::new(),
            tenant: String::new(),
            side: 0,
        }
    }
}

/// One completed remote inference with both server-measured stage times
/// (from the response frame) and client-measured wire times.
#[derive(Debug, Clone)]
pub struct NetResult {
    /// Model output (flat probabilities), bit-identical to what the
    /// in-process `LiveServer` returns for the same payload.
    pub output: Vec<f32>,
    /// Inference batch size the request rode in.
    pub batch_size: usize,
    /// Server-measured: reading this request's bytes off the socket.
    pub transfer: Duration,
    /// Server-measured: parsing and validating the frame.
    pub deserialize: Duration,
    /// Server-measured: ingress + batcher queueing.
    pub queue: Duration,
    /// Server-measured: JPEG decode + resize + normalize.
    pub preproc: Duration,
    /// Server-measured: per-item share of the batched forward pass.
    pub inference: Duration,
    /// Server-measured: frame receipt → response ready.
    pub server_total: Duration,
    /// Client-measured: request frame encoding time.
    pub serialize: Duration,
    /// Client-measured: write start → response decoded (the full RPC).
    pub round_trip: Duration,
}

/// Errors returned by [`NetClient`] calls.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure on the socket.
    Io(std::io::Error),
    /// The server answered with a non-`Ok` typed status frame.
    Server {
        /// The typed status ([`Status::Overloaded`],
        /// [`Status::DeadlineExceeded`], …).
        status: Status,
        /// The server's diagnostic message.
        msg: String,
    },
    /// The connection died (or the server shut down) before the response
    /// arrived.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Server { status, msg } => write!(f, "server answered {status}: {msg}"),
            NetError::Disconnected => write!(f, "connection lost before response"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Response routing table: request id → waiting caller. `None` once the
/// connection is dead.
type PendingMap = Option<HashMap<u64, SyncSender<Result<NetResult, NetError>>>>;

struct Conn {
    write: Mutex<TcpStream>,
    pending: Arc<Mutex<PendingMap>>,
    /// Clone used to shut the socket down at drop (wakes the reader).
    stream: TcpStream,
    reader: Mutex<Option<JoinHandle<()>>>,
}

/// A pooled, pipelining client for a [`NetServer`](crate::NetServer).
///
/// Each pool slot holds the slot's *current* connection; a slot whose
/// connection died is re-dialed on the next submission that reaches it
/// (reconnect-on-drain).
pub struct NetClient {
    conns: Vec<Mutex<Arc<Conn>>>,
    next_conn: AtomicUsize,
    next_id: AtomicU64,
    opts: ClientOptions,
    addr: SocketAddr,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("pool", &self.conns.len())
            .finish()
    }
}

/// An in-flight request; [`wait`](Self::wait) blocks for its response.
pub struct PendingReply {
    rx: Receiver<Result<NetResult, NetError>>,
    sent: Instant,
    serialize: Duration,
}

impl PendingReply {
    /// Blocks until the response frame arrives (or the connection dies)
    /// and stamps the client-side timings into the result.
    pub fn wait(self) -> Result<NetResult, NetError> {
        let mut r = self.rx.recv().unwrap_or(Err(NetError::Disconnected))?;
        r.round_trip = self.sent.elapsed();
        r.serialize = self.serialize;
        Ok(r)
    }
}

impl NetClient {
    /// Opens [`ClientOptions::pool`] connections to `addr` and starts
    /// their reader threads.
    ///
    /// # Errors
    ///
    /// Returns the first connect error if any connection fails.
    pub fn connect(addr: SocketAddr, opts: ClientOptions) -> std::io::Result<NetClient> {
        let mut conns = Vec::with_capacity(opts.pool.max(1));
        for _ in 0..opts.pool.max(1) {
            conns.push(Mutex::new(Arc::new(Conn::open(addr)?)));
        }
        Ok(NetClient {
            conns,
            next_conn: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            opts,
            addr,
        })
    }

    /// Fetches the server's plain-text metrics exposition over a `VRM1`
    /// scrape frame. Uses a dedicated short-lived connection so a scrape
    /// never competes with pipelined inference traffic for frame order.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`NetError::Io`] /
    /// [`NetError::Disconnected`]; a typed server rejection as
    /// [`NetError::Server`].
    pub fn scrape(&self) -> Result<String, NetError> {
        scrape(self.addr)
    }

    /// Sends `jpeg` and blocks for the classification result.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] carries any typed rejection (overload,
    /// deadline, decode failure); transport problems surface as
    /// [`NetError::Io`] / [`NetError::Disconnected`].
    pub fn infer(&self, jpeg: &[u8]) -> Result<NetResult, NetError> {
        self.submit_with_deadline(jpeg, self.opts.deadline)?.wait()
    }

    /// Like [`infer`](Self::infer) with an explicit deadline overriding
    /// [`ClientOptions::deadline`].
    pub fn infer_with_deadline(
        &self,
        jpeg: &[u8],
        deadline: Option<Duration>,
    ) -> Result<NetResult, NetError> {
        self.submit_with_deadline(jpeg, deadline)?.wait()
    }

    /// Fires a request without waiting — the pipelining primitive. The
    /// returned [`PendingReply`] resolves when the response frame arrives;
    /// any number may be outstanding per connection.
    pub fn submit(&self, jpeg: &[u8]) -> Result<PendingReply, NetError> {
        self.submit_with_deadline(jpeg, self.opts.deadline)
    }

    /// [`submit`](Self::submit) with an explicit per-request deadline.
    pub fn submit_with_deadline(
        &self,
        jpeg: &[u8],
        deadline: Option<Duration>,
    ) -> Result<PendingReply, NetError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline_us = deadline
            .map(|d| d.as_micros().min(u32::MAX as u128) as u32)
            .unwrap_or(0);
        let t0 = Instant::now();
        let mut frame = Vec::with_capacity(jpeg.len() + 64);
        wire::encode_request(
            &mut frame,
            &RequestFrame {
                id,
                side: self.opts.side,
                deadline_us,
                model: &self.opts.model,
                tenant: &self.opts.tenant,
                jpeg,
            },
        );
        let serialize = t0.elapsed();

        // Round-robin over the pool; a slot whose connection died (e.g.
        // the server drained it) is transparently re-dialed, and only
        // skipped when the re-dial also fails.
        let start = self.next_conn.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.conns.len() {
            let slot = &self.conns[(start + i) % self.conns.len()];
            let conn = {
                let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
                if slot.dead() {
                    match Conn::open(self.addr) {
                        Ok(fresh) => *slot = Arc::new(fresh),
                        Err(_) => continue, // server really gone; next slot
                    }
                }
                Arc::clone(&slot)
            };
            let (tx, rx) = sync_channel(1);
            {
                let mut pending = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
                match pending.as_mut() {
                    Some(map) => {
                        map.insert(id, tx);
                    }
                    None => continue, // reader saw EOF: connection is dead
                }
            }
            let sent = Instant::now();
            let write = {
                let mut w = conn.write.lock().unwrap_or_else(|e| e.into_inner());
                w.write_all(&frame)
            };
            if let Err(e) = write {
                // Undo the registration; the reader may also be failing
                // everything right now, which is fine.
                if let Ok(mut pending) = conn.pending.lock() {
                    if let Some(map) = pending.as_mut() {
                        map.remove(&id);
                    }
                }
                return Err(NetError::Io(e));
            }
            return Ok(PendingReply {
                rx,
                sent,
                serialize,
            });
        }
        Err(NetError::Disconnected)
    }

    /// Number of pooled connections currently alive. Dead slots are
    /// counted as dead until a submission re-dials them; this does not
    /// reconnect.
    pub fn live_conns(&self) -> usize {
        self.conns
            .iter()
            .filter(|s| !s.lock().unwrap_or_else(|e| e.into_inner()).dead())
            .count()
    }
}

/// One-shot metrics scrape: connect, send a `VRM1` frame, read the reply.
///
/// This is the standalone form of [`NetClient::scrape`] for tools that
/// poll a server without holding a connection pool (the framed protocol's
/// `curl host/metrics`).
///
/// # Errors
///
/// Transport failures surface as [`NetError::Io`] /
/// [`NetError::Disconnected`]; a typed server rejection as
/// [`NetError::Server`].
pub fn scrape(addr: SocketAddr) -> Result<String, NetError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut frame = Vec::new();
    wire::encode_metrics_request(&mut frame, &MetricsRequest { id: 1, flags: 0 });
    stream.write_all(&frame)?;
    let mut body = Vec::new();
    match wire::read_frame_into(&mut stream, &mut body) {
        Ok(Some(_)) => {}
        Ok(None) => return Err(NetError::Disconnected),
        Err(e) => return Err(NetError::Io(e)),
    }
    let resp = wire::decode_response(&body).map_err(|_| NetError::Disconnected)?;
    match resp.status {
        Status::Ok => Ok(resp.msg.to_owned()),
        status => Err(NetError::Server {
            status,
            msg: resp.msg.to_owned(),
        }),
    }
}

impl Drop for Conn {
    // Runs when the last handle goes — client drop, or a replaced slot's
    // old connection once in-flight borrowers finish with it.
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.lock().ok().and_then(|mut r| r.take()) {
            let _ = h.join();
        }
    }
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let write = stream.try_clone()?;
        let read = stream.try_clone()?;
        let pending: Arc<Mutex<PendingMap>> = Arc::new(Mutex::new(Some(HashMap::new())));
        let reader = {
            let pending = Arc::clone(&pending);
            std::thread::spawn(move || read_responses(read, pending))
        };
        Ok(Conn {
            write: Mutex::new(write),
            pending,
            stream,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// True once the reader saw EOF or a transport error.
    fn dead(&self) -> bool {
        self.pending.lock().map(|p| p.is_none()).unwrap_or(true)
    }
}

/// Reader loop: routes each response frame to its registered caller by
/// id; on EOF or transport error, kills the connection and fails every
/// waiter with [`NetError::Disconnected`].
fn read_responses(mut stream: TcpStream, pending: Arc<Mutex<PendingMap>>) {
    let mut body = Vec::new();
    loop {
        match wire::read_frame_into(&mut stream, &mut body) {
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => break,
        }
        let resp = match wire::decode_response(&body) {
            Ok(r) => r,
            Err(_) => break, // server-side framing bug; give up on the conn
        };
        let result = match resp.status {
            Status::Ok => {
                let StageMicros {
                    transfer_us,
                    deserialize_us,
                    queue_us,
                    preproc_us,
                    inference_us,
                    total_us,
                } = resp.stages;
                Ok(NetResult {
                    output: resp.output_vec(),
                    batch_size: resp.batch as usize,
                    transfer: Duration::from_micros(transfer_us),
                    deserialize: Duration::from_micros(deserialize_us),
                    queue: Duration::from_micros(queue_us),
                    preproc: Duration::from_micros(preproc_us),
                    inference: Duration::from_micros(inference_us),
                    server_total: Duration::from_micros(total_us),
                    serialize: Duration::ZERO,  // stamped by PendingReply
                    round_trip: Duration::ZERO, // stamped by PendingReply
                })
            }
            status => Err(NetError::Server {
                status,
                msg: resp.msg.to_owned(),
            }),
        };
        let waiter = {
            let mut p = pending.lock().unwrap_or_else(|e| e.into_inner());
            p.as_mut().and_then(|map| map.remove(&resp.id))
        };
        match waiter {
            Some(tx) => {
                let _ = tx.send(result);
            }
            None => {
                // An unsolicited id — e.g. the server's id-0 BadFrame
                // notice before closing. Nothing to route it to.
            }
        }
    }
    // Mark dead and fail everything still in flight.
    let waiters = {
        let mut p = pending.lock().unwrap_or_else(|e| e.into_inner());
        p.take()
    };
    if let Some(map) = waiters {
        for (_, tx) in map {
            let _ = tx.send(Err(NetError::Disconnected));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetOptions, NetServer};
    use vserve_dnn::{models, Model};
    use vserve_server::live::LiveOptions;
    use vserve_workload::synthetic_jpeg;

    fn bind_tiny() -> NetServer {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        NetServer::bind(
            model,
            NetOptions {
                live: LiveOptions {
                    input_side: 32,
                    backend_threads: 1,
                    ..LiveOptions::default()
                },
                ..NetOptions::default()
            },
        )
        .expect("bind loopback")
    }

    fn spec(side: usize, seed: u64) -> Vec<u8> {
        synthetic_jpeg(&vserve_device::ImageSpec::new(side, side, 0), seed)
    }

    #[test]
    fn pipelined_submissions_resolve_by_id() {
        let server = bind_tiny();
        let client = NetClient::connect(
            server.local_addr(),
            ClientOptions {
                pool: 1, // force every request onto ONE socket
                ..ClientOptions::default()
            },
        )
        .unwrap();
        // Fire 10 requests before waiting on any: true pipelining.
        let payloads: Vec<_> = (0..10).map(|i| spec(48, i)).collect();
        let pending: Vec<_> = payloads.iter().map(|p| client.submit(p).unwrap()).collect();
        let results: Vec<_> = pending.into_iter().map(|p| p.wait().unwrap()).collect();
        assert_eq!(results.len(), 10);
        for r in &results {
            assert_eq!(r.output.len(), 10);
            assert!(r.round_trip >= r.inference);
        }
        // Distinct payloads must produce the answers of *their own*
        // request, not a shifted neighbor's: results differ pairwise.
        assert!(
            results.windows(2).any(|w| w[0].output != w[1].output),
            "distinct payloads should give distinct outputs"
        );
        assert_eq!(server.metrics().live.completed, 10);
    }

    #[test]
    fn pool_spreads_connections() {
        let server = bind_tiny();
        let client = NetClient::connect(
            server.local_addr(),
            ClientOptions {
                pool: 3,
                ..ClientOptions::default()
            },
        )
        .unwrap();
        assert_eq!(client.live_conns(), 3);
        // TCP connects complete in the kernel backlog before the acceptor
        // thread runs; poll briefly for the accept counter to catch up.
        for _ in 0..200 {
            if server.metrics().accepted == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.metrics().accepted, 3);
        for i in 0..6 {
            assert_eq!(client.infer(&spec(48, i)).unwrap().output.len(), 10);
        }
    }

    #[test]
    fn deadline_propagates_into_typed_shed() {
        let server = bind_tiny();
        let client = NetClient::connect(server.local_addr(), ClientOptions::default()).unwrap();
        let err = client
            .infer_with_deadline(&spec(48, 1), Some(Duration::from_micros(1)))
            .unwrap_err();
        match err {
            NetError::Server { status, .. } => {
                assert_eq!(status, Status::DeadlineExceeded);
            }
            other => panic!("expected typed deadline shed, got {other}"),
        }
        // The connection survives the shed.
        assert_eq!(client.infer(&spec(48, 2)).unwrap().output.len(), 10);
        let m = server.metrics();
        assert_eq!(m.live.expired, 1);
        assert_eq!(m.live.completed, 1);
    }

    #[test]
    fn server_gone_fails_in_flight_with_disconnected() {
        let server = bind_tiny();
        let client = NetClient::connect(
            server.local_addr(),
            ClientOptions {
                pool: 1,
                ..ClientOptions::default()
            },
        )
        .unwrap();
        let _ = client.infer(&spec(48, 1)).unwrap();
        drop(server);
        // Wait for the reader to notice the close.
        for _ in 0..200 {
            if client.live_conns() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(client.live_conns(), 0);
        match client.infer(&spec(48, 2)).unwrap_err() {
            NetError::Disconnected | NetError::Io(_) => {}
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn reconnects_transparently_after_server_drain() {
        let server = bind_tiny();
        let client = NetClient::connect(
            server.local_addr(),
            ClientOptions {
                pool: 1,
                ..ClientOptions::default()
            },
        )
        .unwrap();
        assert_eq!(client.infer(&spec(48, 1)).unwrap().output.len(), 10);

        // The server gracefully drains its current connections (e.g. a
        // rolling restart) but keeps accepting new ones.
        server.drain_connections();
        for _ in 0..400 {
            if client.live_conns() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(client.live_conns(), 0, "drain should close the pooled conn");

        // The next request transparently re-dials: no error surfaces.
        assert_eq!(client.infer(&spec(48, 2)).unwrap().output.len(), 10);
        assert_eq!(client.live_conns(), 1);
        let m = server.metrics();
        assert!(m.accepted >= 2, "reconnect must open a fresh conn");
        assert_eq!(m.live.completed, 2);
    }
}
