//! A minimal shard/router tier: N [`NetServer`] shards behind one
//! client-side router.
//!
//! The paper's broker axis measures what request *distribution*
//! infrastructure costs on top of serving. This module reproduces that
//! axis in its cheapest honest form — client-side routing over the same
//! pooled, pipelining [`NetClient`] transport the single-server path
//! uses, so the measured delta between 1 shard and N shards is the
//! routing overhead itself, not an artifact of a different wire path.
//!
//! Two placement policies:
//!
//! * [`ShardPolicy::LeastLoaded`] — each request goes to the shard with
//!   the fewest router-observed in-flight requests (ties broken
//!   round-robin). In-flight counts decrement when the reply is waited
//!   on *or* dropped, so abandoned requests cannot pin a shard "busy".
//! * [`ShardPolicy::ConsistentHash`] — the request key (an FNV-1a hash
//!   of the payload) picks the shard, so identical payloads always land
//!   on the same shard and its preproc cache — the cache-affinity
//!   deployment.
//!
//! Every shard runs the full [`NetServer`] stack (evented or threaded
//! per [`NetOptions::evented`]) around a clone of the same [`Model`], so
//! outputs are bit-identical regardless of which shard serves a request
//! — the loopback E2E suite pins this through the router tier.
//!
//! The simulator's counterpart is `ServerConfig::shards` in
//! `vserve-server`, which scales the sim's dispatch/preproc capacity and
//! charges the extra router hop, keeping scaling curves to 10k+
//! simulated clients replayable against this implementation.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vserve_dnn::Model;

use crate::client::{ClientOptions, NetClient, NetError, NetResult, PendingReply};
use crate::server::{NetMetrics, NetOptions, NetServer};
use crate::{env_usize, DEFAULT_SHARDS, NET_SHARDS_ENV};

/// How the router places a request on a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Fewest router-observed in-flight requests wins (ties round-robin).
    LeastLoaded,
    /// FNV-1a over the payload bytes picks the shard: identical payloads
    /// share a shard (and its preproc cache).
    ConsistentHash,
}

/// Configuration for [`Router::bind`].
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Number of server shards. Defaults to [`NET_SHARDS_ENV`] or 2;
    /// clamped to at least 1.
    pub shards: usize,
    /// Placement policy for [`RouterClient`]s created via
    /// [`Router::client`].
    pub policy: ShardPolicy,
    /// Template options every shard is bound with. The address must
    /// carry port 0 (each shard resolves its own ephemeral port);
    /// `model_name` and the embedded live options apply to all shards.
    pub net: NetOptions,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            shards: env_usize(NET_SHARDS_ENV, DEFAULT_SHARDS),
            policy: ShardPolicy::LeastLoaded,
            net: NetOptions::default(),
        }
    }
}

/// N serving shards sharing one model definition. Dropping the router
/// drains and shuts down every shard.
pub struct Router {
    shards: Vec<NetServer>,
    policy: ShardPolicy,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Router {
    /// Binds `opts.shards` independent [`NetServer`]s, each around a
    /// clone of `model` (clones share weights, so shard outputs are
    /// bit-identical).
    ///
    /// # Errors
    ///
    /// Returns the first bind error; shards already bound are dropped
    /// (drained) on the way out.
    pub fn bind(model: Model, opts: RouterOptions) -> std::io::Result<Router> {
        let n = opts.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(NetServer::bind(model.clone(), opts.net.clone())?);
        }
        Ok(Router {
            shards,
            policy: opts.policy,
        })
    }

    /// The bound address of every shard, in shard order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().map(|s| s.local_addr()).collect()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard metrics snapshots, in shard order.
    pub fn metrics(&self) -> Vec<NetMetrics> {
        self.shards.iter().map(|s| s.metrics()).collect()
    }

    /// Gracefully drains every shard's current connections (see
    /// [`NetServer::drain_connections`]).
    pub fn drain_connections(&self) {
        for s in &self.shards {
            s.drain_connections();
        }
    }

    /// Opens a [`RouterClient`] over every shard with this router's
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns the first connect error.
    pub fn client(&self, opts: ClientOptions) -> std::io::Result<RouterClient> {
        RouterClient::connect(&self.shard_addrs(), self.policy, opts)
    }
}

struct Shard {
    client: NetClient,
    /// Requests routed here and not yet resolved (router-observed load).
    inflight: Arc<AtomicUsize>,
}

/// A client-side router over N shards, reusing [`NetClient`]'s pooled
/// pipelining per shard.
pub struct RouterClient {
    shards: Vec<Shard>,
    policy: ShardPolicy,
    rr: AtomicUsize,
}

impl std::fmt::Debug for RouterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterClient")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// An in-flight routed request. [`wait`](Self::wait) blocks for the
/// response; dropping it unwaited still releases its shard-load count.
pub struct RoutedReply {
    inner: PendingReply,
    _guard: InflightGuard,
    /// Which shard served it (index into the router's shard list).
    pub shard: usize,
}

impl RoutedReply {
    /// Blocks for the response (see [`PendingReply::wait`]).
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`NetError`].
    pub fn wait(self) -> Result<NetResult, NetError> {
        self.inner.wait()
    }
}

struct InflightGuard {
    counter: Arc<AtomicUsize>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::Relaxed);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl RouterClient {
    /// Connects one pooled [`NetClient`] per shard address.
    ///
    /// # Errors
    ///
    /// Returns the first connect error.
    pub fn connect(
        addrs: &[SocketAddr],
        policy: ShardPolicy,
        opts: ClientOptions,
    ) -> std::io::Result<RouterClient> {
        let mut shards = Vec::with_capacity(addrs.len());
        for addr in addrs {
            shards.push(Shard {
                client: NetClient::connect(*addr, opts.clone())?,
                inflight: Arc::new(AtomicUsize::new(0)),
            });
        }
        Ok(RouterClient {
            shards,
            policy,
            rr: AtomicUsize::new(0),
        })
    }

    /// Picks the shard for `jpeg` under the configured policy.
    fn pick(&self, jpeg: &[u8]) -> usize {
        match self.policy {
            ShardPolicy::ConsistentHash => (fnv1a(jpeg) % self.shards.len() as u64) as usize,
            ShardPolicy::LeastLoaded => {
                // Argmin over in-flight counts; the rotating start index
                // breaks ties fairly instead of piling onto shard 0.
                let n = self.shards.len();
                let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
                let mut best = start;
                let mut best_load = usize::MAX;
                for i in 0..n {
                    let idx = (start + i) % n;
                    let load = self.shards[idx].inflight.load(Ordering::Relaxed);
                    if load < best_load {
                        best = idx;
                        best_load = load;
                    }
                }
                best
            }
        }
    }

    /// Routes and fires a request without waiting — the pipelining
    /// primitive, now shard-aware.
    ///
    /// # Errors
    ///
    /// Propagates the chosen shard's submit error.
    pub fn submit(&self, jpeg: &[u8]) -> Result<RoutedReply, NetError> {
        self.submit_with_deadline(jpeg, None)
    }

    /// [`submit`](Self::submit) with an explicit per-request deadline.
    ///
    /// # Errors
    ///
    /// Propagates the chosen shard's submit error.
    pub fn submit_with_deadline(
        &self,
        jpeg: &[u8],
        deadline: Option<Duration>,
    ) -> Result<RoutedReply, NetError> {
        let idx = self.pick(jpeg);
        let shard = &self.shards[idx];
        shard.inflight.fetch_add(1, Ordering::Relaxed);
        let guard = InflightGuard {
            counter: Arc::clone(&shard.inflight),
        };
        let inner = shard.client.submit_with_deadline(jpeg, deadline)?;
        Ok(RoutedReply {
            inner,
            _guard: guard,
            shard: idx,
        })
    }

    /// Routes a request and blocks for the result.
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`NetError`].
    pub fn infer(&self, jpeg: &[u8]) -> Result<NetResult, NetError> {
        self.submit(jpeg)?.wait()
    }

    /// Router-observed in-flight count per shard, in shard order.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.inflight.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vserve_dnn::models;
    use vserve_server::live::LiveOptions;
    use vserve_workload::synthetic_jpeg;

    fn tiny_router(shards: usize, policy: ShardPolicy) -> Router {
        let model = Model::from_graph(models::micro_cnn(32, 10).unwrap(), 3);
        Router::bind(
            model,
            RouterOptions {
                shards,
                policy,
                net: NetOptions {
                    live: LiveOptions {
                        input_side: 32,
                        backend_threads: 1,
                        max_queue_delay: Duration::from_millis(2),
                        ..LiveOptions::default()
                    },
                    ..NetOptions::default()
                },
            },
        )
        .expect("bind shards")
    }

    fn spec(seed: u64) -> Vec<u8> {
        synthetic_jpeg(&vserve_device::ImageSpec::new(48, 48, 0), seed)
    }

    #[test]
    fn least_loaded_spreads_across_shards() {
        let router = tiny_router(3, ShardPolicy::LeastLoaded);
        let client = router.client(ClientOptions::default()).unwrap();
        let pending: Vec<_> = (0..12).map(|i| client.submit(&spec(i)).unwrap()).collect();
        // With equal loads and rotating tie-break, requests spread.
        let mut seen = [0usize; 3];
        for p in &pending {
            seen[p.shard] += 1;
        }
        for (i, &n) in seen.iter().enumerate() {
            assert!(n > 0, "shard {i} never chosen: {seen:?}");
        }
        for p in pending {
            assert_eq!(p.wait().unwrap().output.len(), 10);
        }
        // All loads released once waited.
        assert_eq!(client.shard_loads(), vec![0, 0, 0]);
        let served: u64 = router.metrics().iter().map(|m| m.live.completed).sum();
        assert_eq!(served, 12);
    }

    #[test]
    fn consistent_hash_is_sticky_per_payload() {
        let router = tiny_router(4, ShardPolicy::ConsistentHash);
        let client = router.client(ClientOptions::default()).unwrap();
        let payload = spec(7);
        let first = client.submit(&payload).unwrap();
        let shard = first.shard;
        assert_eq!(first.wait().unwrap().output.len(), 10);
        for _ in 0..5 {
            let p = client.submit(&payload).unwrap();
            assert_eq!(p.shard, shard, "same payload must stay on its shard");
            p.wait().unwrap();
        }
        // Different payloads eventually land elsewhere.
        let other = (0..64)
            .map(|i| client.pick(&spec(100 + i)))
            .any(|s| s != shard);
        assert!(other, "hash routing degenerated to one shard");
    }

    #[test]
    fn router_outputs_match_single_server() {
        let router = tiny_router(2, ShardPolicy::LeastLoaded);
        let client = router.client(ClientOptions::default()).unwrap();
        let single = tiny_router(1, ShardPolicy::LeastLoaded);
        let single_client = single.client(ClientOptions::default()).unwrap();
        for i in 0..6 {
            let a = client.infer(&spec(i)).unwrap();
            let b = single_client.infer(&spec(i)).unwrap();
            assert_eq!(a.output, b.output, "payload {i} diverged across shards");
        }
    }

    #[test]
    fn dropped_reply_releases_shard_load() {
        let router = tiny_router(2, ShardPolicy::LeastLoaded);
        let client = router.client(ClientOptions::default()).unwrap();
        let p = client.submit(&spec(3)).unwrap();
        assert_eq!(client.shard_loads().iter().sum::<usize>(), 1);
        drop(p); // abandoned, not waited
        assert_eq!(
            client.shard_loads().iter().sum::<usize>(),
            0,
            "dropped replies must not pin shard load"
        );
    }
}
