//! A small dependency-free readiness poller for the evented front-end.
//!
//! Two backends behind one API:
//!
//! * **epoll** on Linux — O(ready) wakeups, comfortable at 10k+
//!   registered connections;
//! * **poll(2)** on every other Unix — O(registered) per wait, fine for
//!   the connection counts a development laptop sees.
//!
//! Neither pulls in a crate: both talk to libc symbols that `std`
//! already links (`extern "C"` declarations, no `libc` dependency). The
//! unsafe surface is confined to this module and consists entirely of
//! well-formed syscall invocations over locally owned buffers.
//!
//! Level-triggered semantics on both backends: an fd stays ready until
//! its condition is consumed, so a handler that stops mid-read (e.g. the
//! in-flight cap pausing a connection) simply sees the fd again on the
//! next wait once it re-arms read interest.
//!
//! The [`Waker`] is a nonblocking `UnixStream` pair rather than an
//! eventfd so cross-thread wakeups need no extra syscall declarations:
//! any thread writes a byte, the event loop drains it.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// What an fd is registered to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (data available, or EOF pending — a read will not block).
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
    /// Error/hangup condition; the fd should be read to completion and
    /// closed.
    pub hangup: bool,
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod backend {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // x86-64 is the one ABI where the kernel's epoll_event is packed.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(r: i32) -> io::Result<i32> {
        if r < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(r)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    /// epoll-backed poller.
    pub struct Backend {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Backend {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` is a live, properly laid out epoll_event.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: as above.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: the event argument is ignored for DEL on modern
            // kernels but must be non-null on pre-2.6.9 ones.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms = timeout
                .map(|d| d.as_millis().min(i32::MAX as u128) as i32)
                .unwrap_or(-1);
            // SAFETY: `buf` outlives the call and maxevents matches its
            // length.
            let n = loop {
                let r = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms,
                    )
                };
                match cvt(r) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for i in 0..n {
                // Copy out of the (possibly packed) struct before use.
                let ev = self.buf[i];
                let events = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            if n == self.buf.len() {
                // Saturated: grow so a 10k-conn stampede drains in few
                // syscalls.
                let len = self.buf.len() * 2;
                self.buf.resize(len, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: epfd is owned by this struct and closed once.
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Other Unix: poll(2)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_ulong;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout_ms: i32) -> i32;
    }

    /// poll(2)-backed poller: a dense registration list rebuilt lazily.
    pub struct Backend {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn events_for(interest: Interest) -> i16 {
            let mut e = 0;
            if interest.read {
                e |= POLLIN;
            }
            if interest.write {
                e |= POLLOUT;
            }
            e
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.push(PollFd {
                fd,
                events: Self::events_for(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for (p, t) in self.fds.iter_mut().zip(self.tokens.iter_mut()) {
                if p.fd == fd {
                    p.events = Self::events_for(interest);
                    *t = token;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            if let Some(i) = self.fds.iter().position(|p| p.fd == fd) {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
                Ok(())
            } else {
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms = timeout
                .map(|d| d.as_millis().min(i32::MAX as u128) as i32)
                .unwrap_or(-1);
            // SAFETY: the fd slice is owned and nfds matches its length.
            let n = loop {
                let r =
                    unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, timeout_ms) };
                if r >= 0 {
                    break r;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            if n > 0 {
                for (p, &token) in self.fds.iter().zip(&self.tokens) {
                    if p.revents != 0 {
                        out.push(Event {
                            token,
                            readable: p.revents & (POLLIN | POLLHUP) != 0,
                            writable: p.revents & POLLOUT != 0,
                            hangup: p.revents & (POLLERR | POLLHUP) != 0,
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// public wrapper
// ---------------------------------------------------------------------------

/// Readiness poller over registered raw fds.
///
/// Tokens are opaque `u64`s chosen by the caller and echoed in events; an
/// fd must be [`remove`](Self::remove)d before it is closed (epoll would
/// otherwise keep stale registrations alive via the kernel's file
/// reference).
pub struct Poller {
    backend: backend::Backend,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish()
    }
}

impl Poller {
    /// Creates an empty poller.
    ///
    /// # Errors
    ///
    /// Propagates the backend's creation failure (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: backend::Backend::new()?,
        })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Fails if the fd is already registered (epoll) or invalid.
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.add(fd, token, interest)
    }

    /// Changes the interest (and token) of a registered fd.
    ///
    /// # Errors
    ///
    /// Fails if the fd is not registered.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)
    }

    /// Unregisters an fd. Call before closing it.
    ///
    /// # Errors
    ///
    /// Fails if the fd is not registered.
    pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        self.backend.remove(fd)
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// expires), appending readiness reports to `out`. `None` blocks
    /// indefinitely. Spurious wakeups (empty `out`) are allowed.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures other than `EINTR` (which retries).
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        self.backend.wait(out, timeout)
    }
}

/// Cross-thread wakeup for an event loop blocked in [`Poller::wait`].
///
/// Register [`Waker::fd`] for read interest under a reserved token; any
/// thread may call [`wake`](Self::wake), and the loop calls
/// [`drain`](Self::drain) when that token reports readable.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Creates the pair; both ends are nonblocking.
    ///
    /// # Errors
    ///
    /// Propagates socketpair failure (fd exhaustion).
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd to register for read interest.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Wakes the loop. Never blocks: if the pipe is already full the loop
    /// has a wakeup pending and the write is unnecessary.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drains pending wake bytes. Call on readiness of [`fd`](Self::fd).
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// A cheap clone-able handle that can wake the loop from other threads.
#[derive(Debug, Clone)]
pub struct WakeHandle {
    tx: std::sync::Arc<UnixStream>,
}

impl Waker {
    /// A handle other threads can hold to wake this loop.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            tx: std::sync::Arc::new(self.tx.try_clone()?),
        })
    }
}

impl WakeHandle {
    /// Wakes the loop (see [`Waker::wake`]).
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// The process's soft open-file limit, if it can be read.
///
/// The connection-scaling bench and the high-connection smoke test size
/// themselves off this so they skip gracefully in fd-capped sandboxes.
pub fn fd_soft_limit() -> Option<u64> {
    #[cfg(unix)]
    {
        #[repr(C)]
        struct RLimit {
            cur: u64,
            max: u64,
        }
        extern "C" {
            fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        }
        // RLIMIT_NOFILE is 7 on Linux, 8 on the BSDs/macOS.
        #[cfg(target_os = "linux")]
        const RLIMIT_NOFILE: i32 = 7;
        #[cfg(not(target_os = "linux"))]
        const RLIMIT_NOFILE: i32 = 8;
        let mut r = RLimit { cur: 0, max: 0 };
        // SAFETY: `r` is a live out-param of the correct layout.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut r) } == 0 {
            return Some(r.cur);
        }
        None
    }
    #[cfg(not(unix))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn readable_event_fires_on_data() {
        let mut p = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        p.add(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out empty.
        p.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no data, no event");
        a.write_all(b"x").unwrap();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        p.remove(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn writable_event_fires_immediately_on_empty_buffer() {
        let mut p = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        p.add(a.as_raw_fd(), 3, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
    }

    #[test]
    fn modify_switches_interest() {
        let mut p = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        p.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.readable));
        // Drop read interest: the pending byte no longer wakes us.
        p.modify(b.as_raw_fd(), 1, Interest::WRITE).unwrap();
        p.wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.iter().all(|e| !e.readable || e.token != 1),
            "read interest dropped but still reported readable"
        );
    }

    #[test]
    fn eof_reports_readable() {
        let mut p = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        p.add(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a); // peer closes: a read would return Ok(0)
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events
            .iter()
            .find(|e| e.token == 9)
            .expect("hangup must surface");
        assert!(ev.readable, "EOF must be reported as readable");
    }

    #[test]
    fn waker_wakes_and_drains() {
        let mut p = Poller::new().unwrap();
        let w = Waker::new().unwrap();
        p.add(w.fd(), 0, Interest::READ).unwrap();
        let h = w.handle().unwrap();
        let t = std::thread::spawn(move || h.wake());
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        t.join().unwrap();
        w.drain();
        // Drained: the next wait times out quietly.
        p.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn many_registrations_round_trip() {
        let mut p = Poller::new().unwrap();
        let pairs: Vec<_> = (0..64).map(|_| UnixStream::pair().unwrap()).collect();
        for (i, (_, b)) in pairs.iter().enumerate() {
            b.set_nonblocking(true).unwrap();
            p.add(b.as_raw_fd(), 100 + i as u64, Interest::READ)
                .unwrap();
        }
        // Write on a subset; exactly that subset reports readable.
        let ready: Vec<usize> = vec![3, 17, 42];
        for &i in &ready {
            (&pairs[i].0).write_all(b"y").unwrap();
        }
        let mut events = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.len() < ready.len() && std::time::Instant::now() < deadline {
            p.wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for e in &events {
                if e.readable {
                    seen.insert((e.token - 100) as usize);
                }
            }
        }
        let want: std::collections::HashSet<usize> = ready.into_iter().collect();
        assert_eq!(seen, want);
        // Consume and verify level-triggered persistence until drained.
        for &i in want.iter() {
            let mut buf = [0u8; 8];
            let n = (&pairs[i].1).read(&mut buf).unwrap();
            assert_eq!(n, 1);
        }
        p.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained fds must not re-report");
    }

    #[test]
    fn fd_limit_is_readable() {
        let lim = fd_soft_limit();
        assert!(lim.is_some(), "unix must expose RLIMIT_NOFILE");
        assert!(lim.unwrap() >= 64, "implausibly low fd limit");
    }
}
