//! The framed wire protocol: length-prefixed request/response frames.
//!
//! Every frame on the socket is `[u32 LE body length][body]`. Request
//! bodies carry a JPEG payload plus routing metadata (model name, target
//! side, optional deadline, request id); response bodies carry either a
//! classification output with a per-stage time breakdown or a typed
//! status ([`Status::Overloaded`], [`Status::DeadlineExceeded`],
//! [`Status::BadFrame`], …).
//!
//! The decoder is **zero-copy** — [`RequestFrame`] and [`ResponseFrame`]
//! borrow the model name, payload, and output bytes straight out of the
//! input buffer — and **total**: every read is bounds-checked, malformed
//! input returns [`WireError`] (surfaced to peers as a
//! [`Status::BadFrame`] response), and no input can make it panic or
//! allocate beyond [`MAX_FRAME_LEN`]. The length prefix is validated
//! *before* any buffer is grown, so a hostile length field cannot cause
//! an over-allocation.
//!
//! # Request body layout (after the u32 length prefix, all integers LE)
//!
//! | field        | bytes | meaning                                        |
//! |--------------|-------|------------------------------------------------|
//! | magic        | 4     | `b"VRQ1"` (version 1 request)                  |
//! | id           | 8     | caller-chosen request id, echoed in response   |
//! | side         | 2     | target model input side; 0 = server default    |
//! | deadline_us  | 4     | µs from server receipt; 0 = no deadline        |
//! | model len    | 1     | length of the model-name string                |
//! | model        | var   | UTF-8 model name; empty = server default       |
//! | payload len  | 4     | JPEG byte count                                |
//! | payload      | var   | the JPEG bytes                                 |
//!
//! # Version-2 request body (`VRQ2`): the multi-tenant header
//!
//! Identical to `VRQ1` with one field pair inserted between the model
//! name and the payload length:
//!
//! | field        | bytes | meaning                                        |
//! |--------------|-------|------------------------------------------------|
//! | tenant len   | 1     | length of the tenant-name string               |
//! | tenant       | var   | UTF-8 tenant name; empty = route by model      |
//!
//! The gate is the magic itself: decoders accept both versions (a `VRQ1`
//! body decodes with an empty tenant), and [`encode_request`] emits
//! `VRQ1` whenever the tenant is empty, so single-tenant clients are
//! byte-identical to the v1 protocol and old servers never see a frame
//! they cannot parse unless a tenant was explicitly requested.
//!
//! # Response body layout
//!
//! | field        | bytes | meaning                                        |
//! |--------------|-------|------------------------------------------------|
//! | magic        | 4     | `b"VRS1"` (version 1 response)                 |
//! | id           | 8     | echoed request id                              |
//! | status       | 1     | [`Status`] discriminant                        |
//! | msg len      | 2     | diagnostic message length (errors only)        |
//! | msg          | var   | UTF-8 diagnostic                               |
//! | batch        | 4     | inference batch size the request rode in       |
//! | stage µs     | 6×8   | transfer, deserialize, queue, preproc, inference, total |
//! | output len   | 4     | number of f32 output values                    |
//! | output       | var   | the output values, f32 LE                      |
//!
//! # Metrics-scrape request body layout (`VRM1`)
//!
//! A scrape request is the framed protocol's `GET /metrics`: the server
//! answers with an ordinary `VRS1` response whose `msg` field carries the
//! plain-text metrics exposition (status [`Status::Ok`], empty output).
//!
//! | field        | bytes | meaning                                        |
//! |--------------|-------|------------------------------------------------|
//! | magic        | 4     | `b"VRM1"` (version 1 metrics request)          |
//! | id           | 8     | caller-chosen request id, echoed in response   |
//! | flags        | 1     | reserved; decoders accept any value            |
//!
//! Trailing bytes after a well-formed body are rejected: a frame must
//! parse exactly.

use std::time::{Duration, Instant};

/// Hard cap on a frame body; the length prefix is validated against this
/// before any allocation, so untrusted peers cannot force large buffers.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Magic opening a version-1 request body.
pub const REQUEST_MAGIC: [u8; 4] = *b"VRQ1";

/// Magic opening a version-2 request body (adds the tenant header).
pub const REQUEST_MAGIC_V2: [u8; 4] = *b"VRQ2";

/// Magic opening a version-1 response body.
pub const RESPONSE_MAGIC: [u8; 4] = *b"VRS1";

/// Magic opening a version-1 metrics-scrape request body (the framed
/// protocol's `GET /metrics`).
pub const METRICS_MAGIC: [u8; 4] = *b"VRM1";

/// Bytes of the length prefix itself.
pub const HEADER_LEN: usize = 4;

/// Smallest body either frame kind can have (magic + id + status byte is
/// the response minimum; requests are larger but share the floor).
pub const MIN_BODY_LEN: usize = 13;

/// A malformed frame. The payload is a static reason suitable for the
/// diagnostic message of a [`Status::BadFrame`] response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad frame: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Typed response status. `Ok` responses carry outputs and stage times;
/// everything else is a shed or failure with a diagnostic message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Inference completed; output and stage breakdown are valid.
    Ok = 0,
    /// The server's bounded ingress queue was full; the request was shed
    /// on arrival (the paper's backpressure path, not a dropped
    /// connection).
    Overloaded = 1,
    /// The request's propagated deadline passed before inference.
    DeadlineExceeded = 2,
    /// The request frame failed to parse; the connection closes after
    /// this response because framing can no longer be trusted.
    BadFrame = 3,
    /// The JPEG payload failed to decode.
    DecodeFailed = 4,
    /// The model rejected the preprocessed tensor.
    ModelFailed = 5,
    /// The server is draining for shutdown.
    ShuttingDown = 6,
    /// The frame named a model this server does not host.
    UnknownModel = 7,
    /// The tenant's token-bucket quota rejected the request at
    /// admission (before any queueing).
    QuotaExceeded = 8,
    /// Admission control judged the tenant's SLO infeasible given the
    /// lane's current depth and learned per-item cost.
    SloInfeasible = 9,
}

impl Status {
    /// Parses a wire discriminant.
    pub fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::Overloaded),
            2 => Some(Status::DeadlineExceeded),
            3 => Some(Status::BadFrame),
            4 => Some(Status::DecodeFailed),
            5 => Some(Status::ModelFailed),
            6 => Some(Status::ShuttingDown),
            7 => Some(Status::UnknownModel),
            8 => Some(Status::QuotaExceeded),
            9 => Some(Status::SloInfeasible),
            _ => None,
        }
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::DeadlineExceeded => "deadline exceeded",
            Status::BadFrame => "bad frame",
            Status::DecodeFailed => "decode failed",
            Status::ModelFailed => "model failed",
            Status::ShuttingDown => "shutting down",
            Status::UnknownModel => "unknown model",
            Status::QuotaExceeded => "quota exceeded",
            Status::SloInfeasible => "slo infeasible",
        })
    }
}

/// A decoded request, borrowing the name and payload from the input
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestFrame<'a> {
    /// Caller-chosen id, echoed back so pipelined responses can be matched.
    pub id: u64,
    /// Requested model input side; 0 defers to the server's configuration.
    pub side: u16,
    /// Deadline in µs from server receipt; 0 means none.
    pub deadline_us: u32,
    /// Model name; empty defers to the server's deployed model.
    pub model: &'a str,
    /// Tenant name for lane routing; empty routes by model (or the
    /// server default). Only `VRQ2` frames carry this on the wire.
    pub tenant: &'a str,
    /// The JPEG payload.
    pub jpeg: &'a [u8],
}

impl RequestFrame<'_> {
    /// The deadline as a [`Duration`] from server receipt, if any.
    pub fn deadline(&self) -> Option<Duration> {
        (self.deadline_us > 0).then(|| Duration::from_micros(self.deadline_us as u64))
    }
}

/// Server-measured per-stage times, µs, carried in `Ok` responses.
///
/// `transfer` and `deserialize` are the network front-end's own stages —
/// the rows the paper attributes to client→server data transfer and
/// request serialization; the rest mirror
/// [`LiveResult`](vserve_server::live::LiveResult).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageMicros {
    /// Reading the request frame's bytes off the socket.
    pub transfer_us: u64,
    /// Parsing/validating the frame and detaching the payload.
    pub deserialize_us: u64,
    /// Ingress + batcher queueing inside the live server.
    pub queue_us: u64,
    /// JPEG decode + resize + normalize.
    pub preproc_us: u64,
    /// Per-item share of the batched forward pass.
    pub inference_us: u64,
    /// Full server-side residency: frame read → response ready.
    pub total_us: u64,
}

/// A decoded response, borrowing message and output bytes from the input
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseFrame<'a> {
    /// Echoed request id.
    pub id: u64,
    /// Outcome.
    pub status: Status,
    /// Diagnostic message (error statuses only; empty for `Ok`).
    pub msg: &'a str,
    /// Inference batch size (0 for error statuses).
    pub batch: u32,
    /// Per-stage server-side times.
    pub stages: StageMicros,
    /// Raw little-endian f32 output bytes; use
    /// [`output_vec`](Self::output_vec) to materialize.
    pub output: &'a [u8],
}

impl ResponseFrame<'_> {
    /// Copies the output bytes into an f32 vector.
    pub fn output_vec(&self) -> Vec<f32> {
        self.output
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Patches the length prefix reserved at `start` once the body is done.
fn finish_frame(buf: &mut Vec<u8>, start: usize) {
    let body = (buf.len() - start - HEADER_LEN) as u32;
    buf[start..start + HEADER_LEN].copy_from_slice(&body.to_le_bytes());
}

/// Truncates `name` to 255 bytes on a UTF-8 boundary for a 1-byte
/// length-prefixed string field.
fn clip_name(mut name: &str) -> &str {
    while name.len() > 255 {
        let cut = (0..=255).rev().find(|&i| name.is_char_boundary(i));
        name = &name[..cut.unwrap_or(0)];
    }
    name
}

/// Appends a complete request frame (length prefix included) to `buf`.
///
/// Version gate: a frame with an empty tenant encodes as `VRQ1` —
/// byte-identical to the v1 protocol — and only a non-empty tenant
/// upgrades the frame to `VRQ2`. Model and tenant names are truncated to
/// 255 bytes (on UTF-8 boundaries) and the payload to [`MAX_FRAME_LEN`]
/// — in practice callers never hit either.
pub fn encode_request(buf: &mut Vec<u8>, f: &RequestFrame<'_>) {
    let start = buf.len();
    put_u32(buf, 0); // length back-patched below
    let v2 = !f.tenant.is_empty();
    buf.extend_from_slice(if v2 {
        &REQUEST_MAGIC_V2
    } else {
        &REQUEST_MAGIC
    });
    put_u64(buf, f.id);
    put_u16(buf, f.side);
    put_u32(buf, f.deadline_us);
    let name = clip_name(f.model);
    buf.push(name.len() as u8);
    buf.extend_from_slice(name.as_bytes());
    if v2 {
        let tenant = clip_name(f.tenant);
        buf.push(tenant.len() as u8);
        buf.extend_from_slice(tenant.as_bytes());
    }
    let jpeg = &f.jpeg[..f.jpeg.len().min(MAX_FRAME_LEN / 2)];
    put_u32(buf, jpeg.len() as u32);
    buf.extend_from_slice(jpeg);
    finish_frame(buf, start);
}

/// Appends a complete response frame (length prefix included) to `buf`.
pub fn encode_response(buf: &mut Vec<u8>, f: &ResponseFrame<'_>) {
    let start = buf.len();
    put_u32(buf, 0);
    buf.extend_from_slice(&RESPONSE_MAGIC);
    put_u64(buf, f.id);
    buf.push(f.status as u8);
    let msg = &f.msg.as_bytes()[..f.msg.len().min(u16::MAX as usize)];
    put_u16(buf, msg.len() as u16);
    buf.extend_from_slice(msg);
    put_u32(buf, f.batch);
    for v in [
        f.stages.transfer_us,
        f.stages.deserialize_us,
        f.stages.queue_us,
        f.stages.preproc_us,
        f.stages.inference_us,
        f.stages.total_us,
    ] {
        put_u64(buf, v);
    }
    let out = &f.output[..f.output.len().min(MAX_FRAME_LEN / 2)];
    put_u32(buf, (out.len() / 4) as u32);
    buf.extend_from_slice(&out[..(out.len() / 4) * 4]);
    finish_frame(buf, start);
}

/// Encodes `output` f32s as the little-endian bytes the response layout
/// wants.
pub fn output_bytes(output: &[f32]) -> Vec<u8> {
    let mut b = Vec::with_capacity(output.len() * 4);
    for v in output {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b
}

// ---------------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over untrusted bytes; every accessor fails with
/// [`WireError`] instead of panicking.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cursor { b, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError(what))?;
        if end > self.b.len() {
            return Err(WireError(what));
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let s = self.take(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(WireError("trailing bytes after frame body"))
        }
    }
}

/// Validates a length prefix. Returns the body length to read, or an
/// error if the peer's framing cannot be trusted (too small to be any
/// frame, or larger than [`MAX_FRAME_LEN`]).
pub fn check_frame_len(header: [u8; 4]) -> Result<usize, WireError> {
    let len = u32::from_le_bytes(header) as usize;
    if len < MIN_BODY_LEN {
        Err(WireError("frame body shorter than any valid frame"))
    } else if len > MAX_FRAME_LEN {
        Err(WireError("frame length exceeds MAX_FRAME_LEN"))
    } else {
        Ok(len)
    }
}

/// Decodes a request body (the bytes after the length prefix).
///
/// Accepts both protocol versions: `VRQ1` bodies decode with an empty
/// tenant, `VRQ2` bodies carry the tenant header.
pub fn decode_request(body: &[u8]) -> Result<RequestFrame<'_>, WireError> {
    let mut c = Cursor::new(body);
    let magic = c.take(4, "truncated request magic")?;
    let v2 = match () {
        _ if magic == REQUEST_MAGIC => false,
        _ if magic == REQUEST_MAGIC_V2 => true,
        _ => return Err(WireError("request magic mismatch")),
    };
    let id = c.u64("truncated request id")?;
    let side = c.u16("truncated target side")?;
    let deadline_us = c.u32("truncated deadline")?;
    let model_len = c.u8("truncated model length")? as usize;
    let model = std::str::from_utf8(c.take(model_len, "truncated model name")?)
        .map_err(|_| WireError("model name not UTF-8"))?;
    let tenant = if v2 {
        let tenant_len = c.u8("truncated tenant length")? as usize;
        std::str::from_utf8(c.take(tenant_len, "truncated tenant name")?)
            .map_err(|_| WireError("tenant name not UTF-8"))?
    } else {
        ""
    };
    let jpeg_len = c.u32("truncated payload length")? as usize;
    let jpeg = c.take(jpeg_len, "payload length exceeds frame")?;
    c.finish()?;
    Ok(RequestFrame {
        id,
        side,
        deadline_us,
        model,
        tenant,
        jpeg,
    })
}

/// Decodes a response body (the bytes after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<ResponseFrame<'_>, WireError> {
    let mut c = Cursor::new(body);
    if c.take(4, "truncated response magic")? != RESPONSE_MAGIC {
        return Err(WireError("response magic mismatch"));
    }
    let id = c.u64("truncated response id")?;
    let status =
        Status::from_u8(c.u8("truncated status")?).ok_or(WireError("unknown status code"))?;
    let msg_len = c.u16("truncated message length")? as usize;
    let msg = std::str::from_utf8(c.take(msg_len, "truncated message")?)
        .map_err(|_| WireError("message not UTF-8"))?;
    let batch = c.u32("truncated batch size")?;
    let mut us = [0u64; 6];
    for v in &mut us {
        *v = c.u64("truncated stage times")?;
    }
    let out_len = c.u32("truncated output length")? as usize;
    let out_bytes = out_len
        .checked_mul(4)
        .ok_or(WireError("output length overflows"))?;
    let output = c.take(out_bytes, "output length exceeds frame")?;
    c.finish()?;
    Ok(ResponseFrame {
        id,
        status,
        msg,
        batch,
        stages: StageMicros {
            transfer_us: us[0],
            deserialize_us: us[1],
            queue_us: us[2],
            preproc_us: us[3],
            inference_us: us[4],
            total_us: us[5],
        },
        output,
    })
}

/// A metrics-scrape request (`VRM1`): asks the server for its current
/// plain-text metrics exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsRequest {
    /// Caller-chosen id, echoed in the `VRS1` response carrying the
    /// exposition.
    pub id: u64,
    /// Reserved for future use; encoders write 0, decoders accept any
    /// value.
    pub flags: u8,
}

/// Appends a complete metrics-scrape frame (length prefix included) to
/// `buf`.
pub fn encode_metrics_request(buf: &mut Vec<u8>, f: &MetricsRequest) {
    let start = buf.len();
    put_u32(buf, 0);
    buf.extend_from_slice(&METRICS_MAGIC);
    put_u64(buf, f.id);
    buf.push(f.flags);
    finish_frame(buf, start);
}

/// Whether a frame body opens with the metrics magic. The server checks
/// this before [`decode_request`] so scrape frames take the metrics path
/// (a magic match with a malformed remainder is still a bad frame).
pub fn is_metrics_request(body: &[u8]) -> bool {
    body.len() >= 4 && body[..4] == METRICS_MAGIC
}

/// Decodes a metrics-scrape body (the bytes after the length prefix).
pub fn decode_metrics_request(body: &[u8]) -> Result<MetricsRequest, WireError> {
    let mut c = Cursor::new(body);
    if c.take(4, "truncated metrics magic")? != METRICS_MAGIC {
        return Err(WireError("metrics magic mismatch"));
    }
    let id = c.u64("truncated metrics request id")?;
    let flags = c.u8("truncated metrics flags")?;
    c.finish()?;
    Ok(MetricsRequest { id, flags })
}

/// Incremental framing over a byte buffer: returns `Ok(None)` when `buf`
/// holds less than one complete frame, `Ok(Some((body, consumed)))` once
/// the first frame is complete, or a [`WireError`] when the length prefix
/// itself is invalid (the stream can no longer be re-synchronized).
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = check_frame_len([buf[0], buf[1], buf[2], buf[3]])?;
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    Ok(Some((&buf[HEADER_LEN..HEADER_LEN + len], HEADER_LEN + len)))
}

/// Reads one frame from `r`, leaving the body (header stripped) in `buf`.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary — the peer closed
/// between frames — or `Ok(Some(transfer))` once a complete body is in
/// `buf`, where `transfer` is the time spent reading the body bytes off
/// the stream after the header arrived (the measured data-transfer
/// stage). The length prefix is validated via [`check_frame_len`]
/// *before* `buf` grows, so a hostile header cannot cause an
/// over-allocation; it surfaces as `io::ErrorKind::InvalidData` wrapping
/// the [`WireError`], after which the stream cannot be re-synchronized.
pub fn read_frame_into<R: std::io::Read>(
    r: &mut R,
    buf: &mut Vec<u8>,
) -> std::io::Result<Option<Duration>> {
    use std::io::{Error, ErrorKind};
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = check_frame_len(header).map_err(|e| Error::new(ErrorKind::InvalidData, e))?;
    let start = Instant::now();
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(Some(start.elapsed()))
}

/// Resumable incremental frame assembly for nonblocking streams.
///
/// The evented server reads whatever bytes the kernel has — possibly a
/// partial header, possibly several frames fused — and feeds them here.
/// The assembler buffers across reads, validates each length prefix via
/// [`check_frame_len`] the moment its four bytes are available (a hostile
/// prefix poisons the stream *before* any body byte is buffered), and
/// yields complete bodies in order via [`next_frame`](Self::next_frame).
///
/// Memory stays proportional to bytes actually received: the body
/// allocation grows with arrival, never pre-reserved from the claimed
/// length, so a slow-loris peer announcing a 32 MiB frame and sending one
/// byte holds one byte of buffer, not 32 MiB.
///
/// The per-frame `transfer` duration mirrors [`read_frame_into`]: time
/// from the header completing to the body completing — the measured
/// data-transfer leg that feeds the `0-net-transfer` span.
///
/// Errors are sticky: after any [`WireError`] the stream cannot be
/// re-synchronized and every later call fails.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
    body_len: Option<usize>,
    header_at: Option<Instant>,
    poisoned: bool,
}

impl FrameAssembler {
    /// An empty assembler at a frame boundary.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Bytes buffered and not yet yielded as frames (partial header +
    /// partial body). Feeds the write-buffer/read-buffer gauges.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the stream is mid-frame: a clean EOF here means the peer
    /// died inside a frame rather than between frames.
    pub fn mid_frame(&self) -> bool {
        self.body_len.is_some() || self.buffered() > 0
    }

    /// Appends freshly read bytes.
    ///
    /// # Errors
    ///
    /// Returns the sticky [`WireError`] if the stream is already
    /// poisoned, or poisons it now when these bytes complete an invalid
    /// length prefix.
    pub fn extend(&mut self, chunk: &[u8]) -> Result<(), WireError> {
        if self.poisoned {
            return Err(WireError("frame stream poisoned by earlier error"));
        }
        // Compact the consumed prefix before growing: the retained tail
        // is at most one partial frame.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
        self.validate_header()
    }

    /// Yields the next complete frame body, or `Ok(None)` when the buffer
    /// holds less than one frame. The returned slice borrows the internal
    /// buffer: decode (and copy out what outlives the borrow) before the
    /// next [`extend`](Self::extend).
    ///
    /// # Errors
    ///
    /// Returns the sticky [`WireError`] on a poisoned stream or when the
    /// next length prefix is invalid.
    pub fn next_frame(&mut self) -> Result<Option<(&[u8], Duration)>, WireError> {
        self.validate_header()?;
        let len = match self.body_len {
            Some(len) => len,
            None => return Ok(None),
        };
        if self.buffered() < HEADER_LEN + len {
            return Ok(None);
        }
        let body_start = self.start + HEADER_LEN;
        self.start = body_start + len;
        self.body_len = None;
        let transfer = self
            .header_at
            .take()
            .map(|t| t.elapsed())
            .unwrap_or_default();
        Ok(Some((&self.buf[body_start..body_start + len], transfer)))
    }

    fn validate_header(&mut self) -> Result<(), WireError> {
        if self.poisoned {
            return Err(WireError("frame stream poisoned by earlier error"));
        }
        if self.body_len.is_none() && self.buffered() >= HEADER_LEN {
            let s = self.start;
            let header = [
                self.buf[s],
                self.buf[s + 1],
                self.buf[s + 2],
                self.buf[s + 3],
            ];
            match check_frame_len(header) {
                Ok(len) => {
                    self.body_len = Some(len);
                    self.header_at = Some(Instant::now());
                }
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> (Vec<u8>, Vec<u8>) {
        let jpeg = vec![0xffu8, 0xd8, 0xff, 0xe0, 1, 2, 3];
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            &RequestFrame {
                id: 42,
                side: 224,
                deadline_us: 1_500,
                model: "micro-cnn",
                tenant: "",
                jpeg: &jpeg,
            },
        );
        (buf, jpeg)
    }

    fn sample_request_v2() -> (Vec<u8>, Vec<u8>) {
        let jpeg = vec![0xffu8, 0xd8, 0xff, 0xe0, 1, 2, 3];
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            &RequestFrame {
                id: 43,
                side: 224,
                deadline_us: 1_500,
                model: "micro-cnn",
                tenant: "lc",
                jpeg: &jpeg,
            },
        );
        (buf, jpeg)
    }

    #[test]
    fn request_roundtrip_identity() {
        let (buf, jpeg) = sample_request();
        let (body, consumed) = split_frame(&buf).unwrap().expect("complete");
        assert_eq!(consumed, buf.len());
        let f = decode_request(body).unwrap();
        assert_eq!(f.id, 42);
        assert_eq!(f.side, 224);
        assert_eq!(f.deadline_us, 1_500);
        assert_eq!(f.model, "micro-cnn");
        assert_eq!(f.tenant, "", "VRQ1 decodes with an empty tenant");
        assert_eq!(f.jpeg, &jpeg[..]);
        assert_eq!(f.deadline(), Some(Duration::from_micros(1_500)));
        // Version gate: an empty tenant must emit the v1 magic, keeping
        // single-tenant clients byte-identical to the v1 protocol.
        assert_eq!(&buf[HEADER_LEN..HEADER_LEN + 4], &REQUEST_MAGIC);
    }

    #[test]
    fn v2_request_roundtrips_tenant_header() {
        let (buf, jpeg) = sample_request_v2();
        assert_eq!(&buf[HEADER_LEN..HEADER_LEN + 4], &REQUEST_MAGIC_V2);
        let (body, consumed) = split_frame(&buf).unwrap().expect("complete");
        assert_eq!(consumed, buf.len());
        let f = decode_request(body).unwrap();
        assert_eq!(f.id, 43);
        assert_eq!(f.model, "micro-cnn");
        assert_eq!(f.tenant, "lc");
        assert_eq!(f.jpeg, &jpeg[..]);
    }

    #[test]
    fn v2_truncated_bodies_are_bad_frames() {
        // The hostile-input sweep, extended to the tenant header: every
        // prefix of a v2 body fails typed, never panics.
        let (buf, _) = sample_request_v2();
        let (body, _) = split_frame(&buf).unwrap().expect("complete");
        for cut in 0..body.len() {
            assert!(decode_request(&body[..cut]).is_err(), "cut at {cut}");
        }
        // Inflated tenant length cannot escape the frame.
        let mut bad = body.to_vec();
        let tenant_len_at = 4 + 8 + 2 + 4 + 1 + "micro-cnn".len();
        bad[tenant_len_at] = 0xFF;
        assert!(decode_request(&bad).is_err());
        // Non-UTF-8 tenant bytes fail typed.
        let mut bad = body.to_vec();
        bad[tenant_len_at + 1] = 0xFF;
        assert_eq!(
            decode_request(&bad),
            Err(WireError("tenant name not UTF-8"))
        );
    }

    #[test]
    fn response_roundtrip_identity() {
        let out = output_bytes(&[0.125f32, -3.5, 1e-9]);
        let mut buf = Vec::new();
        encode_response(
            &mut buf,
            &ResponseFrame {
                id: 7,
                status: Status::Ok,
                msg: "",
                batch: 4,
                stages: StageMicros {
                    transfer_us: 10,
                    deserialize_us: 2,
                    queue_us: 300,
                    preproc_us: 450,
                    inference_us: 120,
                    total_us: 882,
                },
                output: &out,
            },
        );
        let (body, _) = split_frame(&buf).unwrap().expect("complete");
        let f = decode_response(body).unwrap();
        assert_eq!(f.id, 7);
        assert_eq!(f.status, Status::Ok);
        assert_eq!(f.batch, 4);
        assert_eq!(f.stages.queue_us, 300);
        assert_eq!(f.stages.total_us, 882);
        assert_eq!(f.output_vec(), vec![0.125f32, -3.5, 1e-9]);
    }

    #[test]
    fn error_response_carries_message() {
        let mut buf = Vec::new();
        encode_response(
            &mut buf,
            &ResponseFrame {
                id: 9,
                status: Status::Overloaded,
                msg: "ingress queue full",
                batch: 0,
                stages: StageMicros::default(),
                output: &[],
            },
        );
        let (body, _) = split_frame(&buf).unwrap().expect("complete");
        let f = decode_response(body).unwrap();
        assert_eq!(f.status, Status::Overloaded);
        assert_eq!(f.msg, "ingress queue full");
        assert!(f.output.is_empty());
    }

    #[test]
    fn truncated_frames_need_more_bytes_not_panic() {
        let (buf, _) = sample_request();
        for cut in 0..buf.len() {
            let r = split_frame(&buf[..cut]);
            // Every prefix either needs more bytes or (once the header is
            // visible) is recognized as the valid in-progress frame.
            assert_eq!(r, Ok(None), "prefix of {cut} bytes");
        }
    }

    #[test]
    fn truncated_bodies_are_bad_frames() {
        let (buf, _) = sample_request();
        let (body, _) = split_frame(&buf).unwrap().expect("complete");
        for cut in 0..body.len() {
            assert!(decode_request(&body[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        assert!(split_frame(&buf).is_err());
        assert!(check_frame_len(u32::MAX.to_le_bytes()).is_err());
        assert!(check_frame_len((MAX_FRAME_LEN as u32 + 1).to_le_bytes()).is_err());
        assert!(check_frame_len((MAX_FRAME_LEN as u32).to_le_bytes()).is_ok());
    }

    #[test]
    fn undersized_length_rejected() {
        assert!(check_frame_len(0u32.to_le_bytes()).is_err());
        assert!(check_frame_len((MIN_BODY_LEN as u32 - 1).to_le_bytes()).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let (buf, _) = sample_request();
        let (body, _) = split_frame(&buf).unwrap().expect("complete");
        let mut bad = body.to_vec();
        bad[0] = b'X';
        assert!(decode_request(&bad).is_err());
        // A request body is not a response body.
        assert!(decode_response(body).is_err());
    }

    #[test]
    fn inner_payload_length_cannot_escape_frame() {
        let (buf, _) = sample_request();
        let (body, _) = split_frame(&buf).unwrap().expect("complete");
        let mut bad = body.to_vec();
        // Inflate the payload-length field (last 4+payload bytes from the
        // end): claim far more payload than the frame holds.
        let payload_len_at = body.len() - 7 - 4;
        bad[payload_len_at..payload_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_request(&bad),
            Err(WireError("payload length exceeds frame"))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (buf, _) = sample_request();
        let (body, _) = split_frame(&buf).unwrap().expect("complete");
        let mut bad = body.to_vec();
        bad.push(0);
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn read_frame_into_walks_back_to_back_frames() {
        let (one, _) = sample_request();
        let mut stream = Vec::new();
        stream.extend_from_slice(&one);
        stream.extend_from_slice(&one);
        let mut r = std::io::Cursor::new(stream);
        let mut body = Vec::new();
        for _ in 0..2 {
            let t = read_frame_into(&mut r, &mut body).unwrap();
            assert!(t.is_some());
            assert_eq!(decode_request(&body).unwrap().id, 42);
        }
        // Clean EOF at the frame boundary: no frame, no error.
        assert!(read_frame_into(&mut r, &mut body).unwrap().is_none());
    }

    #[test]
    fn read_frame_into_rejects_hostile_length_before_allocating() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.extend_from_slice(&[0u8; 8]);
        let mut r = std::io::Cursor::new(stream);
        let mut body = Vec::new();
        let err = read_frame_into(&mut r, &mut body).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(body.capacity() <= MAX_FRAME_LEN, "must not over-allocate");
    }

    #[test]
    fn read_frame_into_reports_truncation() {
        let (one, _) = sample_request();
        let mut r = std::io::Cursor::new(one[..one.len() - 2].to_vec());
        let mut body = Vec::new();
        let err = read_frame_into(&mut r, &mut body).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // EOF inside the header is also truncation, not a clean close.
        let mut r = std::io::Cursor::new(vec![1u8, 2]);
        let err = read_frame_into(&mut r, &mut body).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn status_codes_roundtrip() {
        for s in [
            Status::Ok,
            Status::Overloaded,
            Status::DeadlineExceeded,
            Status::BadFrame,
            Status::DecodeFailed,
            Status::ModelFailed,
            Status::ShuttingDown,
            Status::UnknownModel,
            Status::QuotaExceeded,
            Status::SloInfeasible,
        ] {
            assert_eq!(Status::from_u8(s as u8), Some(s));
        }
        assert_eq!(Status::from_u8(200), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Satellite: encode→decode roundtrip identity over arbitrary
        /// request fields.
        #[test]
        fn request_roundtrip(
            id in any::<u64>(),
            side in any::<u16>(),
            deadline_us in any::<u32>(),
            model in "[a-z0-9_-]{0,32}",
            tenant in "[a-z0-9_-]{0,32}",
            jpeg in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let mut buf = Vec::new();
            encode_request(&mut buf, &RequestFrame {
                id, side, deadline_us, model: &model, tenant: &tenant, jpeg: &jpeg,
            });
            let (body, consumed) = split_frame(&buf).unwrap().expect("complete");
            prop_assert_eq!(consumed, buf.len());
            // The version gate picks the magic from the tenant field.
            let expect_magic = if tenant.is_empty() { REQUEST_MAGIC } else { REQUEST_MAGIC_V2 };
            prop_assert_eq!(&body[..4], &expect_magic);
            let f = decode_request(body).unwrap();
            prop_assert_eq!(f.id, id);
            prop_assert_eq!(f.side, side);
            prop_assert_eq!(f.deadline_us, deadline_us);
            prop_assert_eq!(f.model, &model);
            prop_assert_eq!(f.tenant, &tenant);
            prop_assert_eq!(f.jpeg, &jpeg[..]);
        }

        /// Satellite: response roundtrip identity, bit-exact f32 output.
        #[test]
        fn response_roundtrip(
            id in any::<u64>(),
            status_code in 0u8..10,
            msg in "[ -~]{0,64}",
            batch in any::<u32>(),
            us in proptest::collection::vec(any::<u64>(), 6),
            output in proptest::collection::vec(any::<f32>(), 0..512),
        ) {
            let status = Status::from_u8(status_code).unwrap();
            let out = output_bytes(&output);
            let stages = StageMicros {
                transfer_us: us[0], deserialize_us: us[1], queue_us: us[2],
                preproc_us: us[3], inference_us: us[4], total_us: us[5],
            };
            let mut buf = Vec::new();
            encode_response(&mut buf, &ResponseFrame {
                id, status, msg: &msg, batch, stages, output: &out,
            });
            let (body, _) = split_frame(&buf).unwrap().expect("complete");
            let f = decode_response(body).unwrap();
            prop_assert_eq!(f.id, id);
            prop_assert_eq!(f.status, status);
            prop_assert_eq!(f.msg, &msg);
            prop_assert_eq!(f.batch, batch);
            prop_assert_eq!(f.stages, stages);
            // Bit-exact: NaNs and -0.0 must survive the wire.
            let got = f.output_vec();
            prop_assert_eq!(got.len(), output.len());
            for (a, b) in got.iter().zip(&output) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Satellite: the decoder is total on malicious input — arbitrary
        /// bytes never panic, and either parse or return `WireError`.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let _ = split_frame(&bytes);
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
            if bytes.len() >= 4 {
                let _ = check_frame_len([bytes[0], bytes[1], bytes[2], bytes[3]]);
            }
        }

        /// Satellite: corrupting any single byte of a valid frame either
        /// still parses (id/payload bytes are opaque) or fails cleanly —
        /// never panics, never reads out of bounds.
        #[test]
        fn single_byte_corruption_never_panics(
            pos in 0usize..64,
            val in any::<u8>(),
        ) {
            let jpeg = vec![1u8, 2, 3, 4, 5];
            // Both protocol versions survive the corruption sweep.
            for tenant in ["", "t0"] {
                let mut buf = Vec::new();
                encode_request(&mut buf, &RequestFrame {
                    id: 1, side: 64, deadline_us: 0, model: "m", tenant, jpeg: &jpeg,
                });
                let pos = pos % buf.len();
                buf[pos] = val;
                if let Ok(Some((body, _))) = split_frame(&buf) {
                    let _ = decode_request(body);
                }
            }
        }

        /// The length prefix is checked before any allocation: a hostile
        /// header either yields a small in-range length or an error.
        #[test]
        fn length_check_bounds_allocation(header in any::<[u8; 4]>()) {
            if let Ok(len) = check_frame_len(header) {
                prop_assert!(len >= MIN_BODY_LEN && len <= MAX_FRAME_LEN);
            }
        }
    }
}

#[cfg(test)]
mod metrics_frame_tests {
    use super::*;

    #[test]
    fn metrics_request_roundtrips() {
        let mut buf = Vec::new();
        let f = MetricsRequest {
            id: 0xDEAD_BEEF_0042,
            flags: 0,
        };
        encode_metrics_request(&mut buf, &f);
        let (body, consumed) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        // The 13-byte body is exactly MIN_BODY_LEN: the smallest frame the
        // length check accepts, so no special-casing was needed there.
        assert_eq!(body.len(), MIN_BODY_LEN);
        assert!(is_metrics_request(body));
        assert_eq!(decode_metrics_request(body).unwrap(), f);
    }

    #[test]
    fn magic_dispatch_is_mutually_exclusive() {
        let mut buf = Vec::new();
        encode_metrics_request(&mut buf, &MetricsRequest { id: 1, flags: 0 });
        let (mbody, _) = split_frame(&buf).unwrap().unwrap();
        assert!(
            decode_request(mbody).is_err(),
            "VRM1 must not parse as VRQ1"
        );
        assert!(
            decode_response(mbody).is_err(),
            "VRM1 must not parse as VRS1"
        );

        let mut req = Vec::new();
        encode_request(
            &mut req,
            &RequestFrame {
                id: 2,
                side: 0,
                deadline_us: 0,
                model: "",
                tenant: "",
                jpeg: &[0xFF],
            },
        );
        let (rbody, _) = split_frame(&req).unwrap().unwrap();
        assert!(!is_metrics_request(rbody));
        assert!(decode_metrics_request(rbody).is_err());
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let mut buf = Vec::new();
        encode_metrics_request(&mut buf, &MetricsRequest { id: 7, flags: 0 });
        let body = &buf[HEADER_LEN..];
        for cut in 0..body.len() {
            assert!(
                decode_metrics_request(&body[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
        let mut long = body.to_vec();
        long.push(0);
        assert!(
            decode_metrics_request(&long).is_err(),
            "trailing byte must fail"
        );
    }

    #[test]
    fn reserved_flags_accepted_leniently() {
        // Forward compatibility: any flags byte parses today.
        for flags in [0u8, 1, 0x7F, 0xFF] {
            let mut buf = Vec::new();
            encode_metrics_request(&mut buf, &MetricsRequest { id: 9, flags });
            let (body, _) = split_frame(&buf).unwrap().unwrap();
            assert_eq!(decode_metrics_request(body).unwrap().flags, flags);
        }
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_identity(id in any::<u64>(), flags in any::<u8>()) {
                let mut buf = Vec::new();
                encode_metrics_request(&mut buf, &MetricsRequest { id, flags });
                let (body, consumed) = split_frame(&buf).unwrap().unwrap();
                prop_assert_eq!(consumed, buf.len());
                let d = decode_metrics_request(body).unwrap();
                prop_assert_eq!(d, MetricsRequest { id, flags });
            }

            /// Single-byte corruptions either fail typed or yield another
            /// well-formed metrics request — never a panic.
            #[test]
            fn corruption_never_panics(pos in 0usize..17, bit in 0u8..8) {
                let mut buf = Vec::new();
                encode_metrics_request(&mut buf, &MetricsRequest { id: 3, flags: 0 });
                buf[pos] ^= 1 << bit;
                if let Ok(Some((body, _))) = split_frame(&buf) {
                    let _ = decode_metrics_request(body);
                }
            }
        }
    }
}

#[cfg(test)]
mod assembler_tests {
    use super::*;

    fn frame(id: u64) -> Vec<u8> {
        let jpeg = vec![0xffu8, 0xd8, 0xff, 0xe0, 9, 8, 7];
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            &RequestFrame {
                id,
                side: 224,
                deadline_us: 0,
                model: "micro-cnn",
                tenant: "",
                jpeg: &jpeg,
            },
        );
        buf
    }

    #[test]
    fn byte_at_a_time_matches_whole_frame_decode() {
        let buf = frame(42);
        let mut asm = FrameAssembler::new();
        let mut yielded = None;
        for (i, b) in buf.iter().enumerate() {
            asm.extend(std::slice::from_ref(b)).unwrap();
            if let Some((body, transfer)) = asm.next_frame().unwrap() {
                assert_eq!(i, buf.len() - 1, "must complete on the last byte only");
                let f = decode_request(body).unwrap();
                yielded = Some((f.id, transfer));
            }
        }
        let (id, transfer) = yielded.expect("frame must assemble");
        assert_eq!(id, 42);
        // Header completed well before the last body byte arrived.
        assert!(transfer > Duration::ZERO || cfg!(miri));
        assert!(!asm.mid_frame());
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn fused_frames_in_one_chunk_come_out_in_order() {
        let mut chunk = Vec::new();
        for id in [1u64, 2, 3] {
            chunk.extend_from_slice(&frame(id));
        }
        let mut asm = FrameAssembler::new();
        asm.extend(&chunk).unwrap();
        let mut ids = Vec::new();
        while let Some((body, _)) = asm.next_frame().unwrap() {
            ids.push(decode_request(body).unwrap().id);
        }
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(!asm.mid_frame());
    }

    #[test]
    fn split_across_arbitrary_chunk_boundaries() {
        let mut stream = Vec::new();
        for id in [10u64, 11] {
            stream.extend_from_slice(&frame(id));
        }
        // Every split point of two fused frames yields exactly two frames.
        for cut in 1..stream.len() {
            let mut asm = FrameAssembler::new();
            let mut ids = Vec::new();
            for chunk in [&stream[..cut], &stream[cut..]] {
                asm.extend(chunk).unwrap();
                while let Some((body, _)) = asm.next_frame().unwrap() {
                    ids.push(decode_request(body).unwrap().id);
                }
            }
            assert_eq!(ids, vec![10, 11], "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_poisons_before_body_buffers() {
        let mut asm = FrameAssembler::new();
        // Claims a body far beyond MAX_FRAME_LEN.
        let hostile = (u32::MAX).to_le_bytes();
        assert!(asm.extend(&hostile).is_err(), "oversized prefix must fail");
        // Sticky: everything after the poison fails too.
        assert!(asm.extend(b"more").is_err());
        assert!(asm.next_frame().is_err());
    }

    #[test]
    fn runt_length_poisons() {
        let mut asm = FrameAssembler::new();
        // Valid u32 but smaller than any legal body.
        let runt = 1u32.to_le_bytes();
        assert!(asm.extend(&runt).is_err(), "runt prefix must fail");
    }

    #[test]
    fn mid_frame_reports_partial_state() {
        let buf = frame(5);
        let mut asm = FrameAssembler::new();
        asm.extend(&buf[..6]).unwrap();
        assert!(asm.next_frame().unwrap().is_none());
        assert!(asm.mid_frame());
        assert_eq!(asm.buffered(), 6);
        asm.extend(&buf[6..]).unwrap();
        assert!(asm.next_frame().unwrap().is_some());
        assert!(!asm.mid_frame());
    }
}
