//! FIFO multi-server queue state machine.

use std::collections::VecDeque;

use vserve_metrics::{TimeWeightedGauge, Welford};

use crate::{SimDuration, SimTime};

/// Aggregate statistics reported by a [`MultiServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Jobs that entered service.
    pub started: u64,
    /// Mean time jobs spent waiting before service, seconds.
    pub mean_wait: f64,
    /// Maximum waiting time, seconds.
    pub max_wait: f64,
    /// Time-averaged queue depth.
    pub avg_depth: f64,
    /// Time-averaged number of busy servers.
    pub avg_busy: f64,
    /// Peak queue depth.
    pub peak_depth: f64,
}

/// A *c*-server FIFO queue, decoupled from the event loop.
///
/// `MultiServer` is a pure state machine: callers [`offer`](Self::offer)
/// jobs and [`release`](Self::release) servers, and whenever a job *starts
/// service* the machine hands it back so the caller can compute its service
/// time and schedule the completion event. This keeps service-time policy
/// (cost models, batching) out of the queue itself.
///
/// Used to model CPU preprocessing worker pools and per-GPU execution slots.
///
/// # Examples
///
/// ```
/// use vserve_sim::{MultiServer, SimTime};
///
/// let mut q: MultiServer<&str> = MultiServer::new(1);
/// let t0 = SimTime::ZERO;
/// // One server: the first job starts immediately, the second queues.
/// assert_eq!(q.offer(t0, "a"), Some(("a", t0)));
/// assert_eq!(q.offer(t0, "b"), None);
/// // Completing "a" starts "b".
/// let t1 = SimTime::from_nanos(100);
/// assert_eq!(q.release(t1), Some(("b", t0)));
/// ```
#[derive(Debug)]
pub struct MultiServer<J> {
    servers: usize,
    busy: usize,
    queue: VecDeque<(J, SimTime)>,
    depth: TimeWeightedGauge,
    busy_gauge: TimeWeightedGauge,
    waits: Welford,
    started: u64,
}

impl<J> MultiServer<J> {
    /// Creates a queue backed by `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "server count must be positive");
        MultiServer {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            depth: TimeWeightedGauge::new(0.0, 0.0),
            busy_gauge: TimeWeightedGauge::new(0.0, 0.0),
            waits: Welford::new(),
            started: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Servers currently serving a job.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Jobs waiting (not in service).
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Offers a job at time `now`.
    ///
    /// Returns `Some((job, enqueued_at))` if the job starts service
    /// immediately (a server was free); the caller must schedule its
    /// completion and later call [`release`](Self::release). Returns `None`
    /// if the job was queued.
    pub fn offer(&mut self, now: SimTime, job: J) -> Option<(J, SimTime)> {
        if self.busy < self.servers {
            self.busy += 1;
            self.busy_gauge.set(now.as_secs_f64(), self.busy as f64);
            self.waits.push(0.0);
            self.started += 1;
            Some((job, now))
        } else {
            self.queue.push_back((job, now));
            self.depth.set(now.as_secs_f64(), self.queue.len() as f64);
            None
        }
    }

    /// Resizes the pool to `servers` at time `now` (clamped to ≥ 1),
    /// mirroring the live server's runtime preproc-pool reconfiguration.
    ///
    /// Growing starts queued jobs on the new servers immediately; they are
    /// returned so the caller can schedule their completions, exactly as
    /// for [`offer`](Self::offer). Shrinking never preempts: jobs in
    /// service run to completion, and [`release`](Self::release) retires
    /// servers instead of starting new work until `busy` drains down to
    /// the new count.
    pub fn set_servers(&mut self, now: SimTime, servers: usize) -> Vec<(J, SimTime)> {
        self.servers = servers.max(1);
        let mut started = Vec::new();
        while self.busy < self.servers {
            match self.queue.pop_front() {
                Some((job, enq)) => {
                    self.busy += 1;
                    self.busy_gauge.set(now.as_secs_f64(), self.busy as f64);
                    self.depth.set(now.as_secs_f64(), self.queue.len() as f64);
                    self.waits.push((now - enq).as_secs_f64());
                    self.started += 1;
                    started.push((job, enq));
                }
                None => break,
            }
        }
        started
    }

    /// Releases one server at time `now` (a job finished service).
    ///
    /// If a job was waiting, it starts service and is returned along with
    /// its original enqueue time; the caller schedules its completion.
    ///
    /// # Panics
    ///
    /// Panics if no server was busy.
    pub fn release(&mut self, now: SimTime) -> Option<(J, SimTime)> {
        assert!(self.busy > 0, "release without a busy server");
        if self.busy > self.servers {
            // A shrink left more jobs in service than servers: retire the
            // freed server instead of starting new work.
            self.busy -= 1;
            self.busy_gauge.set(now.as_secs_f64(), self.busy as f64);
            return None;
        }
        if let Some((job, enq)) = self.queue.pop_front() {
            self.depth.set(now.as_secs_f64(), self.queue.len() as f64);
            self.waits.push((now - enq).as_secs_f64());
            self.started += 1;
            // busy count unchanged: the freed server immediately takes the
            // next job.
            Some((job, enq))
        } else {
            self.busy -= 1;
            self.busy_gauge.set(now.as_secs_f64(), self.busy as f64);
            None
        }
    }

    /// How long the job at the head of the queue has been waiting.
    pub fn head_wait(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|(_, t)| now.saturating_since(*t))
    }

    /// Statistics as of time `now`.
    pub fn stats(&self, now: SimTime) -> QueueStats {
        QueueStats {
            started: self.started,
            mean_wait: self.waits.mean(),
            max_wait: self.waits.max(),
            avg_depth: self.depth.time_average(now.as_secs_f64()),
            avg_busy: self.busy_gauge.time_average(now.as_secs_f64()),
            peak_depth: self.depth.peak(),
        }
    }

    /// Time-averaged utilization (busy servers / total) as of `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy_gauge.time_average(now.as_secs_f64()) / self.servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "server count must be positive")]
    fn rejects_zero_servers() {
        let _: MultiServer<u32> = MultiServer::new(0);
    }

    #[test]
    fn immediate_start_when_free() {
        let mut q: MultiServer<u32> = MultiServer::new(2);
        assert!(q.offer(SimTime::ZERO, 1).is_some());
        assert!(q.offer(SimTime::ZERO, 2).is_some());
        assert!(q.offer(SimTime::ZERO, 3).is_none());
        assert_eq!(q.busy(), 2);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q: MultiServer<u32> = MultiServer::new(1);
        q.offer(SimTime::ZERO, 1);
        q.offer(SimTime::from_nanos(1), 2);
        q.offer(SimTime::from_nanos(2), 3);
        let (j, _) = q.release(SimTime::from_nanos(10)).unwrap();
        assert_eq!(j, 2);
        let (j, _) = q.release(SimTime::from_nanos(20)).unwrap();
        assert_eq!(j, 3);
        assert!(q.release(SimTime::from_nanos(30)).is_none());
        assert_eq!(q.busy(), 0);
    }

    #[test]
    fn waits_recorded() {
        let mut q: MultiServer<u32> = MultiServer::new(1);
        q.offer(SimTime::ZERO, 1);
        q.offer(SimTime::ZERO, 2);
        q.release(SimTime::from_nanos(1_000_000_000)).unwrap();
        let s = q.stats(SimTime::from_nanos(1_000_000_000));
        assert_eq!(s.started, 2);
        // job 1 waited 0, job 2 waited 1s → mean 0.5
        assert!((s.mean_wait - 0.5).abs() < 1e-9);
        assert!((s.max_wait - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "release without a busy server")]
    fn release_idle_panics() {
        let mut q: MultiServer<u32> = MultiServer::new(1);
        q.release(SimTime::ZERO);
    }

    #[test]
    fn head_wait_reports_front() {
        let mut q: MultiServer<u32> = MultiServer::new(1);
        q.offer(SimTime::ZERO, 1);
        assert_eq!(q.head_wait(SimTime::from_nanos(5)), None);
        q.offer(SimTime::from_nanos(2), 2);
        assert_eq!(
            q.head_wait(SimTime::from_nanos(5)),
            Some(SimDuration::from_nanos(3))
        );
    }

    #[test]
    fn grow_starts_queued_jobs_immediately() {
        let mut q: MultiServer<u32> = MultiServer::new(1);
        q.offer(SimTime::ZERO, 1);
        q.offer(SimTime::ZERO, 2);
        q.offer(SimTime::ZERO, 3);
        q.offer(SimTime::ZERO, 4);
        let started = q.set_servers(SimTime::from_nanos(10), 3);
        assert_eq!(started.iter().map(|(j, _)| *j).collect::<Vec<_>>(), [2, 3]);
        assert_eq!((q.servers(), q.busy(), q.depth()), (3, 3, 1));
    }

    #[test]
    fn shrink_drains_without_preemption_or_lost_jobs() {
        let mut q: MultiServer<u32> = MultiServer::new(3);
        for j in 1..=5 {
            q.offer(SimTime::ZERO, j);
        }
        assert_eq!((q.busy(), q.depth()), (3, 2));
        assert!(q.set_servers(SimTime::from_nanos(1), 1).is_empty());
        // First two releases retire servers; queued jobs are NOT lost.
        assert!(q.release(SimTime::from_nanos(2)).is_none());
        assert!(q.release(SimTime::from_nanos(3)).is_none());
        assert_eq!((q.busy(), q.depth()), (1, 2));
        // The single remaining server now works the queue FIFO.
        assert_eq!(q.release(SimTime::from_nanos(4)).unwrap().0, 4);
        assert_eq!(q.release(SimTime::from_nanos(5)).unwrap().0, 5);
        assert!(q.release(SimTime::from_nanos(6)).is_none());
        assert_eq!(q.busy(), 0);
        // Resize clamps to one server, like the live pool.
        q.set_servers(SimTime::from_nanos(7), 0);
        assert_eq!(q.servers(), 1);
    }

    #[test]
    fn utilization_time_average() {
        let mut q: MultiServer<u32> = MultiServer::new(2);
        q.offer(SimTime::ZERO, 1); // 1 busy from t=0
        q.release(SimTime::from_nanos(500_000_000)); // idle from t=0.5s
                                                     // over [0, 1s]: busy-server integral = 0.5 → avg busy 0.5 → util 0.25
        let u = q.utilization(SimTime::from_nanos(1_000_000_000));
        assert!((u - 0.25).abs() < 1e-9);
    }
}
