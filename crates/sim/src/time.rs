//! Integer nanosecond simulation clock.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// Integer time guarantees a total order on events and exact reproducibility
/// across platforms — float clocks accumulate drift and break determinism.
///
/// # Examples
///
/// ```
/// use vserve_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_secs_f64(), 0.003);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(3000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; `Engine::run` until `MAX` means "run to exhaustion".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start as `f64` (for metrics only; never for ordering).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use vserve_sim::SimDuration;
///
/// let d = SimDuration::from_secs_f64(0.5) + SimDuration::from_millis(250);
/// assert_eq!(d.as_secs_f64(), 0.75);
/// assert_eq!(d * 2, SimDuration::from_millis(1500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives/NaN to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span in seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Span in milliseconds as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "time went backwards: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(300);
        assert_eq!(b.saturating_since(a).as_nanos(), 200);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
    }

    proptest! {
        #[test]
        fn add_sub_inverse(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
            let t = SimTime::from_nanos(a);
            let dur = SimDuration::from_nanos(d);
            prop_assert_eq!((t + dur) - t, dur);
        }

        #[test]
        fn ordering_consistent_with_nanos(a in any::<u64>(), b in any::<u64>()) {
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        }
    }
}
