//! Deterministic named random streams and sampling distributions.
//!
//! Every stochastic component of an experiment (arrivals, image sizes,
//! faces per frame) draws from its own named stream derived from one master
//! seed, so adding a component never perturbs the draws of another — a
//! standard variance-reduction and reproducibility technique in discrete-
//! event simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream.
///
/// # Examples
///
/// ```
/// use vserve_sim::rng::RngStream;
///
/// let mut a = RngStream::derive(42, "arrivals");
/// let mut b = RngStream::derive(42, "arrivals");
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// let mut c = RngStream::derive(42, "sizes");
/// // Different name ⇒ independent stream (almost surely different draw).
/// let _ = c.uniform(0.0, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: StdRng,
}

impl RngStream {
    /// Creates a stream from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        RngStream {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives a stream from a master seed and a component name.
    ///
    /// The same `(master, name)` pair always yields the same stream.
    pub fn derive(master: u64, name: &str) -> Self {
        // FNV-1a over the name, mixed with the master seed via splitmix64.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut z = master ^ h;
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        RngStream::new(z)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform requires lo < hi");
        lo + (hi - lo) * self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 requires lo <= hi");
        self.rng.gen_range(lo..=hi)
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = self.rng.gen::<f64>();
        -(1.0 - u).ln() / rate
    }

    /// Log-normal draw with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Standard normal draw via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Poisson draw with mean `lambda` (Knuth's method; intended for small
    /// means such as faces-per-frame).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson mean must be non-negative"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            // Normal approximation for large means.
            let x = lambda + lambda.sqrt() * self.standard_normal();
            return x.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Zipf draw over `{1, …, n}` with exponent `s`, by inverse CDF on the
    /// precomputable harmonic weights (O(n) per draw; fine for small `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "zipf support must be non-empty");
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.rng.gen::<f64>() * norm;
        for k in 1..=n {
            u -= 1.0 / (k as f64).powf(s);
            if u <= 0.0 {
                return k;
            }
        }
        n
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut u = self.rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Raw `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_name_sensitive() {
        let mut a = RngStream::derive(1, "x");
        let mut b = RngStream::derive(1, "x");
        let mut c = RngStream::derive(1, "y");
        let (va, vb, vc) = (a.next_f64(), b.next_f64(), c.next_f64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn exp_mean_close() {
        let mut r = RngStream::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_mean_close() {
        let mut r = RngStream::new(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut r = RngStream::new(1);
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn poisson_large_mean_uses_normal() {
        let mut r = RngStream::new(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn zipf_in_support_and_skewed() {
        let mut r = RngStream::new(7);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            let k = r.zipf(10, 1.2);
            assert!((1..=10).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = RngStream::new(11);
        let mut hits = [0u32; 3];
        for _ in 0..30_000 {
            hits[r.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(hits[1], 0);
        let ratio = hits[2] as f64 / hits[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn log_normal_median_close() {
        let mut r = RngStream::new(13);
        let n = 60_000;
        let mut xs: Vec<f64> = (0..n).map(|_| r.log_normal(2.0, 0.7)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[n / 2];
        assert!((median - 2.0f64.exp()).abs() < 0.3, "median {median}");
    }

    #[test]
    #[should_panic(expected = "uniform requires lo < hi")]
    fn uniform_validates_range() {
        let mut r = RngStream::new(1);
        let _ = r.uniform(1.0, 1.0);
    }
}
