//! Discrete-event simulation kernel for the `vserve` serving-system model.
//!
//! The paper's experiments run a throughput-optimized inference server on a
//! CPU+GPU node. This crate provides the deterministic virtual-time
//! machinery on which `vserve-server` builds that model:
//!
//! * [`SimTime`] / [`SimDuration`] — integer nanosecond clock (no float
//!   drift, total event order).
//! * [`Engine`] — event queue of boxed closures over a user state type,
//!   with stable FIFO tie-breaking and event cancellation.
//! * [`MultiServer`] — a *c*-server FIFO queue state machine (CPU worker
//!   pools, GPU execution slots).
//! * [`SharedBandwidth`] — an egalitarian processor-sharing resource
//!   (PCIe links, host staging memcpy bandwidth) with exact completion
//!   prediction under job arrivals/departures.
//! * [`rng`] — deterministic, named random streams plus the distributions
//!   used by workload generation.
//!
//! # Examples
//!
//! A three-event simulation:
//!
//! ```
//! use vserve_sim::{Engine, SimDuration, SimTime};
//!
//! #[derive(Default)]
//! struct World { fired: Vec<u32> }
//!
//! let mut engine = Engine::new();
//! let mut world = World::default();
//! engine.schedule_in(SimDuration::from_millis(5), Box::new(|w: &mut World, _e: &mut Engine<World>| {
//!     w.fired.push(2);
//! }));
//! engine.schedule_in(SimDuration::from_millis(1), Box::new(|w: &mut World, e: &mut Engine<World>| {
//!     w.fired.push(1);
//!     e.schedule_in(SimDuration::from_millis(1), Box::new(|w: &mut World, _| w.fired.push(3)));
//! }));
//! engine.run(&mut world, SimTime::MAX);
//! assert_eq!(world.fired, vec![1, 3, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod ps;
mod queue;
pub mod rng;
mod time;

pub use engine::{Engine, EventFn, EventId};
pub use ps::{PsCompletion, SharedBandwidth};
pub use queue::{MultiServer, QueueStats};
pub use time::{SimDuration, SimTime};
