//! Event loop: a time-ordered queue of boxed closures over a state type.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::{SimDuration, SimTime};

/// An event handler: runs against the user state and may schedule more
/// events through the engine.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Engine<S>)>;

/// Identifier of a scheduled event, usable with [`Engine::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    f: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    // Reverse order so BinaryHeap pops the earliest event; ties broken by
    // insertion sequence for deterministic FIFO semantics.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event loop.
///
/// Events are `FnOnce(&mut S, &mut Engine<S>)` closures ordered by time with
/// FIFO tie-breaking. Handlers may schedule or cancel further events. The
/// clock only moves when [`run`](Self::run) pops events; it never runs
/// backwards.
///
/// See the [crate-level example](crate) for usage.
pub struct Engine<S> {
    now: SimTime,
    heap: BinaryHeap<Scheduled<S>>,
    seq: u64,
    cancelled: HashSet<u64>,
    executed: u64,
}

impl<S> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S> Engine<S> {
    /// Creates an engine at time zero with no pending events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending (not yet executed or cancelled) events.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// Schedules `f` at absolute time `at`.
    ///
    /// Times before `now` are clamped to `now` (the event still runs, after
    /// already-queued events at `now`).
    pub fn schedule_at(&mut self, at: SimTime, f: EventFn<S>) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, f });
        EventId(seq)
    }

    /// Schedules `f` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, f: EventFn<S>) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancels a pending event. Cancelling an already-run or unknown event
    /// is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Runs events in order until the queue drains or the next event would
    /// be after `until`. Returns the number of events executed by this call.
    ///
    /// Events scheduled exactly at `until` are executed.
    pub fn run(&mut self, state: &mut S, until: SimTime) -> u64 {
        let start_count = self.executed;
        while let Some(head) = self.heap.peek() {
            if head.at > until {
                break;
            }
            let ev = self.heap.pop().expect("peeked event must pop");
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue yielded past event");
            self.now = ev.at;
            self.executed += 1;
            (ev.f)(state, self);
        }
        if until != SimTime::MAX && self.now < until {
            self.now = until;
        }
        self.executed - start_count
    }

    /// Runs a single event if one is pending. Returns its time, or `None`
    /// if the queue is empty.
    pub fn step(&mut self, state: &mut S) -> Option<SimTime> {
        loop {
            let ev = self.heap.pop()?;
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = ev.at;
            self.executed += 1;
            (ev.f)(state, self);
            return Some(self.now);
        }
    }
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = Engine<Vec<u32>>;

    fn push(v: u32) -> EventFn<Vec<u32>> {
        Box::new(move |s: &mut Vec<u32>, _: &mut E| s.push(v))
    }

    #[test]
    fn events_run_in_time_order() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(SimTime::from_nanos(30), push(3));
        e.schedule_at(SimTime::from_nanos(10), push(1));
        e.schedule_at(SimTime::from_nanos(20), push(2));
        e.run(&mut s, SimTime::MAX);
        assert_eq!(s, vec![1, 2, 3]);
        assert_eq!(e.executed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut e = E::new();
        let mut s = Vec::new();
        for v in 0..10 {
            e.schedule_at(SimTime::from_nanos(5), push(v));
        }
        e.run(&mut s, SimTime::MAX);
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(
            SimTime::from_nanos(1),
            Box::new(|s: &mut Vec<u32>, e: &mut E| {
                s.push(1);
                e.schedule_in(SimDuration::from_nanos(1), push(2));
            }),
        );
        e.run(&mut s, SimTime::MAX);
        assert_eq!(s, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_nanos(2));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut e = E::new();
        let mut s = Vec::new();
        let id = e.schedule_at(SimTime::from_nanos(5), push(9));
        e.schedule_at(SimTime::from_nanos(6), push(1));
        e.cancel(id);
        e.run(&mut s, SimTime::MAX);
        assert_eq!(s, vec![1]);
        assert_eq!(e.executed(), 1);
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut e = E::new();
        e.cancel(EventId(42));
        let mut s = Vec::new();
        assert_eq!(e.run(&mut s, SimTime::MAX), 0);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), push(1));
        e.schedule_at(SimTime::from_nanos(100), push(2));
        let n = e.run(&mut s, SimTime::from_nanos(50));
        assert_eq!(n, 1);
        assert_eq!(s, vec![1]);
        assert_eq!(e.now(), SimTime::from_nanos(50));
        e.run(&mut s, SimTime::MAX);
        assert_eq!(s, vec![1, 2]);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(
            SimTime::from_nanos(10),
            Box::new(|s: &mut Vec<u32>, e: &mut E| {
                s.push(1);
                // "yesterday" — must still run, at now.
                e.schedule_at(SimTime::from_nanos(1), push(2));
            }),
        );
        e.run(&mut s, SimTime::MAX);
        assert_eq!(s, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn step_runs_one_event() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(SimTime::from_nanos(1), push(1));
        e.schedule_at(SimTime::from_nanos(2), push(2));
        assert_eq!(e.step(&mut s), Some(SimTime::from_nanos(1)));
        assert_eq!(s, vec![1]);
        assert_eq!(e.step(&mut s), Some(SimTime::from_nanos(2)));
        assert_eq!(e.step(&mut s), None);
    }

    #[test]
    fn pending_counts_exclude_cancelled() {
        let mut e = E::new();
        let a = e.schedule_at(SimTime::from_nanos(1), push(1));
        e.schedule_at(SimTime::from_nanos(2), push(2));
        assert_eq!(e.pending(), 2);
        e.cancel(a);
        assert_eq!(e.pending(), 1);
    }
}
