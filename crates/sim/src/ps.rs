//! Egalitarian processor-sharing bandwidth resource.

use std::collections::HashMap;

use vserve_metrics::TimeWeightedGauge;

use crate::{SimDuration, SimTime};

/// Minimum bytes of slack below which a transfer counts as finished.
const DONE_EPS_BYTES: f64 = 0.5;

/// Predicted completion of the earliest-finishing transfer on a
/// [`SharedBandwidth`] resource.
///
/// The `epoch` field detects staleness: every mutation of the resource bumps
/// its epoch, so an event scheduled from an old prediction can recognize it
/// has been superseded and do nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsCompletion {
    /// Virtual time at which the earliest transfer finishes.
    pub at: SimTime,
    /// Resource epoch at prediction time; compare with
    /// [`SharedBandwidth::epoch`].
    pub epoch: u64,
}

/// A shared link with egalitarian processor sharing.
///
/// Models PCIe links and host staging bandwidth: `n` concurrent transfers
/// each progress at `capacity / n` bytes per second. This produces the
/// transfer-contention effects behind the paper's multi-GPU scaling knee
/// (Fig 9): when preprocessing floods the staging path, adding GPUs stops
/// helping.
///
/// The resource is a pure state machine. After any call to
/// [`start`](Self::start) or [`take_completed`](Self::take_completed), the
/// caller should (re)schedule an event at
/// [`next_completion`](Self::next_completion) and validate its epoch when
/// the event fires.
///
/// # Examples
///
/// ```
/// use vserve_sim::{SharedBandwidth, SimTime};
///
/// // 1000 bytes/s link, two simultaneous 500-byte transfers.
/// let mut link = SharedBandwidth::new(1000.0);
/// let t0 = SimTime::ZERO;
/// link.start(t0, 500.0);
/// link.start(t0, 500.0);
/// let next = link.next_completion(t0).unwrap();
/// // Each gets 500 B/s, so both finish after 1 s.
/// assert_eq!(next.at.as_secs_f64(), 1.0);
/// let done = link.take_completed(next.at);
/// assert_eq!(done.len(), 2);
/// ```
#[derive(Debug)]
pub struct SharedBandwidth {
    capacity: f64,
    /// Bytes of slack treated as "finished": at least [`DONE_EPS_BYTES`],
    /// and never less than what the link moves in 2 ns — otherwise the
    /// integer-nanosecond clock could round a completion time down and
    /// strand a job forever just above the threshold.
    done_eps: f64,
    last: SimTime,
    jobs: HashMap<u64, f64>,
    next_id: u64,
    epoch: u64,
    active_gauge: TimeWeightedGauge,
    /// Total bytes ever offered to the link (accumulated in `start` call
    /// order). Completed bytes are derived as `offered - in_flight`, so a
    /// finished job contributes exactly its requested size — no rounding
    /// drift from per-tick accumulation, no `done_eps` slack counted as
    /// transferred.
    offered: f64,
}

impl SharedBandwidth {
    /// Creates a link with `capacity` bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive, got {capacity}"
        );
        SharedBandwidth {
            capacity,
            done_eps: (capacity * 2e-9).max(DONE_EPS_BYTES),
            last: SimTime::ZERO,
            jobs: HashMap::new(),
            next_id: 0,
            epoch: 0,
            active_gauge: TimeWeightedGauge::new(0.0, 0.0),
            offered: 0.0,
        }
    }

    /// Link capacity in bytes per second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of in-flight transfers.
    pub fn active(&self) -> usize {
        self.jobs.len()
    }

    /// Current epoch; compare against [`PsCompletion::epoch`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total bytes transferred so far, including partial progress of
    /// in-flight jobs. Once a job completes it has contributed exactly its
    /// requested size; with the link drained this equals the sum of all
    /// offered sizes.
    pub fn bytes_done(&self) -> f64 {
        // Sum remaining bytes in ascending-id order: HashMap iteration
        // order must not leak into reported totals (determinism).
        let mut ids: Vec<u64> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        let in_flight: f64 = ids.iter().map(|id| self.jobs[id]).sum();
        (self.offered - in_flight).max(0.0)
    }

    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "time went backwards in SharedBandwidth");
        if self.jobs.is_empty() {
            self.last = now;
            return;
        }
        let dt = (now - self.last).as_secs_f64();
        if dt > 0.0 {
            let per_job = self.capacity / self.jobs.len() as f64 * dt;
            for rem in self.jobs.values_mut() {
                *rem -= per_job.min(*rem);
            }
        }
        self.last = now;
    }

    /// Starts a transfer of `bytes` at time `now`, returning its id.
    ///
    /// Zero or negative sizes complete instantly on the next
    /// [`take_completed`](Self::take_completed).
    pub fn start(&mut self, now: SimTime, bytes: f64) -> u64 {
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        let bytes = bytes.max(0.0);
        self.offered += bytes;
        self.jobs.insert(id, bytes);
        self.epoch += 1;
        self.active_gauge
            .set(now.as_secs_f64(), self.jobs.len() as f64);
        id
    }

    /// Predicted completion of the earliest-finishing transfer.
    ///
    /// Returns `None` when idle. The prediction is exact under the equal-
    /// share discipline *provided no further arrivals occur*; arrivals bump
    /// the epoch so stale predictions are detectable.
    pub fn next_completion(&self, now: SimTime) -> Option<PsCompletion> {
        if self.jobs.is_empty() {
            return None;
        }
        let elapsed = (now.max(self.last) - self.last).as_secs_f64();
        let share = self.capacity / self.jobs.len() as f64;
        let min_rem = self
            .jobs
            .values()
            .map(|r| (r - share * elapsed).max(0.0))
            .fold(f64::INFINITY, f64::min);
        let dt = if min_rem <= self.done_eps {
            0.0
        } else {
            min_rem / share
        };
        Some(PsCompletion {
            at: now.max(self.last) + SimDuration::from_secs_f64(dt),
            epoch: self.epoch,
        })
    }

    /// Advances to `now` and removes every finished transfer, returning
    /// their ids (ascending order for determinism).
    pub fn take_completed(&mut self, now: SimTime) -> Vec<u64> {
        self.advance(now);
        let mut done: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, &rem)| rem <= self.done_eps)
            .map(|(&id, _)| id)
            .collect();
        done.sort_unstable();
        for id in &done {
            self.jobs.remove(id);
        }
        if !done.is_empty() {
            self.epoch += 1;
            self.active_gauge
                .set(now.as_secs_f64(), self.jobs.len() as f64);
        }
        done
    }

    /// Time-averaged number of concurrent transfers as of `now`.
    pub fn avg_active(&self, now: SimTime) -> f64 {
        self.active_gauge.time_average(now.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_bad_capacity() {
        let _ = SharedBandwidth::new(0.0);
    }

    #[test]
    fn single_job_full_rate() {
        let mut link = SharedBandwidth::new(100.0);
        link.start(SimTime::ZERO, 50.0);
        let c = link.next_completion(SimTime::ZERO).unwrap();
        assert!((c.at.as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(link.take_completed(c.at), vec![0]);
        assert_eq!(link.active(), 0);
    }

    #[test]
    fn late_arrival_slows_first() {
        let mut link = SharedBandwidth::new(100.0);
        link.start(SimTime::ZERO, 100.0); // alone: would finish at 1 s
        let mid = SimTime::from_nanos(500_000_000);
        link.start(mid, 100.0); // arrives at 0.5 s
                                // First job has 50 B left at 0.5 s, now at 50 B/s → finishes at 1.5 s.
        let c = link.next_completion(mid).unwrap();
        assert!((c.at.as_secs_f64() - 1.5).abs() < 1e-6);
        let done = link.take_completed(c.at);
        assert_eq!(done, vec![0]);
        // Second job: 50 B left, alone at 100 B/s → 0.5 s more.
        let c2 = link.next_completion(c.at).unwrap();
        assert!((c2.at.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn epoch_detects_staleness() {
        let mut link = SharedBandwidth::new(100.0);
        link.start(SimTime::ZERO, 100.0);
        let stale = link.next_completion(SimTime::ZERO).unwrap();
        link.start(SimTime::from_nanos(1), 10.0);
        assert_ne!(stale.epoch, link.epoch());
        let fresh = link.next_completion(SimTime::from_nanos(1)).unwrap();
        assert_eq!(fresh.epoch, link.epoch());
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut link = SharedBandwidth::new(10.0);
        link.start(SimTime::ZERO, 0.0);
        let c = link.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(c.at, SimTime::ZERO);
        assert_eq!(link.take_completed(SimTime::ZERO).len(), 1);
    }

    #[test]
    fn idle_has_no_completion() {
        let link = SharedBandwidth::new(10.0);
        assert!(link.next_completion(SimTime::ZERO).is_none());
    }

    proptest! {
        /// Work conservation: with jobs always present, total transferred
        /// bytes equal capacity × elapsed time, and every job finishes no
        /// earlier than its solo transfer time.
        #[test]
        fn conservation(sizes in prop::collection::vec(1.0f64..1e6, 1..20)) {
            let cap = 1e6;
            let mut link = SharedBandwidth::new(cap);
            let total: f64 = sizes.iter().sum();
            for &s in &sizes {
                link.start(SimTime::ZERO, s);
            }
            let mut now = SimTime::ZERO;
            let mut completed = 0usize;
            let mut guard = 0;
            while completed < sizes.len() {
                let c = link.next_completion(now).unwrap();
                now = c.at;
                completed += link.take_completed(now).len();
                guard += 1;
                prop_assert!(guard < 1000, "no progress");
            }
            let expect = total / cap;
            prop_assert!((now.as_secs_f64() - expect).abs() < 1e-6 * (1.0 + expect),
                "finished at {} expected {}", now.as_secs_f64(), expect);
            // Byte conservation is exact, not approximate: with the link
            // drained, completed bytes equal the offered sizes to the bit.
            prop_assert_eq!(link.bytes_done(), total);
        }
    }
}
