//! Validation of the DES kernel against closed-form queueing theory.
//!
//! If the engine, queue, and RNG are correct, an M/M/1 queue simulated on
//! them must match Pollaczek–Khinchine/Erlang results. These tests anchor
//! the serving simulation's credibility.

use vserve_metrics::Welford;
use vserve_sim::rng::RngStream;
use vserve_sim::{Engine, MultiServer, SimDuration, SimTime};

struct Mm {
    queue: MultiServer<u64>,
    rng_arrivals: RngStream,
    rng_service: RngStream,
    lambda: f64,
    mu: f64,
    next_job: u64,
    waits: Welford,
    system_times: Welford,
    started: std::collections::HashMap<u64, SimTime>,
    measure_from: SimTime,
}

type Eng = Engine<Mm>;

fn arrive(sim: &mut Mm, eng: &mut Eng) {
    let id = sim.next_job;
    sim.next_job += 1;
    let now = eng.now();
    sim.started.insert(id, now);
    if let Some((job, enq)) = sim.queue.offer(now, id) {
        start_service(sim, eng, job, enq);
    }
    let gap = sim.rng_arrivals.exp(sim.lambda);
    eng.schedule_in(
        SimDuration::from_secs_f64(gap),
        Box::new(|sim: &mut Mm, eng: &mut Eng| arrive(sim, eng)),
    );
}

fn start_service(sim: &mut Mm, eng: &mut Eng, job: u64, enqueued: SimTime) {
    let now = eng.now();
    if now >= sim.measure_from {
        sim.waits.push((now - enqueued).as_secs_f64());
    }
    let service = sim.rng_service.exp(sim.mu);
    eng.schedule_in(
        SimDuration::from_secs_f64(service),
        Box::new(move |sim: &mut Mm, eng: &mut Eng| depart(sim, eng, job)),
    );
}

fn depart(sim: &mut Mm, eng: &mut Eng, job: u64) {
    let now = eng.now();
    if let Some(t0) = sim.started.remove(&job) {
        if now >= sim.measure_from {
            sim.system_times.push((now - t0).as_secs_f64());
        }
    }
    if let Some((next, enq)) = sim.queue.release(now) {
        start_service(sim, eng, next, enq);
    }
}

fn run_mm(servers: usize, lambda: f64, mu: f64, horizon_s: f64, seed: u64) -> Mm {
    let mut sim = Mm {
        queue: MultiServer::new(servers),
        rng_arrivals: RngStream::derive(seed, "arrivals"),
        rng_service: RngStream::derive(seed, "service"),
        lambda,
        mu,
        next_job: 0,
        waits: Welford::new(),
        system_times: Welford::new(),
        started: std::collections::HashMap::new(),
        measure_from: SimTime::ZERO + SimDuration::from_secs_f64(horizon_s * 0.2),
    };
    let mut eng: Eng = Engine::new();
    eng.schedule_at(
        SimTime::ZERO,
        Box::new(|sim: &mut Mm, eng: &mut Eng| arrive(sim, eng)),
    );
    eng.run(
        &mut sim,
        SimTime::ZERO + SimDuration::from_secs_f64(horizon_s),
    );
    sim
}

/// M/M/1: E[T] = 1/(μ−λ), E[Wq] = ρ/(μ−λ).
#[test]
fn mm1_matches_closed_form() {
    let (lambda, mu) = (700.0, 1000.0); // ρ = 0.7
    let sim = run_mm(1, lambda, mu, 400.0, 42);
    let expect_t = 1.0 / (mu - lambda);
    let expect_w = (lambda / mu) / (mu - lambda);
    let t = sim.system_times.mean();
    let w = sim.waits.mean();
    assert!(
        (t - expect_t).abs() / expect_t < 0.06,
        "E[T] {t:.6} vs {expect_t:.6}"
    );
    assert!(
        (w - expect_w).abs() / expect_w < 0.08,
        "E[Wq] {w:.6} vs {expect_w:.6}"
    );
}

/// M/M/1 at low load: waiting is near zero, E[T] ≈ 1/μ.
#[test]
fn mm1_light_load() {
    let (lambda, mu) = (50.0, 1000.0); // ρ = 0.05
    let sim = run_mm(1, lambda, mu, 200.0, 7);
    assert!(sim.waits.mean() < 0.1 / mu, "wait {:.6}", sim.waits.mean());
    let t = sim.system_times.mean();
    assert!((t - 1.0 / mu).abs() / (1.0 / mu) < 0.1, "E[T] {t:.6}");
}

/// M/M/c: mean queueing delay follows the Erlang-C formula.
#[test]
fn mmc_matches_erlang_c() {
    let (c, lambda, mu) = (4usize, 3000.0, 1000.0); // ρ = 0.75
    let sim = run_mm(c, lambda, mu, 300.0, 11);

    // Erlang C.
    let a = lambda / mu;
    let rho = a / c as f64;
    let mut sum = 0.0;
    let mut term = 1.0;
    for k in 0..c {
        if k > 0 {
            term *= a / k as f64;
        }
        sum += term;
    }
    let pc_num = term * a / c as f64 / (1.0 - rho);
    let p_wait = pc_num / (sum + pc_num);
    let expect_w = p_wait / (c as f64 * mu - lambda);

    let w = sim.waits.mean();
    assert!(
        (w - expect_w).abs() / expect_w < 0.12,
        "E[Wq] {w:.6} vs Erlang-C {expect_w:.6}"
    );
}

/// Utilization matches ρ for a stable queue.
#[test]
fn utilization_matches_rho() {
    let (lambda, mu) = (600.0, 1000.0);
    let horizon = 200.0;
    let sim = run_mm(1, lambda, mu, horizon, 3);
    let util = sim
        .queue
        .utilization(SimTime::ZERO + SimDuration::from_secs_f64(horizon));
    assert!((util - 0.6).abs() < 0.03, "utilization {util:.3}");
}
