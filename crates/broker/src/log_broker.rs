//! Disk-backed append-log message broker (the Kafka-like arm of §4.7).
//!
//! Records are framed `u32-length || payload` in per-topic segment files;
//! durability comes from an explicit fsync policy. Consumer groups track
//! committed offsets. This is deliberately the same storage architecture
//! that makes Kafka durable — and the same architecture whose write/fsync
//! path the paper identifies as the dominant multi-DNN pipeline overhead.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::{Broker, BrokerError, FsyncPolicy};

struct TopicLog {
    writer: File,
    reader: File,
    /// Byte position of each record, indexed by offset.
    index: Vec<u64>,
    /// Bytes appended so far.
    tail: u64,
    /// Appends since the last fsync (for [`FsyncPolicy::EveryN`]).
    unsynced: usize,
    /// Committed next-offset per consumer group.
    groups: HashMap<String, u64>,
}

/// A durable, disk-backed broker rooted at a directory.
///
/// # Examples
///
/// ```
/// use vserve_broker::{Broker, FsyncPolicy, LogBroker};
///
/// # fn main() -> Result<(), vserve_broker::BrokerError> {
/// let dir = std::env::temp_dir().join(format!("vserve-log-{}", std::process::id()));
/// let broker = LogBroker::open(&dir, FsyncPolicy::EveryN(64))?;
/// broker.publish("faces", b"frame-1")?;
/// let msgs = broker.fetch("faces", "identifiers", 10)?;
/// assert_eq!(msgs.len(), 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
pub struct LogBroker {
    dir: PathBuf,
    fsync: FsyncPolicy,
    topics: Mutex<HashMap<String, TopicLog>>,
}

impl std::fmt::Debug for LogBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogBroker")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .finish()
    }
}

impl LogBroker {
    /// Opens (creating if needed) a broker rooted at `dir`.
    ///
    /// Existing topic segments in the directory are recovered: their
    /// record index is rebuilt by scanning the framing.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Io`] if the directory cannot be created or a
    /// segment cannot be read, and [`BrokerError::Corrupt`] if a segment's
    /// framing is damaged.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Result<Self, BrokerError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut topics = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("seg") {
                let name = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or_default()
                    .to_owned();
                let log = Self::recover(&path)?;
                topics.insert(name, log);
            }
        }
        Ok(LogBroker {
            dir,
            fsync,
            topics: Mutex::new(topics),
        })
    }

    fn segment_path(&self, topic: &str) -> PathBuf {
        self.dir.join(format!("{topic}.seg"))
    }

    fn recover(path: &PathBuf) -> Result<TopicLog, BrokerError> {
        let mut reader = File::open(path)?;
        let mut data = Vec::new();
        reader.read_to_end(&mut data)?;
        let mut index = Vec::new();
        let mut pos = 0u64;
        while (pos as usize) < data.len() {
            let p = pos as usize;
            if p + 4 > data.len() {
                return Err(BrokerError::Corrupt("truncated length header"));
            }
            let len = u32::from_le_bytes([data[p], data[p + 1], data[p + 2], data[p + 3]]) as u64;
            if p as u64 + 4 + len > data.len() as u64 {
                return Err(BrokerError::Corrupt("truncated record body"));
            }
            index.push(pos);
            pos += 4 + len;
        }
        let writer = OpenOptions::new().append(true).open(path)?;
        let reader = File::open(path)?;
        Ok(TopicLog {
            writer,
            reader,
            index,
            tail: pos,
            unsynced: 0,
            groups: HashMap::new(),
        })
    }

    fn topic_mut<'a>(
        &self,
        topics: &'a mut HashMap<String, TopicLog>,
        topic: &str,
    ) -> Result<&'a mut TopicLog, BrokerError> {
        if !topics.contains_key(topic) {
            let path = self.segment_path(topic);
            let writer = OpenOptions::new().create(true).append(true).open(&path)?;
            let reader = File::open(&path)?;
            topics.insert(
                topic.to_owned(),
                TopicLog {
                    writer,
                    reader,
                    index: Vec::new(),
                    tail: 0,
                    unsynced: 0,
                    groups: HashMap::new(),
                },
            );
        }
        Ok(topics.get_mut(topic).expect("inserted above"))
    }

    /// Number of records in `topic` (0 for unknown topics).
    pub fn len(&self, topic: &str) -> usize {
        self.topics.lock().get(topic).map_or(0, |t| t.index.len())
    }

    /// Whether `topic` holds no records.
    pub fn is_empty(&self, topic: &str) -> bool {
        self.len(topic) == 0
    }
}

impl Broker for LogBroker {
    fn publish(&self, topic: &str, payload: &[u8]) -> Result<u64, BrokerError> {
        let mut topics = self.topics.lock();
        let fsync = self.fsync;
        let log = self.topic_mut(&mut topics, topic)?;
        let offset = log.index.len() as u64;
        let len = payload.len() as u32;
        log.writer.write_all(&len.to_le_bytes())?;
        log.writer.write_all(payload)?;
        log.index.push(log.tail);
        log.tail += 4 + u64::from(len);
        log.unsynced += 1;
        let must_sync = match fsync {
            FsyncPolicy::PerMessage => true,
            FsyncPolicy::EveryN(n) => log.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if must_sync {
            log.writer.sync_data()?;
            log.unsynced = 0;
        }
        Ok(offset)
    }

    fn fetch(&self, topic: &str, group: &str, max: usize) -> Result<Vec<Bytes>, BrokerError> {
        let mut topics = self.topics.lock();
        let log = match topics.get_mut(topic) {
            Some(l) => l,
            None => return Err(BrokerError::UnknownTopic(topic.to_owned())),
        };
        let start = *log.groups.get(group).unwrap_or(&0);
        let end = (start as usize + max).min(log.index.len()) as u64;
        let mut out = Vec::with_capacity((end - start) as usize);
        for off in start..end {
            let pos = log.index[off as usize];
            log.reader.seek(SeekFrom::Start(pos))?;
            let mut hdr = [0u8; 4];
            log.reader.read_exact(&mut hdr)?;
            let len = u32::from_le_bytes(hdr) as usize;
            let mut buf = vec![0u8; len];
            log.reader.read_exact(&mut buf)?;
            out.push(Bytes::from(buf));
        }
        log.groups.insert(group.to_owned(), end);
        Ok(out)
    }

    fn depth(&self, topic: &str, group: &str) -> usize {
        self.topics.lock().get(topic).map_or(0, |log| {
            log.index.len() - *log.groups.get(group).unwrap_or(&0) as usize
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vserve-logbroker-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn publish_fetch_fifo() {
        let dir = temp_dir("fifo");
        let b = LogBroker::open(&dir, FsyncPolicy::Never).unwrap();
        for i in 0..10u8 {
            b.publish("t", &[i]).unwrap();
        }
        let first = b.fetch("t", "g", 4).unwrap();
        assert_eq!(first.len(), 4);
        assert_eq!(first[0].as_ref(), &[0]);
        let rest = b.fetch("t", "g", 100).unwrap();
        assert_eq!(rest.len(), 6);
        assert_eq!(rest[5].as_ref(), &[9]);
        assert_eq!(b.depth("t", "g"), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn independent_consumer_groups() {
        let dir = temp_dir("groups");
        let b = LogBroker::open(&dir, FsyncPolicy::Never).unwrap();
        b.publish("t", b"x").unwrap();
        assert_eq!(b.fetch("t", "g1", 10).unwrap().len(), 1);
        assert_eq!(b.fetch("t", "g2", 10).unwrap().len(), 1);
        assert_eq!(b.fetch("t", "g1", 10).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_topic_fetch_errors() {
        let dir = temp_dir("unknown");
        let b = LogBroker::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(matches!(
            b.fetch("absent", "g", 1),
            Err(BrokerError::UnknownTopic(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_after_reopen() {
        let dir = temp_dir("recover");
        {
            let b = LogBroker::open(&dir, FsyncPolicy::PerMessage).unwrap();
            b.publish("t", b"alpha").unwrap();
            b.publish("t", b"beta").unwrap();
        }
        let b = LogBroker::open(&dir, FsyncPolicy::PerMessage).unwrap();
        assert_eq!(b.len("t"), 2);
        let msgs = b.fetch("t", "g", 10).unwrap();
        assert_eq!(msgs[0].as_ref(), b"alpha");
        assert_eq!(msgs[1].as_ref(), b"beta");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_detected() {
        let dir = temp_dir("corrupt");
        {
            let b = LogBroker::open(&dir, FsyncPolicy::PerMessage).unwrap();
            b.publish("t", b"payload").unwrap();
        }
        // Truncate mid-record.
        let path = dir.join("t.seg");
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();
        assert!(matches!(
            LogBroker::open(&dir, FsyncPolicy::PerMessage),
            Err(BrokerError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn large_payload_round_trips() {
        let dir = temp_dir("large");
        let b = LogBroker::open(&dir, FsyncPolicy::EveryN(8)).unwrap();
        let payload: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        b.publish("big", &payload).unwrap();
        let got = b.fetch("big", "g", 1).unwrap();
        assert_eq!(got[0].as_ref(), payload.as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::Broker;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vserve-logbroker2-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn every_n_policy_still_round_trips() {
        let dir = temp_dir("everyn");
        let b = LogBroker::open(&dir, FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..10u8 {
            b.publish("t", &[i]).unwrap();
        }
        let got = b.fetch("t", "g", 100).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[9].as_ref(), &[9]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_producers_and_consumer() {
        let dir = temp_dir("mt");
        let b = Arc::new(LogBroker::open(&dir, FsyncPolicy::Never).unwrap());
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        b.publish("t", &(p * 1000 + i).to_le_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut total = 0;
        loop {
            let got = b.fetch("t", "g", 7).unwrap();
            if got.is_empty() {
                break;
            }
            total += got.len();
        }
        assert_eq!(total, 150);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multiple_topics_are_isolated() {
        let dir = temp_dir("topics");
        let b = LogBroker::open(&dir, FsyncPolicy::Never).unwrap();
        b.publish("a", b"alpha").unwrap();
        b.publish("b", b"beta").unwrap();
        assert_eq!(b.fetch("a", "g", 10).unwrap()[0].as_ref(), b"alpha");
        assert_eq!(b.fetch("b", "g", 10).unwrap()[0].as_ref(), b"beta");
        assert_eq!(b.len("a"), 1);
        assert_eq!(b.len("b"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payload_round_trips() {
        let dir = temp_dir("empty");
        let b = LogBroker::open(&dir, FsyncPolicy::PerMessage).unwrap();
        b.publish("t", b"").unwrap();
        let got = b.fetch("t", "g", 1).unwrap();
        assert!(got[0].is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
