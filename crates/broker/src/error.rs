//! Broker error type.

/// Errors returned by broker operations.
#[derive(Debug)]
pub enum BrokerError {
    /// Underlying storage I/O failed.
    Io(std::io::Error),
    /// The requested topic does not exist.
    UnknownTopic(String),
    /// A stored record was truncated or corrupt.
    Corrupt(&'static str),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::Io(e) => write!(f, "broker storage error: {e}"),
            BrokerError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            BrokerError::Corrupt(what) => write!(f, "corrupt log record: {what}"),
        }
    }
}

impl std::error::Error for BrokerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BrokerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BrokerError {
    fn from(e: std::io::Error) -> Self {
        BrokerError::Io(e)
    }
}
