//! In-memory message broker (the Redis-like arm of §4.7).

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::{Broker, BrokerError};

#[derive(Default)]
struct Topic {
    records: Vec<Bytes>,
    groups: HashMap<String, usize>,
}

/// A memory-backed broker: publish appends to an in-memory log, fetch
/// advances a per-group cursor. No disk I/O on the hot path — the
/// architectural difference that gives the paper's 125 % throughput gain
/// over the disk-backed broker.
///
/// # Examples
///
/// ```
/// use vserve_broker::{Broker, MemBroker};
///
/// # fn main() -> Result<(), vserve_broker::BrokerError> {
/// let broker = MemBroker::new();
/// broker.publish("faces", b"crop-0")?;
/// broker.publish("faces", b"crop-1")?;
/// assert_eq!(broker.fetch("faces", "identify", 10)?.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct MemBroker {
    topics: Mutex<HashMap<String, Topic>>,
    published: Condvar,
}

impl std::fmt::Debug for MemBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemBroker")
            .field("topics", &self.topics.lock().len())
            .finish()
    }
}

impl MemBroker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until `topic` has unread records for `group` (or the
    /// timeout elapses), then fetches like [`Broker::fetch`].
    ///
    /// # Errors
    ///
    /// Never errors today; the `Result` mirrors the [`Broker`] interface.
    pub fn fetch_blocking(
        &self,
        topic: &str,
        group: &str,
        max: usize,
        timeout: std::time::Duration,
    ) -> Result<Vec<Bytes>, BrokerError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut topics = self.topics.lock();
        loop {
            let available = topics.get(topic).map_or(0, |t| {
                t.records.len() - t.groups.get(group).copied().unwrap_or(0)
            });
            if available > 0 {
                return Ok(Self::take(&mut topics, topic, group, max));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(Vec::new());
            }
            if self.published.wait_until(&mut topics, deadline).timed_out() {
                return Ok(Self::take(&mut topics, topic, group, max));
            }
        }
    }

    fn take(
        topics: &mut HashMap<String, Topic>,
        topic: &str,
        group: &str,
        max: usize,
    ) -> Vec<Bytes> {
        let t = match topics.get_mut(topic) {
            Some(t) => t,
            None => return Vec::new(),
        };
        let start = t.groups.get(group).copied().unwrap_or(0);
        let end = (start + max).min(t.records.len());
        let out = t.records[start..end].to_vec();
        t.groups.insert(group.to_owned(), end);
        out
    }

    /// Number of records ever published to `topic`.
    pub fn len(&self, topic: &str) -> usize {
        self.topics.lock().get(topic).map_or(0, |t| t.records.len())
    }

    /// Whether `topic` holds no records.
    pub fn is_empty(&self, topic: &str) -> bool {
        self.len(topic) == 0
    }
}

impl Broker for MemBroker {
    fn publish(&self, topic: &str, payload: &[u8]) -> Result<u64, BrokerError> {
        let mut topics = self.topics.lock();
        let t = topics.entry(topic.to_owned()).or_default();
        let offset = t.records.len() as u64;
        t.records.push(Bytes::copy_from_slice(payload));
        self.published.notify_all();
        Ok(offset)
    }

    fn fetch(&self, topic: &str, group: &str, max: usize) -> Result<Vec<Bytes>, BrokerError> {
        let mut topics = self.topics.lock();
        if !topics.contains_key(topic) {
            return Err(BrokerError::UnknownTopic(topic.to_owned()));
        }
        Ok(Self::take(&mut topics, topic, group, max))
    }

    fn depth(&self, topic: &str, group: &str) -> usize {
        self.topics.lock().get(topic).map_or(0, |t| {
            t.records.len() - t.groups.get(group).copied().unwrap_or(0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_per_group() {
        let b = MemBroker::new();
        b.publish("t", b"a").unwrap();
        b.publish("t", b"b").unwrap();
        let got = b.fetch("t", "g", 1).unwrap();
        assert_eq!(got[0].as_ref(), b"a");
        let got = b.fetch("t", "g", 1).unwrap();
        assert_eq!(got[0].as_ref(), b"b");
        assert!(b.fetch("t", "g", 1).unwrap().is_empty());
    }

    #[test]
    fn unknown_topic_errors() {
        let b = MemBroker::new();
        assert!(matches!(
            b.fetch("none", "g", 1),
            Err(BrokerError::UnknownTopic(_))
        ));
    }

    #[test]
    fn depth_tracks_lag() {
        let b = MemBroker::new();
        b.publish("t", b"1").unwrap();
        b.publish("t", b"2").unwrap();
        assert_eq!(b.depth("t", "g"), 2);
        b.fetch("t", "g", 1).unwrap();
        assert_eq!(b.depth("t", "g"), 1);
    }

    #[test]
    fn blocking_fetch_wakes_on_publish() {
        let b = Arc::new(MemBroker::new());
        let b2 = Arc::clone(&b);
        let handle = std::thread::spawn(move || {
            b2.fetch_blocking("t", "g", 10, Duration::from_secs(5))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        b.publish("t", b"wake").unwrap();
        let got = handle.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_ref(), b"wake");
    }

    #[test]
    fn blocking_fetch_times_out_empty() {
        let b = MemBroker::new();
        let got = b
            .fetch_blocking("t", "g", 10, Duration::from_millis(10))
            .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn concurrent_publishers() {
        let b = Arc::new(MemBroker::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for j in 0..100u32 {
                        b.publish("t", &(i * 1000 + j).to_le_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.len("t"), 400);
        assert_eq!(b.fetch("t", "g", 1000).unwrap().len(), 400);
    }
}
