//! Message brokers for multi-DNN pipelines (§4.7 / Fig 10–11).
//!
//! The paper compares three ways of coupling a face detector to a face
//! identifier: a disk-backed log broker (Apache Kafka, as in prior work),
//! an in-memory broker (Redis), and a fused single process. This crate
//! implements all three for real:
//!
//! * [`LogBroker`] — append-only segment files with an explicit
//!   [`FsyncPolicy`], record framing, crash recovery, and consumer-group
//!   offsets (the Kafka-like arm).
//! * [`MemBroker`] — an in-memory topic log with blocking fetch (the
//!   Redis-like arm).
//! * [`BrokerKind`] / [`BrokerCost`] — calibrated per-message cost models
//!   the discrete-event pipeline simulation charges (Fig 11).
//!
//! Both real brokers implement the common [`Broker`] trait used by the
//! live pipeline example.
//!
//! # Examples
//!
//! ```
//! use vserve_broker::{Broker, MemBroker};
//!
//! # fn main() -> Result<(), vserve_broker::BrokerError> {
//! let broker = MemBroker::new();
//! broker.publish("detections", b"face @ (10, 20)")?;
//! let msgs = broker.fetch("detections", "identify-workers", 32)?;
//! assert_eq!(msgs.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod error;
mod log_broker;
mod mem_broker;

pub use cost::{BrokerCost, BrokerKind};
pub use error::BrokerError;
pub use log_broker::LogBroker;
pub use mem_broker::MemBroker;

use bytes::Bytes;

/// Durability policy for the disk-backed [`LogBroker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsyncPolicy {
    /// `fsync` after every record (maximum durability, maximum cost —
    /// the configuration that makes disk brokers dominate pipeline
    /// latency).
    PerMessage,
    /// `fsync` after every `n` records.
    EveryN(usize),
    /// Let the OS flush (fastest, weakest).
    Never,
}

/// Common publish/fetch interface over the real brokers.
///
/// Implementations are thread-safe; producers and consumers may run on
/// different threads (the live pipeline does exactly that).
pub trait Broker: Send + Sync {
    /// Appends `payload` to `topic`, returning its offset.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Io`] if durable storage fails.
    fn publish(&self, topic: &str, payload: &[u8]) -> Result<u64, BrokerError>;

    /// Fetches up to `max` unread records for consumer `group`, advancing
    /// its cursor.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownTopic`] if the topic has never been
    /// published to, or [`BrokerError::Io`] on storage failures.
    fn fetch(&self, topic: &str, group: &str, max: usize) -> Result<Vec<Bytes>, BrokerError>;

    /// Unread records remaining for `group` on `topic`.
    fn depth(&self, topic: &str, group: &str) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both brokers satisfy the same behavioural contract.
    fn contract(b: &dyn Broker) {
        assert_eq!(b.publish("c", b"one").unwrap(), 0);
        assert_eq!(b.publish("c", b"two").unwrap(), 1);
        assert_eq!(b.depth("c", "g"), 2);
        let got = b.fetch("c", "g", 1).unwrap();
        assert_eq!(got[0].as_ref(), b"one");
        assert_eq!(b.depth("c", "g"), 1);
        let got = b.fetch("c", "g", 5).unwrap();
        assert_eq!(got[0].as_ref(), b"two");
        assert_eq!(b.depth("c", "g"), 0);
    }

    #[test]
    fn mem_broker_contract() {
        contract(&MemBroker::new());
    }

    #[test]
    fn log_broker_contract() {
        let dir = std::env::temp_dir().join(format!("vserve-contract-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let b = LogBroker::open(&dir, FsyncPolicy::Never).unwrap();
        contract(&b);
        std::fs::remove_dir_all(&dir).ok();
    }
}
