//! Simulation-facing broker cost models.
//!
//! The discrete-event pipeline experiments (Fig 11) do not move real
//! bytes; they charge each produce/consume the costs measured from the
//! real brokers in this crate (see `vserve-bench`'s `broker_ops` bench)
//! scaled to the server-class hardware of the paper's testbed.

/// The three inter-stage coupling options the paper compares (§4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrokerKind {
    /// Disk-backed log broker (Apache Kafka in the paper / prior work
    /// [Richins et al.]).
    KafkaLike,
    /// Memory-backed broker (Redis in the paper).
    RedisLike,
    /// No broker: both stages fused into one process.
    Fused,
}

impl std::fmt::Display for BrokerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BrokerKind::KafkaLike => "kafka-like",
            BrokerKind::RedisLike => "redis-like",
            BrokerKind::Fused => "fused",
        })
    }
}

/// Per-message broker costs used by the pipeline simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerCost {
    /// Producer-side latency per message, seconds (serialize + append +
    /// durability + ack).
    pub produce_s: f64,
    /// Consumer-side latency per message, seconds (poll + deserialize).
    pub consume_s: f64,
    /// Additional cost per payload byte, seconds.
    pub per_byte_s: f64,
    /// Maximum sustained messages/second through one broker instance
    /// (`f64::INFINITY` for the fused path).
    pub max_rate: f64,
    /// Per-frame pipeline stall induced by broker-driven hand-off (poll
    /// wake-ups, cross-process scheduling) during which the GPU idles.
    pub pipeline_bubble_s: f64,
}

impl BrokerKind {
    /// Calibrated cost model for this broker kind.
    ///
    /// Anchors: prior work measured Kafka at ≈36 % of a face-pipeline's
    /// latency; the paper re-measures Kafka at 71 % of its (faster)
    /// pipeline and Redis at just 6 %, with a 2.25× end-to-end throughput
    /// gap. A fused call is a function invocation.
    pub fn cost(self) -> BrokerCost {
        match self {
            BrokerKind::KafkaLike => BrokerCost {
                produce_s: 3.2e-3, // append + fsync + broker ack
                consume_s: 2.2e-3, // poll round + deserialize
                per_byte_s: 4.0e-9,
                max_rate: 4_700.0,
                pipeline_bubble_s: 1.0e-3,
            },
            BrokerKind::RedisLike => BrokerCost {
                produce_s: 60e-6, // in-memory RPUSH round trip
                consume_s: 45e-6, // BLPOP round trip
                per_byte_s: 0.6e-9,
                max_rate: 160_000.0,
                pipeline_bubble_s: 140e-6,
            },
            BrokerKind::Fused => BrokerCost {
                produce_s: 1e-6,
                consume_s: 1e-6,
                per_byte_s: 0.0,
                max_rate: f64::INFINITY,
                pipeline_bubble_s: 0.0,
            },
        }
    }

    /// Total broker time charged to one message of `bytes` payload.
    pub fn message_time(self, bytes: usize) -> f64 {
        let c = self.cost();
        c.produce_s + c.consume_s + c.per_byte_s * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_kafka_redis_fused() {
        let k = BrokerKind::KafkaLike.message_time(50_000);
        let r = BrokerKind::RedisLike.message_time(50_000);
        let f = BrokerKind::Fused.message_time(50_000);
        assert!(k > 10.0 * r, "kafka {k} redis {r}");
        assert!(r > f);
    }

    #[test]
    fn kafka_millisecond_scale_redis_microsecond_scale() {
        assert!(BrokerKind::KafkaLike.message_time(10_000) > 1e-3);
        assert!(BrokerKind::RedisLike.message_time(10_000) < 0.3e-3);
    }

    #[test]
    fn display_names() {
        assert_eq!(BrokerKind::KafkaLike.to_string(), "kafka-like");
        assert_eq!(BrokerKind::RedisLike.to_string(), "redis-like");
        assert_eq!(BrokerKind::Fused.to_string(), "fused");
    }
}
