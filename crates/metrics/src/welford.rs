//! Streaming mean/variance via Welford's online algorithm.

/// Numerically stable streaming accumulator for mean, variance, min and max.
///
/// Uses Welford's online algorithm, which avoids the catastrophic
/// cancellation of the naive `E[x²] − E[x]²` formula.
///
/// # Examples
///
/// ```
/// use vserve_metrics::Welford;
///
/// let mut w = Welford::new();
/// w.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance (divides by `n`); `0.0` when fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`); `0.0` when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator using Chan's parallel update.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn single_value() {
        let w: Welford = [3.5].into_iter().collect();
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        let w: Welford = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((w.population_variance() - 4.0).abs() < 1e-12);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_empty_cases() {
        let mut a = Welford::new();
        let b: Welford = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c: Welford = [1.0, 2.0].into_iter().collect();
        c.merge(&Welford::new());
        assert_eq!(c.count(), 2);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(xs in prop::collection::vec(-1e6f64..1e6, 1..200),
                                   split in 0usize..200) {
            let split = split.min(xs.len());
            let mut a: Welford = xs[..split].iter().copied().collect();
            let b: Welford = xs[split..].iter().copied().collect();
            let all: Welford = xs.iter().copied().collect();
            a.merge(&b);
            prop_assert_eq!(a.count(), all.count());
            prop_assert!((a.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
            prop_assert!((a.population_variance() - all.population_variance()).abs()
                < 1e-4 * (1.0 + all.population_variance().abs()));
        }

        #[test]
        fn mean_within_bounds(xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
            let w: Welford = xs.iter().copied().collect();
            prop_assert!(w.mean() >= w.min() - 1e-9);
            prop_assert!(w.mean() <= w.max() + 1e-9);
        }
    }
}
