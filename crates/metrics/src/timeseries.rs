//! Bounded `(t, v)` recording with uniform downsampling.

/// Records `(time, value)` samples with a hard memory bound.
///
/// When the buffer fills, every other sample is dropped and the sampling
/// stride doubles, so arbitrarily long runs keep a uniformly-spaced summary
/// within a fixed capacity. Used by the concurrency-sweep experiments to
/// keep a trace of instantaneous throughput and queue depth.
///
/// # Examples
///
/// ```
/// use vserve_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::with_capacity(8);
/// for i in 0..100 {
///     ts.push(i as f64, (i * i) as f64);
/// }
/// assert!(ts.len() <= 8);
/// assert_eq!(ts.samples().first().unwrap().0, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
    capacity: usize,
    stride: u64,
    seen: u64,
}

impl TimeSeries {
    /// Creates a series that never stores more than `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 2, "capacity must be at least 2");
        TimeSeries {
            samples: Vec::with_capacity(capacity),
            capacity,
            stride: 1,
            seen: 0,
        }
    }

    /// Appends a sample, downsampling if necessary.
    pub fn push(&mut self, t: f64, v: f64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() == self.capacity {
                // Keep every other retained sample and double the stride.
                let mut i = 0;
                self.samples.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
            if self.seen.is_multiple_of(self.stride) {
                self.samples.push((t, v));
            }
        }
        self.seen += 1;
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Retained samples in time order.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Total samples ever pushed (including downsampled-away ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn respects_capacity() {
        let mut ts = TimeSeries::with_capacity(16);
        for i in 0..10_000 {
            ts.push(i as f64, 0.0);
        }
        assert!(ts.len() <= 16);
        assert_eq!(ts.seen(), 10_000);
    }

    #[test]
    fn keeps_first_sample() {
        let mut ts = TimeSeries::with_capacity(4);
        for i in 0..100 {
            ts.push(i as f64, i as f64);
        }
        assert_eq!(ts.samples()[0], (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 2")]
    fn rejects_tiny_capacity() {
        let _ = TimeSeries::with_capacity(1);
    }

    proptest! {
        #[test]
        fn samples_time_ordered(n in 1usize..2000, cap in 2usize..64) {
            let mut ts = TimeSeries::with_capacity(cap);
            for i in 0..n {
                ts.push(i as f64, 0.0);
            }
            let s = ts.samples();
            for w in s.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            prop_assert!(s.len() <= cap);
        }
    }
}
