//! Time-weighted averaging of piecewise-constant signals.

/// Tracks a piecewise-constant signal (queue depth, busy servers, in-flight
/// bytes) and computes its time-weighted average and peak.
///
/// Energy accounting also uses this type: power is piecewise constant
/// between events, so `time_average × span` is the energy integral.
///
/// # Examples
///
/// ```
/// use vserve_metrics::TimeWeightedGauge;
///
/// let mut g = TimeWeightedGauge::new(0.0, 0.0);
/// g.set(1.0, 4.0); // value 4 from t=1
/// g.set(3.0, 0.0); // value 0 from t=3
/// // average over [0, 4]: (0*1 + 4*2 + 0*1) / 4 = 2
/// assert!((g.time_average(4.0) - 2.0).abs() < 1e-12);
/// assert_eq!(g.peak(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeightedGauge {
    start: f64,
    last_t: f64,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeightedGauge {
    /// Creates a gauge starting at time `t0` with `initial` value.
    pub fn new(t0: f64, initial: f64) -> Self {
        TimeWeightedGauge {
            start: t0,
            last_t: t0,
            value: initial,
            integral: 0.0,
            peak: initial,
        }
    }

    /// Sets the signal to `value` at time `t`.
    ///
    /// Times must be non-decreasing; out-of-order updates are clamped to the
    /// last seen time (contributing zero weight).
    pub fn set(&mut self, t: f64, value: f64) {
        let t = t.max(self.last_t);
        self.integral += self.value * (t - self.last_t);
        self.last_t = t;
        self.value = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adds `delta` to the current value at time `t`.
    pub fn add(&mut self, t: f64, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    /// Current signal value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Maximum value the signal ever took.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Integral of the signal from the start time through `t_end`.
    pub fn integral(&self, t_end: f64) -> f64 {
        let t_end = t_end.max(self.last_t);
        self.integral + self.value * (t_end - self.last_t)
    }

    /// Time-weighted average over `[t0, t_end]`.
    ///
    /// Returns the current value when the span is empty.
    pub fn time_average(&self, t_end: f64) -> f64 {
        let span = t_end.max(self.last_t) - self.start;
        if span <= 0.0 {
            self.value
        } else {
            self.integral(t_end) / span
        }
    }

    /// Resets the integration window to start at `t`, keeping the current
    /// value (used to discard warm-up).
    pub fn reset_window(&mut self, t: f64) {
        let t = t.max(self.last_t);
        self.start = t;
        self.last_t = t;
        self.integral = 0.0;
        self.peak = self.value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_average_is_value() {
        let g = TimeWeightedGauge::new(0.0, 3.0);
        assert!((g.time_average(10.0) - 3.0).abs() < 1e-12);
        assert!((g.integral(10.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_peak() {
        let mut g = TimeWeightedGauge::new(0.0, 0.0);
        g.add(1.0, 2.0);
        g.add(2.0, 3.0);
        g.add(3.0, -4.0);
        assert_eq!(g.value(), 1.0);
        assert_eq!(g.peak(), 5.0);
    }

    #[test]
    fn out_of_order_update_clamped() {
        let mut g = TimeWeightedGauge::new(0.0, 1.0);
        g.set(5.0, 2.0);
        g.set(3.0, 7.0); // clamped to t=5, zero weight for value 2→7 jump
        assert!((g.integral(5.0) - 5.0).abs() < 1e-12);
        assert_eq!(g.value(), 7.0);
    }

    #[test]
    fn reset_window_discards_history() {
        let mut g = TimeWeightedGauge::new(0.0, 10.0);
        g.set(5.0, 2.0);
        g.reset_window(5.0);
        assert!((g.time_average(10.0) - 2.0).abs() < 1e-12);
        assert_eq!(g.peak(), 2.0);
    }

    #[test]
    fn empty_span_average_is_current() {
        let g = TimeWeightedGauge::new(1.0, 9.0);
        assert_eq!(g.time_average(1.0), 9.0);
    }
}
