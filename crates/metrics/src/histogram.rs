//! Logarithmic-bucket histogram with percentile queries.
//!
//! # Error bounds
//!
//! [`LogHistogram::quantile`] reports the *geometric midpoint* of the
//! bucket holding the nearest-rank sample. For an observation inside the
//! covered range `[lo, hi]`, a bucket spans a relative width of
//! `growth − 1`, so the estimate's relative error is bounded by
//! `growth − 1` (at the default `growth = 1.01`, within ±1%; the typical
//! error is half that, since the midpoint sits at most half a bucket from
//! any sample in it). Outside the range the bound does not hold: values
//! at/below `lo` (and non-finite or non-positive inputs) are clamped into
//! the first bucket and counted as [`underflow`](LogHistogram::underflow);
//! values above the layout's upper edge are clamped into the last bucket
//! and counted as [`overflow`](LogHistogram::overflow), so a nonzero
//! overflow/underflow count flags quantiles that may sit at a clamped
//! boundary. The property tests in this module pin the in-range bound
//! against exact sorted-sample quantiles, including heavy-tailed
//! (Pareto) inputs.

/// HDR-style histogram whose bucket boundaries grow geometrically.
///
/// Values in `[lo, hi]` land in buckets with bounded *relative* width
/// (`growth − 1`), so quantile queries have bounded relative error
/// regardless of the dynamic range — ideal for latencies that span six
/// orders of magnitude (see the module docs for the precise bound).
/// Values outside the range are clamped into the first/last bucket and
/// counted.
///
/// # Examples
///
/// ```
/// use vserve_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new(1e-6, 10.0, 1.02);
/// for i in 1..=100 {
///     h.record(i as f64 * 1e-3);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((p50 - 0.050).abs() < 0.005);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    lo: f64,
    log_lo: f64,
    log_growth: f64,
    buckets: Vec<u64>,
    count: u64,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram covering `[lo, hi]` with geometric bucket growth
    /// factor `growth`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi <= lo`, or `growth <= 1`.
    pub fn new(lo: f64, hi: f64, growth: f64) -> Self {
        assert!(lo > 0.0, "lo must be positive");
        assert!(hi > lo, "hi must exceed lo");
        assert!(growth > 1.0, "growth must exceed 1");
        let n = ((hi / lo).ln() / growth.ln()).ceil() as usize + 1;
        LogHistogram {
            lo,
            log_lo: lo.ln(),
            log_growth: growth.ln(),
            buckets: vec![0; n],
            count: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    fn bucket_index(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        let idx = ((x.ln() - self.log_lo) / self.log_growth) as usize;
        idx.min(self.buckets.len() - 1)
    }

    /// Lower edge of bucket `i`.
    fn bucket_value(&self, i: usize) -> f64 {
        // Midpoint (geometric) of the bucket, for lower quantile bias.
        (self.log_lo + (i as f64 + 0.5) * self.log_growth).exp()
    }

    /// Upper edge of the last bucket — the largest value the layout
    /// represents without clamping.
    fn upper_edge(&self) -> f64 {
        (self.log_lo + self.buckets.len() as f64 * self.log_growth).exp()
    }

    /// Records one observation. Non-finite and non-positive values are
    /// counted as underflow; values above the layout's upper edge are
    /// clamped into the last bucket and counted as overflow.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if !x.is_finite() || x <= 0.0 {
            self.underflow += 1;
            self.buckets[0] += 1;
            return;
        }
        let i = self.bucket_index(x);
        if x > self.upper_edge() {
            self.overflow += 1;
        }
        self.buckets[i] += 1;
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations that fell at/below the low bound (or were non-finite).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations that fell far above the high bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Returns the estimated `q`-quantile (geometric bucket midpoint).
    ///
    /// Returns `0.0` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.bucket_value(i);
            }
        }
        self.bucket_value(self.buckets.len() - 1)
    }

    /// Merges another histogram with identical bucket layout.
    ///
    /// # Panics
    ///
    /// Panics if layouts differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "layout mismatch");
        assert!(
            (self.log_lo - other.log_lo).abs() < 1e-12,
            "layout mismatch"
        );
        assert!(
            (self.log_growth - other.log_growth).abs() < 1e-15,
            "layout mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Iterates over `(bucket_midpoint, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (self.bucket_value(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = LogHistogram::new(1e-6, 1e2, 1.01);
        for i in 1..=10_000u32 {
            h.record(i as f64 * 1e-4);
        }
        for &(q, truth) in &[(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let est = h.quantile(q);
            assert!(
                (est - truth).abs() / truth < 0.02,
                "q={q} est={est} truth={truth}"
            );
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = LogHistogram::new(1e-3, 1.0, 1.1);
        h.record(-5.0);
        h.record(1e9);
        assert_eq!(h.count(), 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn overflow_means_above_the_layouts_upper_edge() {
        // [1e-3, 1.0] at growth 1.1 rounds up to an upper edge ≈ 1.156:
        // values inside the last bucket are represented, not overflow.
        let mut h = LogHistogram::new(1e-3, 1.0, 1.1);
        h.record(1.1);
        assert_eq!(h.overflow(), 0, "in-layout value is not overflow");
        h.record(1.2);
        assert_eq!(h.overflow(), 1, "value above the upper edge is");
        assert_eq!(h.count(), 2);
    }

    /// Exact nearest-rank quantile of an already-sorted sample.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = LogHistogram::new(1e-3, 1.0, 1.1);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn merge_rejects_different_layouts() {
        let mut a = LogHistogram::new(1e-3, 1.0, 1.1);
        let b = LogHistogram::new(1e-3, 10.0, 1.1);
        a.merge(&b);
    }

    proptest! {
        #[test]
        fn quantiles_monotone(xs in prop::collection::vec(1e-5f64..1e3, 1..500)) {
            let mut h = LogHistogram::new(1e-6, 1e4, 1.02);
            for &x in &xs { h.record(x); }
            let mut prev = 0.0;
            for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let v = h.quantile(q);
                prop_assert!(v >= prev);
                prev = v;
            }
        }

        /// The module-doc bound: for in-range samples, the estimate is
        /// within `growth − 1` relative error of the exact nearest-rank
        /// quantile of the same stream.
        #[test]
        fn quantiles_match_exact_within_bucket_bound(
            xs in prop::collection::vec(1e-5f64..1e3, 50..400),
        ) {
            let growth = 1.01;
            let mut h = LogHistogram::new(1e-6, 1e4, growth);
            for &x in &xs { h.record(x); }
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            for q in [0.5, 0.9, 0.95, 0.99] {
                let est = h.quantile(q);
                let truth = exact_quantile(&sorted, q);
                prop_assert!(
                    (est - truth).abs() / truth <= growth - 1.0 + 1e-9,
                    "q={} est={} truth={}", q, est, truth
                );
            }
        }

        /// The same bound holds on a heavy-tailed stream: Pareto α = 1.5
        /// via inverse-transform sampling, spanning (1, 1e4].
        #[test]
        fn heavy_tail_quantiles_match_exact(
            us in prop::collection::vec(1e-6f64..1.0, 100..400),
        ) {
            let growth = 1.01;
            let mut h = LogHistogram::new(1e-2, 1e5, growth);
            let mut xs: Vec<f64> = us.iter().map(|u| u.powf(-1.0 / 1.5)).collect();
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.overflow(), 0);
            xs.sort_by(|a, b| a.total_cmp(b));
            for q in [0.5, 0.95, 0.99] {
                let est = h.quantile(q);
                let truth = exact_quantile(&xs, q);
                prop_assert!(
                    (est - truth).abs() / truth <= growth - 1.0 + 1e-9,
                    "q={} est={} truth={}", q, est, truth
                );
            }
        }

        #[test]
        fn count_conserved(xs in prop::collection::vec(1e-9f64..1e9, 0..200)) {
            let mut h = LogHistogram::new(1e-6, 1e4, 1.05);
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.count(), xs.len() as u64);
            let bucket_total: u64 = h.iter().map(|(_, c)| c).sum();
            prop_assert_eq!(bucket_total, xs.len() as u64);
        }
    }
}
