//! Logarithmic-bucket histogram with percentile queries.

/// HDR-style histogram whose bucket boundaries grow geometrically.
///
/// Values in `[lo, hi]` land in buckets with bounded *relative* width
/// (`growth − 1`), so quantile queries have bounded relative error
/// regardless of the dynamic range — ideal for latencies that span six
/// orders of magnitude. Values outside the range are clamped into the
/// first/last bucket and counted.
///
/// # Examples
///
/// ```
/// use vserve_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new(1e-6, 10.0, 1.02);
/// for i in 1..=100 {
///     h.record(i as f64 * 1e-3);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((p50 - 0.050).abs() < 0.005);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    lo: f64,
    log_lo: f64,
    log_growth: f64,
    buckets: Vec<u64>,
    count: u64,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram covering `[lo, hi]` with geometric bucket growth
    /// factor `growth`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi <= lo`, or `growth <= 1`.
    pub fn new(lo: f64, hi: f64, growth: f64) -> Self {
        assert!(lo > 0.0, "lo must be positive");
        assert!(hi > lo, "hi must exceed lo");
        assert!(growth > 1.0, "growth must exceed 1");
        let n = ((hi / lo).ln() / growth.ln()).ceil() as usize + 1;
        LogHistogram {
            lo,
            log_lo: lo.ln(),
            log_growth: growth.ln(),
            buckets: vec![0; n],
            count: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    fn bucket_index(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        let idx = ((x.ln() - self.log_lo) / self.log_growth) as usize;
        idx.min(self.buckets.len() - 1)
    }

    /// Lower edge of bucket `i`.
    fn bucket_value(&self, i: usize) -> f64 {
        // Midpoint (geometric) of the bucket, for lower quantile bias.
        (self.log_lo + (i as f64 + 0.5) * self.log_growth).exp()
    }

    /// Records one observation. Non-finite and non-positive values are
    /// counted as underflow.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if !x.is_finite() || x <= 0.0 {
            self.underflow += 1;
            self.buckets[0] += 1;
            return;
        }
        let i = self.bucket_index(x);
        if i == self.buckets.len() - 1 && x > self.bucket_value(self.buckets.len() - 1) * 2.0 {
            self.overflow += 1;
        }
        self.buckets[i] += 1;
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations that fell at/below the low bound (or were non-finite).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations that fell far above the high bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Returns the estimated `q`-quantile (geometric bucket midpoint).
    ///
    /// Returns `0.0` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.bucket_value(i);
            }
        }
        self.bucket_value(self.buckets.len() - 1)
    }

    /// Merges another histogram with identical bucket layout.
    ///
    /// # Panics
    ///
    /// Panics if layouts differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "layout mismatch");
        assert!(
            (self.log_lo - other.log_lo).abs() < 1e-12,
            "layout mismatch"
        );
        assert!(
            (self.log_growth - other.log_growth).abs() < 1e-15,
            "layout mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Iterates over `(bucket_midpoint, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (self.bucket_value(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = LogHistogram::new(1e-6, 1e2, 1.01);
        for i in 1..=10_000u32 {
            h.record(i as f64 * 1e-4);
        }
        for &(q, truth) in &[(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let est = h.quantile(q);
            assert!(
                (est - truth).abs() / truth < 0.02,
                "q={q} est={est} truth={truth}"
            );
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = LogHistogram::new(1e-3, 1.0, 1.1);
        h.record(-5.0);
        h.record(1e9);
        assert_eq!(h.count(), 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = LogHistogram::new(1e-3, 1.0, 1.1);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn merge_rejects_different_layouts() {
        let mut a = LogHistogram::new(1e-3, 1.0, 1.1);
        let b = LogHistogram::new(1e-3, 10.0, 1.1);
        a.merge(&b);
    }

    proptest! {
        #[test]
        fn quantiles_monotone(xs in prop::collection::vec(1e-5f64..1e3, 1..500)) {
            let mut h = LogHistogram::new(1e-6, 1e4, 1.02);
            for &x in &xs { h.record(x); }
            let mut prev = 0.0;
            for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let v = h.quantile(q);
                prop_assert!(v >= prev);
                prev = v;
            }
        }

        #[test]
        fn count_conserved(xs in prop::collection::vec(1e-9f64..1e9, 0..200)) {
            let mut h = LogHistogram::new(1e-6, 1e4, 1.05);
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.count(), xs.len() as u64);
            let bucket_total: u64 = h.iter().map(|(_, c)| c).sum();
            prop_assert_eq!(bucket_total, xs.len() as u64);
        }
    }
}
