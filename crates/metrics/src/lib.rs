//! Streaming statistics for the `vserve` benchmark suite.
//!
//! Every experiment in the suite produces large numbers of per-request
//! observations (latencies, stage times, queue depths, energy draws). This
//! crate provides the small, allocation-light statistical primitives that
//! aggregate those observations without storing them all:
//!
//! * [`Welford`] — numerically stable streaming mean / variance / min / max.
//! * [`P2Quantile`] / [`QuantileSet`] — the P² algorithm for streaming
//!   quantile estimation (used for tail latencies).
//! * [`LogHistogram`] — HDR-style logarithmic-bucket histogram with exact
//!   counts and percentile queries.
//! * [`RateMeter`] — event counter that converts to a rate over a time span.
//! * [`TimeWeightedGauge`] — time-weighted average of a piecewise-constant
//!   signal (queue depth, utilization, in-flight bytes).
//! * [`StageBreakdown`] — named per-stage time accumulator used for the
//!   paper's latency-breakdown figures.
//! * [`TimeSeries`] — bounded `(t, v)` recorder with uniform downsampling.
//!
//! All durations are plain `f64` seconds; the simulator converts from its
//! integer clock at the boundary.
//!
//! # Examples
//!
//! ```
//! use vserve_metrics::Welford;
//!
//! let mut w = Welford::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     w.push(x);
//! }
//! assert_eq!(w.mean(), 2.5);
//! assert_eq!(w.count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod gauge;
mod histogram;
mod quantile;
mod rate;
mod timeseries;
mod welford;

pub use breakdown::StageBreakdown;
pub use gauge::TimeWeightedGauge;
pub use histogram::LogHistogram;
pub use quantile::{P2Quantile, QuantileSet};
pub use rate::RateMeter;
pub use timeseries::TimeSeries;
pub use welford::Welford;

/// Summary of a latency-like distribution, produced by [`LatencyStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean, seconds.
    pub mean: f64,
    /// Sample standard deviation, seconds.
    pub std_dev: f64,
    /// Minimum observed value, seconds.
    pub min: f64,
    /// Maximum observed value, seconds.
    pub max: f64,
    /// Median (P50), seconds.
    pub p50: f64,
    /// 95th percentile, seconds.
    pub p95: f64,
    /// 99th percentile, seconds — the paper's "tail latency".
    pub p99: f64,
}

impl LatencySummary {
    /// A summary with zero observations; all fields are zero.
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        }
    }
}

/// Combined moment + histogram tracker for latency distributions.
///
/// Wraps a [`Welford`] accumulator (exact moments) and a [`LogHistogram`]
/// (percentiles with bounded relative error) behind one `push`.
///
/// # Examples
///
/// ```
/// use vserve_metrics::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for i in 1..=1000 {
///     stats.push(i as f64 * 1e-3);
/// }
/// let s = stats.summary();
/// assert_eq!(s.count, 1000);
/// assert!((s.mean - 0.5005).abs() < 1e-9);
/// assert!(s.p99 >= s.p50);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyStats {
    moments: Welford,
    hist: LogHistogram,
}

impl LatencyStats {
    /// Creates an empty tracker covering `[1 µs, 10 000 s]` with ~1 %
    /// relative bucket error, which spans every latency in the suite.
    pub fn new() -> Self {
        LatencyStats {
            moments: Welford::new(),
            hist: LogHistogram::new(1e-6, 1e4, 1.01),
        }
    }

    /// Records one observation in seconds.
    pub fn push(&mut self, seconds: f64) {
        self.moments.push(seconds);
        self.hist.record(seconds);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Arithmetic mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Returns the `q`-quantile estimate (e.g. `0.99`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }

    /// Produces a full [`LatencySummary`].
    pub fn summary(&self) -> LatencySummary {
        if self.moments.count() == 0 {
            return LatencySummary::empty();
        }
        LatencySummary {
            count: self.moments.count(),
            mean: self.moments.mean(),
            std_dev: self.moments.sample_std_dev(),
            min: self.moments.min(),
            max: self.moments.max(),
            p50: self.hist.quantile(0.50),
            p95: self.hist.quantile(0.95),
            p99: self.hist.quantile(0.99),
        }
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.moments.merge(&other.moments);
        self.hist.merge(&other.hist);
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_empty_summary_is_zero() {
        let stats = LatencyStats::new();
        assert_eq!(stats.summary(), LatencySummary::empty());
    }

    #[test]
    fn latency_stats_percentiles_ordered() {
        let mut stats = LatencyStats::new();
        for i in 0..10_000 {
            stats.push(1e-3 * (1.0 + (i % 97) as f64));
        }
        let s = stats.summary();
        assert!(s.min <= s.p50);
        assert!(s.p50 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.max * 1.02);
    }

    #[test]
    fn latency_stats_merge_matches_combined() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        let mut all = LatencyStats::new();
        for i in 0..500 {
            let x = 1e-3 + (i as f64) * 1e-5;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.quantile(0.95) - all.quantile(0.95)).abs() < 1e-9);
    }
}
