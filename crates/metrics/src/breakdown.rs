//! Per-stage time accounting for latency-breakdown figures.

use std::collections::BTreeMap;

/// Accumulates time spent in named pipeline stages across many requests.
///
/// This backs the paper's latency-breakdown figures (Fig 6, Fig 11): each
/// completed request contributes its queueing / preprocessing / transfer /
/// inference / broker components, and the breakdown reports per-stage means
/// and shares of the total.
///
/// Stage names are ordered lexicographically in iteration; use numbered
/// prefixes (`"0-queue"`, `"1-preproc"`, …) when presentation order matters.
///
/// # Examples
///
/// ```
/// use vserve_metrics::StageBreakdown;
///
/// let mut b = StageBreakdown::new();
/// b.record("preproc", 3.0e-3);
/// b.record("inference", 1.0e-3);
/// b.record("preproc", 5.0e-3);
/// b.record("inference", 1.0e-3);
/// assert!((b.mean("preproc") - 4.0e-3).abs() < 1e-12);
/// assert!((b.share("preproc") - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StageBreakdown {
    stages: BTreeMap<String, StageAccum>,
}

#[derive(Debug, Clone, Copy, Default)]
struct StageAccum {
    total: f64,
    count: u64,
}

impl StageBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` of time to `stage`.
    pub fn record(&mut self, stage: &str, seconds: f64) {
        let acc = self.stages.entry(stage.to_owned()).or_default();
        acc.total += seconds;
        acc.count += 1;
    }

    /// Total accumulated seconds in `stage` (0.0 if unknown).
    pub fn total(&self, stage: &str) -> f64 {
        self.stages.get(stage).map_or(0.0, |a| a.total)
    }

    /// Mean seconds per observation in `stage` (0.0 if unknown).
    pub fn mean(&self, stage: &str) -> f64 {
        self.stages.get(stage).map_or(0.0, |a| {
            if a.count == 0 {
                0.0
            } else {
                a.total / a.count as f64
            }
        })
    }

    /// Number of observations recorded for `stage`.
    pub fn count(&self, stage: &str) -> u64 {
        self.stages.get(stage).map_or(0, |a| a.count)
    }

    /// Sum of all stages' totals.
    pub fn grand_total(&self) -> f64 {
        self.stages.values().map(|a| a.total).sum()
    }

    /// Fraction of the grand total attributable to `stage` (0.0 when empty).
    pub fn share(&self, stage: &str) -> f64 {
        let g = self.grand_total();
        if g <= 0.0 {
            0.0
        } else {
            self.total(stage) / g
        }
    }

    /// Iterates over `(stage, total_seconds)` in lexicographic stage order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.stages.iter().map(|(k, a)| (k.as_str(), a.total))
    }

    /// Stage names in lexicographic order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.keys().map(String::as_str).collect()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (k, a) in &other.stages {
            let acc = self.stages.entry(k.clone()).or_default();
            acc.total += a.total;
            acc.count += a.count;
        }
    }

    /// Renders a fixed-width table of per-stage mean and share, for the
    /// figure-regeneration binaries.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>8}\n",
            "stage", "mean (ms)", "total (s)", "share"
        ));
        for (name, acc) in &self.stages {
            let mean_ms = if acc.count == 0 {
                0.0
            } else {
                acc.total / acc.count as f64 * 1e3
            };
            out.push_str(&format!(
                "{:<24} {:>12.4} {:>12.4} {:>7.1}%\n",
                name,
                mean_ms,
                acc.total,
                self.share(name) * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_stage_is_zero() {
        let b = StageBreakdown::new();
        assert_eq!(b.total("x"), 0.0);
        assert_eq!(b.mean("x"), 0.0);
        assert_eq!(b.share("x"), 0.0);
        assert_eq!(b.count("x"), 0);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut b = StageBreakdown::new();
        b.record("a", 1.0);
        b.record("b", 2.0);
        b.record("c", 3.0);
        let sum: f64 = b.stage_names().iter().map(|s| b.share(s)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StageBreakdown::new();
        a.record("x", 1.0);
        let mut b = StageBreakdown::new();
        b.record("x", 3.0);
        b.record("y", 2.0);
        a.merge(&b);
        assert_eq!(a.total("x"), 4.0);
        assert_eq!(a.count("x"), 2);
        assert_eq!(a.total("y"), 2.0);
    }

    #[test]
    fn table_contains_all_stages() {
        let mut b = StageBreakdown::new();
        b.record("0-queue", 0.5);
        b.record("1-infer", 0.5);
        let t = b.to_table();
        assert!(t.contains("0-queue"));
        assert!(t.contains("1-infer"));
        assert!(t.contains("50.0%"));
    }
}
