//! Event-rate measurement over a time span.

/// Counts discrete events and converts them to a rate over an observation
/// window, with optional warm-up exclusion.
///
/// The serving experiments run a warm-up phase before measuring steady-state
/// throughput; `RateMeter` supports that by letting the caller (re)open the
/// measurement window at an arbitrary time.
///
/// # Examples
///
/// ```
/// use vserve_metrics::RateMeter;
///
/// let mut m = RateMeter::new();
/// m.open(10.0); // warm-up ended at t = 10 s
/// for t in 0..100 {
///     m.record(10.0 + t as f64 * 0.1);
/// }
/// m.close(20.0);
/// assert_eq!(m.count(), 100);
/// assert!((m.rate() - 10.0).abs() < 1e-9); // 100 events over 10 s
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateMeter {
    open_at: Option<f64>,
    close_at: Option<f64>,
    count: u64,
    last_event: f64,
}

impl RateMeter {
    /// Creates a meter with an unopened window; events recorded before
    /// [`open`](Self::open) are ignored.
    pub fn new() -> Self {
        RateMeter {
            open_at: None,
            close_at: None,
            count: 0,
            last_event: 0.0,
        }
    }

    /// Opens (or reopens) the measurement window at time `t` (seconds),
    /// resetting the count.
    pub fn open(&mut self, t: f64) {
        self.open_at = Some(t);
        self.close_at = None;
        self.count = 0;
        self.last_event = t;
    }

    /// Records one event at time `t`. Ignored if the window is not open or
    /// `t` precedes the window start.
    pub fn record(&mut self, t: f64) {
        match self.open_at {
            Some(start) if t >= start && self.close_at.is_none() => {
                self.count += 1;
                self.last_event = t;
            }
            _ => {}
        }
    }

    /// Closes the window at time `t`.
    pub fn close(&mut self, t: f64) {
        if self.open_at.is_some() && self.close_at.is_none() {
            self.close_at = Some(t);
        }
    }

    /// Events counted inside the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Events per second over the window.
    ///
    /// If the window was never closed, the span ends at the last recorded
    /// event. Returns `0.0` for an empty or zero-length window.
    pub fn rate(&self) -> f64 {
        let start = match self.open_at {
            Some(s) => s,
            None => return 0.0,
        };
        let end = self.close_at.unwrap_or(self.last_event);
        let span = end - start;
        if span <= 0.0 {
            0.0
        } else {
            self.count as f64 / span
        }
    }
}

impl Default for RateMeter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_events_before_open() {
        let mut m = RateMeter::new();
        m.record(1.0);
        assert_eq!(m.count(), 0);
        m.open(5.0);
        m.record(4.0); // before window start
        assert_eq!(m.count(), 0);
        m.record(6.0);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn ignores_events_after_close() {
        let mut m = RateMeter::new();
        m.open(0.0);
        m.record(1.0);
        m.close(2.0);
        m.record(3.0);
        assert_eq!(m.count(), 1);
        assert!((m.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unclosed_window_uses_last_event() {
        let mut m = RateMeter::new();
        m.open(0.0);
        m.record(1.0);
        m.record(2.0);
        assert!((m.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_span_rate_is_zero() {
        let mut m = RateMeter::new();
        m.open(1.0);
        m.record(1.0);
        assert_eq!(m.rate(), 0.0);
    }

    #[test]
    fn reopen_resets() {
        let mut m = RateMeter::new();
        m.open(0.0);
        m.record(0.5);
        m.close(1.0);
        m.open(10.0);
        assert_eq!(m.count(), 0);
        m.record(11.0);
        assert_eq!(m.count(), 1);
    }
}
