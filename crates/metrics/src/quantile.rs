//! Streaming quantile estimation with the P² algorithm.
//!
//! Jain & Chlamtac, "The P² algorithm for dynamic calculation of quantiles
//! and histograms without storing observations", CACM 1985.
//!
//! # Error bounds
//!
//! P² is a heuristic with no distribution-free worst-case error bound.
//! What this implementation does guarantee — and what the tests below
//! pin:
//!
//! * With fewer than five observations the estimate is the **exact**
//!   nearest-rank quantile of the observations so far.
//! * The estimate always lies within the observed `[min, max]`: the
//!   outer markers track the extremes and every marker adjustment keeps
//!   interior heights strictly between their neighbours.
//! * For smooth distributions the estimate typically lands within a few
//!   percent of the exact sample quantile once a few hundred
//!   observations have arrived. The regression tests allow 25% relative
//!   slack on a heavy-tailed Pareto (α = 1.5) stream — a tripwire for
//!   implementation bugs, not a distributional guarantee.
//!
//! Known weakness: on strongly multimodal streams the interior markers
//! can settle between modes, so the estimate stays inside `[min, max]`
//! but may sit far from the exact sample quantile. Callers needing hard
//! error bounds should use [`LogHistogram`](crate::LogHistogram), whose
//! quantiles have bounded relative error at the cost of preallocated
//! buckets.

/// Streaming estimator of a single quantile using the P² algorithm.
///
/// Keeps five markers whose positions are adjusted with a piecewise-parabolic
/// prediction as observations arrive, giving an O(1)-memory estimate of any
/// fixed quantile.
///
/// # Examples
///
/// ```
/// use vserve_metrics::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=1001 {
///     q.push(i as f64);
/// }
/// let median = q.estimate();
/// assert!((median - 501.0).abs() < 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: u64,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.total_cmp(b));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current estimate of the quantile.
    ///
    /// With fewer than five observations, falls back to the exact quantile of
    /// the observations so far (nearest-rank). Returns `0.0` when empty.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.initial.len() < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let rank = ((self.p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            return sorted[rank - 1];
        }
        self.heights[2]
    }
}

/// A set of [`P2Quantile`] estimators sharing one input stream.
///
/// # Examples
///
/// ```
/// use vserve_metrics::QuantileSet;
///
/// let mut set = QuantileSet::new(&[0.5, 0.95, 0.99]);
/// for i in 0..10_000 {
///     set.push((i % 100) as f64);
/// }
/// assert!(set.estimate(0.99).unwrap() >= set.estimate(0.5).unwrap());
/// assert!(set.estimate(0.9).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct QuantileSet {
    estimators: Vec<P2Quantile>,
}

impl QuantileSet {
    /// Creates estimators for each quantile in `qs`.
    ///
    /// # Panics
    ///
    /// Panics if any quantile is outside `(0, 1)`.
    pub fn new(qs: &[f64]) -> Self {
        QuantileSet {
            estimators: qs.iter().map(|&q| P2Quantile::new(q)).collect(),
        }
    }

    /// Adds one observation to every estimator.
    pub fn push(&mut self, x: f64) {
        for e in &mut self.estimators {
            e.push(x);
        }
    }

    /// Estimate for quantile `q`, or `None` if `q` was not registered.
    pub fn estimate(&self, q: f64) -> Option<f64> {
        self.estimators
            .iter()
            .find(|e| (e.quantile() - q).abs() < 1e-12)
            .map(|e| e.estimate())
    }

    /// All (quantile, estimate) pairs.
    pub fn estimates(&self) -> Vec<(f64, f64)> {
        self.estimators
            .iter()
            .map(|e| (e.quantile(), e.estimate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_out_of_range() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn exact_for_tiny_streams() {
        let mut q = P2Quantile::new(0.5);
        q.push(10.0);
        q.push(2.0);
        q.push(7.0);
        assert_eq!(q.estimate(), 7.0);
    }

    #[test]
    fn uniform_median_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut q = P2Quantile::new(0.5);
        for _ in 0..50_000 {
            q.push(rng.gen::<f64>());
        }
        assert!((q.estimate() - 0.5).abs() < 0.02, "median {}", q.estimate());
    }

    #[test]
    fn exponential_p99_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut q = P2Quantile::new(0.99);
        for _ in 0..200_000 {
            let u: f64 = rng.gen();
            q.push(-(1.0 - u).ln());
        }
        // True p99 of Exp(1) is ln(100) ≈ 4.605.
        let est = q.estimate();
        assert!((est - 4.605).abs() < 0.4, "p99 {est}");
    }

    /// Exact nearest-rank quantile of an unsorted sample.
    fn exact_quantile(xs: &[f64], q: f64) -> f64 {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Deterministic splitmix64 stream mapped to (0, 1), so this test
    /// behaves identically under any `rand` backend.
    fn unit_stream(mut seed: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let u = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / 9007199254740992.0);
                u.max(1e-12)
            })
            .collect()
    }

    /// The module-doc tripwire: on a heavy-tailed Pareto (α = 1.5)
    /// stream, p50 and p95 stay within 25% of the exact sample quantile
    /// (and p99 within 40% — the extreme tail is where P² is weakest).
    #[test]
    fn pareto_heavy_tail_within_documented_slack() {
        let xs: Vec<f64> = unit_stream(0xC0FFEE, 20_000)
            .into_iter()
            .map(|u| u.powf(-1.0 / 1.5))
            .collect();
        for (p, slack) in [(0.5, 0.25), (0.95, 0.25), (0.99, 0.40)] {
            let mut q = P2Quantile::new(p);
            for &x in &xs {
                q.push(x);
            }
            let est = q.estimate();
            let truth = exact_quantile(&xs, p);
            assert!(
                (est - truth).abs() / truth <= slack,
                "p={p} est={est} truth={truth}"
            );
        }
    }

    /// Adversarial orderings: sorted ascending, descending, and
    /// outside-in (extremes first) must not break the estimator.
    #[test]
    fn hostile_orderings_still_track_the_median() {
        let n = 5_000usize;
        let asc: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let desc: Vec<f64> = asc.iter().rev().copied().collect();
        let mut outside_in = Vec::with_capacity(n);
        for i in 0..n / 2 {
            outside_in.push((i + 1) as f64);
            outside_in.push((n - i) as f64);
        }
        for xs in [&asc, &desc, &outside_in] {
            let mut q = P2Quantile::new(0.5);
            for &x in xs.iter() {
                q.push(x);
            }
            let truth = exact_quantile(xs, 0.5);
            let est = q.estimate();
            assert!(
                (est - truth).abs() / truth <= 0.25,
                "est={est} truth={truth}"
            );
        }
    }

    proptest! {
        #[test]
        fn estimate_within_range(xs in prop::collection::vec(-1e3f64..1e3, 5..300)) {
            let mut q = P2Quantile::new(0.9);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &x in &xs {
                q.push(x);
                lo = lo.min(x);
                hi = hi.max(x);
            }
            let est = q.estimate();
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }

        /// Random streams: the median estimate stays within a modest
        /// fraction of the sample spread of the exact sample median.
        #[test]
        fn median_tracks_exact_on_random_streams(
            xs in prop::collection::vec(0.0f64..1e3, 200..600),
        ) {
            let mut q = P2Quantile::new(0.5);
            for &x in &xs {
                q.push(x);
            }
            let truth = exact_quantile(&xs, 0.5);
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let spread = sorted[sorted.len() - 1] - sorted[0];
            prop_assert!(
                (q.estimate() - truth).abs() <= 0.15 * spread + 1e-9,
                "est={} truth={} spread={}", q.estimate(), truth, spread
            );
        }
    }
}
